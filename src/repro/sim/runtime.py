"""SimRuntime: Muppet 1.0 / 2.0 on a simulated cluster (Sections 4, 5).

This is the substitution substrate declared in DESIGN.md: the authors ran
Muppet on a physical cluster of tens of machines; we run the *same
application code* on a discrete-event simulation of such a cluster. Every
map/update invocation actually executes (slates really change), while CPU,
network, and storage time are charged from :class:`~repro.sim.costs.
CostModel`, :class:`~repro.cluster.topology.NetworkSpec`, and the kv-store
device models.

Both engines are implemented on the same scaffolding, differing exactly
where the paper says they differ (Section 4.5):

* **Muppet 1.0** — one worker *process* per (function, machine) slot; each
  worker owns a private slate manager (fragmented caches) and its own copy
  of the operator code; every event pays conductor↔task-processor IPC;
  routing hashes ``<key, function>`` straight to the one owning worker.
* **Muppet 2.0** — a thread pool per machine; any thread runs any
  function; one central slate manager and one shared operator instance per
  machine; incoming events go through the primary/secondary two-choice
  dispatcher; a background I/O thread flushes dirty slates.

Failures follow Section 4.3: senders discover dead machines on contact,
report to the master, and the master broadcast excludes the machine from
the shared hash ring; in-flight and queued events on the dead machine are
lost and counted. Queue overflow follows Sections 4.3/5: drop, divert to an
overflow stream, or source-throttle.

Beyond the paper (which leaves recovery "until operator intervention"),
``failures`` also accepts a :class:`repro.faults.FaultSchedule`: a seeded
chaos schedule of crashes, crash-then-recover cycles, network partitions,
gray slow-node failures, probabilistic message drop/delay, and kv-node
outages. Recovery is a full path — master recovery broadcast, ring
re-admission behind a rebalance barrier, lazy slate re-hydration from the
replicated kv-store, and hinted-handoff drain to the revived kv node —
with every step counted in :class:`repro.metrics.RobustnessCounters`.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import asdict, dataclass, field
from typing import (Any, Deque, Dict, Iterable, List, Optional, Set, Tuple,
                    Union)

from repro.cluster.hashring import HashRing, route_key
from repro.cluster.topology import ClusterSpec
from repro.core.application import Application, OperatorSpec
from repro.core.event import Event, EventCounter, derive_origin
from repro.core.operators import Context, Mapper, Operator, TimerRequest, Updater
from repro.core.slate import Slate, SlateKey
from repro.elastic import (Autoscaler, AutoscalerConfig, MigrationConfig,
                           MigrationCoordinator, MigrationState,
                           ScaleDecision)
from repro.errors import ConfigurationError, SimulationError
from repro.faults.injector import FaultInjector
from repro.faults.schedule import FaultSchedule
from repro.kvstore.api import ConsistencyLevel
from repro.kvstore.cluster import ReplicatedKVStore
from repro.metrics import (DataPlaneCounters, LatencyRecorder,
                           LatencySummary, RobustnessCounters,
                           ThroughputReport, percentile)
from repro.muppet.dispatch import SingleChoiceDispatcher, TwoChoiceDispatcher
from repro.muppet.master import Master
from repro.obs import MetricsRegistry, RingTracer, TimelineRecorder, Tracer
from repro.muppet.queues import BoundedQueue, OverflowPolicy, SourceThrottle
from repro.muppet.replay import ReplayStats
from repro.shedding.controller import (TIER_OVERFLOW, TIER_THIN,
                                       TIER_THROTTLE, BackpressureController,
                                       PressureSignals, SheddingConfig,
                                       SheddingCounters)
from repro.shedding.thinning import Thinner
from repro.sim.costs import CostModel
from repro.sim.des import ScheduledEvent, Simulator
from repro.sim.sources import Source
from repro.slates.manager import FlushPolicy, RetryPolicy, SlateManager

ENGINE_MUPPET1 = "muppet1"
ENGINE_MUPPET2 = "muppet2"


@dataclass
class SimConfig:
    """Tunable knobs of a simulated Muppet deployment.

    Attributes mirror the paper's configuration surface: engine version,
    queue limits and overflow policy, slate cache size and flush interval,
    kv-store consistency/replication, and the Muppet 1.0 worker layout
    versus the Muppet 2.0 thread pool.
    """

    engine: str = ENGINE_MUPPET2
    queue_capacity: int = 5_000
    overflow: OverflowPolicy = field(default_factory=OverflowPolicy.drop)
    dispatch_factor: float = 2.0
    costs: CostModel = field(default_factory=CostModel)
    cache_slates_per_machine: int = 100_000
    flush_policy: FlushPolicy = field(default_factory=lambda: FlushPolicy.every(1.0))
    consistency: ConsistencyLevel = ConsistencyLevel.ONE
    kv_replication: int = 3
    kv_memtable_flush_bytes: int = 4 * 1024 * 1024
    kv_compaction_threshold: int = 8
    #: Muppet 1.0: worker processes per function per machine.
    workers_per_function_per_machine: int = 1
    #: Muppet 1.0: per-function overrides of the above (e.g. Figure 2's
    #: three mappers and two updaters: ``{"M1": 3, "U1": 2}``).
    workers_per_function: Optional[Dict[str, int]] = None
    #: Muppet 2.0: use the primary/secondary two-choice dispatcher
    #: (Section 4.5). False falls back to single-owner hashing — the
    #: ablation knob for bench E4.
    two_choice: bool = True
    #: Muppet 2.0: worker threads per machine (default: the core count,
    #: "as large as the parallelization of the application code allows").
    threads_per_machine: Optional[int] = None
    #: Resident size of one loaded copy of the application code (MB); the
    #: Muppet 1.0 memory penalty is one copy per worker process.
    operator_code_mb: float = 64.0
    #: Updater names at which end-to-end latency is recorded (None = all).
    latency_sinks: Optional[Set[str]] = None
    throttle: Optional[SourceThrottle] = None
    throttle_check_s: float = 0.01
    retry_delay_s: float = 0.01
    flusher_period_s: float = 0.1
    max_slate_bytes: Optional[int] = None
    #: Kill the co-located kv node when a machine fails (the paper keeps
    #: Cassandra on a separate cluster, so the default is False).
    kill_kv_on_machine_failure: bool = False
    #: Event replay horizon in seconds — the Section 4.3 future-work
    #: extension (see :mod:`repro.muppet.replay`). ``None`` disables
    #: replay (the paper's production behaviour: lost and logged).
    #: Setting it implies ``delivery_semantics="at-least-once"``.
    replay_horizon_s: Optional[float] = None
    #: What the engine promises about each event's effect on slates:
    #:
    #: * ``"at-most-once"`` — the paper's production behaviour: events
    #:   lost to failures stay lost (bounded under-count).
    #: * ``"at-least-once"`` — sender-side replay journal with a time
    #:   horizon (``replay_horizon_s``); crashes can replay events the
    #:   dead machine already processed (bounded over-count).
    #: * ``"effectively-once"`` — at-least-once replay made idempotent:
    #:   every event carries replay-stable provenance, every slate keeps
    #:   per-upstream dedup watermarks persisted atomically with its
    #:   fields, and the journal is pruned at coordinated checkpoint
    #:   epochs (``checkpoint_epoch_s``) instead of by time. Crash plus
    #:   recover yields exact counts for deterministic workflows.
    delivery_semantics: str = "at-most-once"
    #: Master-side liveness sweep period (opt-in failure detection).
    #: The engine's built-in detection is sender-side (Section 4.3): a
    #: dead machine is only noticed when someone sends to it. A crash
    #: during a *quiet window* — no traffic addressed to the victim
    #: before it recovers — is therefore never declared, its journaled
    #: events are never replayed, and dirty slate state that died with
    #: its caches silently degrades exactness (the model checker's
    #: ``epoch`` counterexample). With a period set, the master sweeps
    #: machine liveness every ``heartbeat_s`` seconds and declares any
    #: down, undeclared machine failed — exclusion, broadcast, journal
    #: replay — exactly as sender-side detection would. ``None`` (the
    #: default) keeps the paper's behaviour and adds no simulator
    #: events, so prior runs stay byte-identical.
    heartbeat_s: Optional[float] = None
    #: Period of the effectively-once checkpoint barrier: flush every
    #: dirty slate (with its watermarks) cluster-wide, then prune every
    #: journal entry old enough that its effect is durably covered.
    #: Soundness needs delivery + queueing latency under one period.
    checkpoint_epoch_s: float = 1.0
    #: Retry/backoff/fail-open policy for slate-manager kv operations
    #: (see :class:`repro.slates.manager.RetryPolicy`). The default
    #: retries transient store errors with exponential backoff and then
    #: degrades (counted) instead of raising into operator code.
    kv_retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: On machine recovery, flush every survivor's dirty slates before
    #: the ring re-admits the machine, so keys that move back are
    #: re-hydrated from fresh kv-store state (same barrier as
    #: :meth:`SimRuntime.schedule_add_machine`). Disabling widens the
    #: divergence window to the full flush interval.
    recovery_rebalance_flush: bool = True
    #: Data-plane batching: coalesce up to this many events per
    #: (source machine, destination machine) link into one network
    #: envelope, paying the per-message latency once and the payload
    #: bandwidth for the combined bytes. 0 (the default) disables
    #: batching — every event ships alone, the pre-batching behaviour.
    batch_max_events: int = 0
    #: How long a partially-filled batch may linger before it is
    #: shipped anyway. Only meaningful with ``batch_max_events > 0``;
    #: 0 coalesces only events sent at the same simulated instant.
    batch_linger_s: float = 0.0
    #: Memoize routing-hash lookups (machine ring, function rings, and
    #: the per-machine dispatchers). On by default; off recomputes every
    #: blake2b digest per event — the perf-gate/determinism ablation.
    memoize_routing: bool = True
    #: Group dirty slates into multi-cell kv batch writes per flush
    #: cycle. On by default; off writes one kv cell per slate.
    coalesce_slate_flushes: bool = True
    #: Opt-in structured event tracing (see :mod:`repro.obs.trace`).
    #: Off by default: the engine then holds no tracer at all and every
    #: emission site is one ``is not None`` check — the measured-zero-
    #: overhead no-op path gated by ``bench_obs_overhead.py``. On, spans
    #: land in an in-memory ring (or a sink passed to ``SimRuntime``).
    trace: bool = False
    #: Ring capacity for the default in-memory trace sink.
    trace_capacity: int = 65_536
    #: Record per-machine queue/dirty-slate and per-updater latency
    #: timeseries, sampled on the existing flusher tick (no extra
    #: simulator events — ``counter_report`` stays byte-identical).
    timeline: bool = False
    #: Overload-control subsystem (see :mod:`repro.shedding`): adaptive
    #: backpressure tiers plus probabilistic thinning of thinnable
    #: updaters. ``None`` (the default) disables the whole subsystem —
    #: the engine then behaves byte-identically to pre-shedding builds.
    shedding: Optional[SheddingConfig] = None
    #: Hybrid analytic/DES fast-forwarding (see
    #: :mod:`repro.sim.fastforward`). Off (the default) runs the exact
    #: stepper. On, :func:`repro.sim.fastforward.create_runtime` builds
    #: a :class:`~repro.sim.fastforward.FastForwardRuntime`, which fuses
    #: the dispatch→route→enqueue→deliver inner loop and advances
    #: quiescent stretches analytically while producing the *same*
    #: ``counter_report()`` and slate contents as the exact engine.
    #: ``SimRuntime`` itself ignores the knob, so constructing one
    #: directly always yields exact behaviour.
    fastforward: bool = False
    #: Elastic autoscaling policy (see :mod:`repro.elastic.autoscaler`):
    #: EWMA-smoothed queue/p99/dirty-backlog signals drive planned
    #: grow/shrink decisions at runtime. ``None`` (the default) leaves
    #: membership fully static/manual — prior runs are untouched.
    autoscale: Optional[AutoscalerConfig] = None
    #: Crash-safe live slate migration (see
    #: :mod:`repro.elastic.migration`): planned membership changes
    #: stream each moving slate's changelog donor→receiver and cut over
    #: behind a per-migration epoch barrier instead of the legacy
    #: cluster-wide flush + lazy rehydration. ``None`` (the default)
    #: keeps the legacy flush-barrier join path.
    migration: Optional[MigrationConfig] = None

    def __post_init__(self) -> None:
        if self.engine not in (ENGINE_MUPPET1, ENGINE_MUPPET2):
            raise ConfigurationError(
                f"engine must be {ENGINE_MUPPET1!r} or {ENGINE_MUPPET2!r}"
            )
        if self.batch_max_events < 0:
            raise ConfigurationError(
                "batch_max_events must be >= 0 (0 disables batching), "
                f"got {self.batch_max_events}")
        if self.batch_linger_s < 0:
            raise ConfigurationError(
                "batch_linger_s must be >= 0.0 seconds, "
                f"got {self.batch_linger_s!r}")
        if self.trace_capacity < 1:
            raise ConfigurationError(
                f"trace_capacity must be >= 1, got {self.trace_capacity}")
        if self.overflow.kind == "throttle" and self.throttle is None:
            self.throttle = SourceThrottle()
        if self.shedding is not None and self.throttle is None:
            # The shedding controller's throttle tier drives a
            # SourceThrottle directly via pause()/resume() (no watermark
            # monitor); it still needs one to exist.
            self.throttle = SourceThrottle()
        if self.delivery_semantics not in (
                "at-most-once", "at-least-once", "effectively-once"):
            raise ConfigurationError(
                "delivery_semantics must be at-most-once, at-least-once "
                f"or effectively-once, got {self.delivery_semantics!r}")
        if self.checkpoint_epoch_s <= 0:
            raise ConfigurationError(
                "checkpoint_epoch_s must be > 0 seconds, "
                f"got {self.checkpoint_epoch_s!r}")
        if self.heartbeat_s is not None and self.heartbeat_s <= 0:
            raise ConfigurationError(
                "heartbeat_s must be > 0 seconds (or None to disable "
                f"the liveness sweep), got {self.heartbeat_s!r}")
        if self.delivery_semantics == "effectively-once":
            if self.replay_horizon_s is not None:
                raise ConfigurationError(
                    "effectively-once prunes its journal at checkpoint "
                    "epochs; replay_horizon_s must stay None (a time "
                    "horizon could drop entries still needed for exact "
                    "recovery)")
        elif self.replay_horizon_s is not None:
            # Legacy spelling: a bare horizon always meant "replay on".
            self.delivery_semantics = "at-least-once"
        elif self.delivery_semantics == "at-least-once":
            self.replay_horizon_s = 0.25
        if self.migration is not None and self.engine != ENGINE_MUPPET2:
            raise ConfigurationError(
                "live slate migration requires the muppet2 engine (one "
                "central slate manager per machine to stream from), "
                f"got engine={self.engine!r}")
        if self.autoscale is not None and self.engine != ENGINE_MUPPET2:
            raise ConfigurationError(
                "elastic autoscaling requires the muppet2 engine, "
                f"got engine={self.engine!r}")


@dataclass(slots=True)
class _Envelope:
    """An event in flight, carrying provenance for latency accounting."""

    event: Event
    birth_ts: float
    dest_fn: str
    is_timer: bool = False
    timer_payload: Any = None
    #: Set once the envelope has been diverted to an overflow stream;
    #: a second overflow then drops it (no diversion recursion).
    diverted: bool = False
    #: True for envelopes resurrected from a sender's replay journal
    #: (and for everything an operator derives from one). Only these are
    #: checked against the per-slate dedup watermarks — fresh events
    #: always apply, so late out-of-order fresh delivery is never
    #: mistaken for a duplicate.
    replayed: bool = False


class _Worker:
    """One execution slot: a 1.0 worker process or a 2.0 thread."""

    __slots__ = ("wid", "machine", "index", "function", "queue", "busy",
                 "current", "waiting", "mgr")

    def __init__(self, wid: str, machine: "_Machine", index: int,
                 function: Optional[str], queue_capacity: int,
                 mgr: SlateManager) -> None:
        self.wid = wid
        self.machine = machine
        self.index = index
        self.function = function          # None => any function (2.0)
        self.queue: BoundedQueue[_Envelope] = BoundedQueue(queue_capacity)
        self.busy = False
        self.current: Optional[Tuple[str, str]] = None
        self.waiting = False
        self.mgr = mgr


class _Machine:
    """A simulated cluster machine hosting workers and a kv node."""

    def __init__(self, name: str, cores: int) -> None:
        self.name = name
        self.cores = cores
        self.alive = True
        self.free_cores = cores
        self.waiting: Deque[_Worker] = deque()
        self.workers: List[_Worker] = []
        self.dispatcher: Optional[TwoChoiceDispatcher] = None
        self.shared_instances: Dict[str, Operator] = {}
        self.central_mgr: Optional[SlateManager] = None
        self.device_busy_until = 0.0
        #: Current overload-control pressure tier (0 = normal); written
        #: by the shedding monitor, read on the per-event hot paths.
        self.pressure_tier = 0
        #: Retired by a scale-down: out of the worker ring but kept in
        #: ``SimRuntime.machines`` (probe/report key sets stay stable),
        #: and first in line for re-admission on the next scale-up.
        self.retired = False
        #: Effectively-once replay ordering guard (2.0 engine only).
        #: While replayed envelopes for a (key, fn) sit in a worker's
        #: queue, every same-(key, fn) dispatch must land on that worker:
        #: the two-choice spill rule would otherwise let a *fresh* event
        #: jump to the idle secondary, apply first, and advance the slate
        #: watermark past the still-queued replay — which then gets
        #: dedup-skipped even though its effect was lost in the crash.
        #: Maps (key, fn) -> [worker, queued_replay_count]; empty (zero
        #: cost) whenever no replays are in flight.
        self.replay_pins: Dict[Tuple[str, str], List[Any]] = {}

    def queue_depth_fraction(self) -> float:
        """Worst queue fullness across this machine's workers."""
        worst = 0.0
        for worker in self.workers:
            cap = worker.queue.max_size or 1
            worst = max(worst, len(worker.queue) / cap)
        return worst


@dataclass
class SimReport:
    """Everything a benchmark needs from one simulated run."""

    engine: str
    duration_s: float
    counters: EventCounter
    latency: Optional[LatencySummary]
    latency_by_updater: Dict[str, LatencySummary]
    throughput: ThroughputReport
    dispatch_stats: Dict[str, Any]
    master_stats: Dict[str, int]
    queue_peak_depth: int
    slate_contention_events: int
    max_workers_per_slate: int
    failure_detection_s: Optional[float]
    throttle_paused_s: float
    memory_mb_per_machine: float
    kv_stats: Dict[str, Dict[str, int]]
    device_stats: Dict[str, Dict[str, float]]
    steps: int
    robustness: RobustnessCounters = field(
        default_factory=RobustnessCounters)
    dataplane: DataPlaneCounters = field(
        default_factory=DataPlaneCounters)
    #: Replay-journal accounting (all zero when replay is off).
    replay: ReplayStats = field(default_factory=ReplayStats)
    #: Overload-control accounting (all zero when shedding is off).
    shedding: SheddingCounters = field(default_factory=SheddingCounters)
    #: Ground-truth counter-error summary versus the reference executor
    #: (filled via :func:`repro.shedding.measure.attach_error_report`;
    #: None when no error measurement was taken).
    shedding_error: Optional[Dict[str, Any]] = None
    #: Full :class:`repro.obs.MetricsRegistry` family snapshot taken at
    #: report time: the six counter_report families plus the new
    #: observability families (queues, slates, kv, latency histograms).
    metrics: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Timeline samples (``SimConfig.timeline``); None when disabled.
    timeline_data: Optional[Dict[str, Any]] = None

    #: counter_report's families, in their historical print order.
    REPORT_FAMILIES = ("counters", "robustness", "master", "dispatch",
                       "dataplane", "replay", "overload")

    def events_per_second(self) -> float:
        """Processed updater/mapper deliveries per simulated second."""
        return self.throughput.events_per_second

    def timeline(self) -> Dict[str, Any]:
        """Per-machine and per-updater timeseries sampled during the run.

        Shape: ``{"machines": {name: [{"t", "queue_depth", "queue_peak",
        "dirty_slates", "alive"}, ...]}, "updaters": {name: [{"t",
        "count", "mean", "p50", "p95", "p99", "max"}, ...]}}`` — empty
        series when ``SimConfig.timeline`` was off.
        """
        if self.timeline_data is None:
            return {"machines": {}, "updaters": {}}
        return self.timeline_data

    def counter_report(self) -> str:
        """A deterministic, line-oriented dump of every counter.

        Two runs of the same seeded :class:`~repro.faults.FaultSchedule`
        over the same workload must produce *byte-identical* output from
        this method — the chaos-determinism contract tests assert on it.
        Floats are rendered with ``repr`` (shortest round-trip form), so
        any numeric drift shows up as a diff.

        The body is generated from the :class:`~repro.obs.
        MetricsRegistry` family snapshot captured at report time; the
        families and their keys mirror the pre-registry sections
        exactly, so the output is byte-identical across the refactor.
        Only the six historical families print — the registry's new
        families (queues, slates, kv, latency) are read via
        :attr:`metrics` instead, so existing seeded gates stay stable.
        """
        lines = [f"engine={self.engine}",
                 f"duration_s={self.duration_s!r}",
                 f"steps={self.steps}"]
        if self.metrics:
            for family in self.REPORT_FAMILIES:
                for name, value in sorted(
                        self.metrics.get(family, {}).items()):
                    lines.append(f"{family}.{name}={value!r}")
            return "\n".join(lines)
        # Legacy path for reports constructed without a registry
        # snapshot (hand-built SimReports in tests/tools).
        for name, value in sorted(self.counters.snapshot().items()):
            lines.append(f"counters.{name}={value!r}")
        for name, value in sorted(self.robustness.as_dict().items()):
            lines.append(f"robustness.{name}={value!r}")
        for name, value in sorted(self.master_stats.items()):
            lines.append(f"master.{name}={value!r}")
        for name, value in sorted(self.dispatch_stats.items()):
            lines.append(f"dispatch.{name}={value!r}")
        for name, value in sorted(self.dataplane.as_dict().items()):
            lines.append(f"dataplane.{name}={value!r}")
        for name, value in sorted(asdict(self.replay).items()):
            lines.append(f"replay.{name}={value!r}")
        for name, value in sorted(self.shedding.as_dict().items()):
            lines.append(f"overload.{name}={value!r}")
        return "\n".join(lines)


class SimRuntime:
    """Runs one MapUpdate application on a simulated Muppet cluster.

    Args:
        app: A validated application.
        cluster: The machine/network topology to simulate.
        config: Engine and policy knobs.
        sources: External-stream feeds.
        failures: Either the legacy ``[(time_s, machine_name), ...]``
            kill list, or a :class:`repro.faults.FaultSchedule` with the
            full chaos vocabulary (crash/recover, partitions, slow
            nodes, message drop/delay, kv outages).
    """

    def __init__(
        self,
        app: Application,
        cluster: ClusterSpec,
        config: Optional[SimConfig] = None,
        sources: Iterable[Source] = (),
        failures: Union[Iterable[Tuple[float, str]], FaultSchedule] = (),
        tracer: Optional[Tracer] = None,
    ) -> None:
        app.validate()
        self.app = app
        self.cluster = cluster
        self.config = config or SimConfig()
        self.sources = list(sources)
        #: The span sink, or None when tracing is off. Every emission
        #: site guards on ``self._trace is not None`` so the disabled
        #: path costs one attribute test — nothing is allocated, no
        #: span arguments are even built.
        if tracer is not None:
            self._trace: Optional[Tracer] = tracer
        elif self.config.trace:
            self._trace = RingTracer(self.config.trace_capacity)
        else:
            self._trace = None
        self._timeline = (TimelineRecorder() if self.config.timeline
                          else None)
        #: The observability registry: every stats object below is
        #: registered as a live view (see :meth:`_register_metrics`).
        self.metrics = MetricsRegistry()
        if isinstance(failures, FaultSchedule):
            self.fault_schedule = failures
        else:
            self.fault_schedule = FaultSchedule.from_kill_list(failures)
        #: Legacy view of the schedule's crash events.
        self.failures = self.fault_schedule.kill_list()
        injector = FaultInjector(self.fault_schedule)
        #: Interval-rule injector; None when no rule exists so the
        #: per-message hot path stays untouched for fault-free runs.
        self._injector = injector if injector.has_rules() else None
        self._recoveries = 0
        self.sim = self._make_simulator()
        self.counters = EventCounter()
        self.master = Master()
        self.latency: Dict[str, LatencyRecorder] = {}
        self._known_failed: Set[str] = set()
        self._failure_time: Optional[float] = None
        self._detection_time: Optional[float] = None
        self._contention_events = 0
        self._max_workers_per_slate = 1
        self._processing_counts: Dict[Tuple[str, str], int] = {}
        #: Data-plane batching state, keyed by (source machine or None
        #: for M0/source sends, destination machine) — one buffer and at
        #: most one linger timer per link.
        self._batching = self.config.batch_max_events > 0
        self._batch_buffers: Dict[Tuple[Optional[str], str],
                                  List[_Envelope]] = {}
        self._batch_extra: Dict[Tuple[Optional[str], str], float] = {}
        self._batch_timers: Dict[Tuple[Optional[str], str],
                                 ScheduledEvent] = {}
        self._batch_last_arrival: Dict[Tuple[Optional[str], str],
                                       float] = {}
        self.dataplane = DataPlaneCounters()
        self._subs_cache: Dict[str, List[OperatorSpec]] = {}

        self.store = ReplicatedKVStore(
            node_names=cluster.names(),
            replication_factor=self.config.kv_replication,
            clock=self.sim.clock,
            device_overrides={m.name: m.storage for m in cluster.machines},
            memtable_flush_bytes=self.config.kv_memtable_flush_bytes,
            compaction_threshold=self.config.kv_compaction_threshold,
            tracer=self._trace,
        )
        from repro.muppet.replay import ReplayJournal

        semantics = self.config.delivery_semantics
        if semantics == "effectively-once":
            self.replay_journal: Optional[ReplayJournal] = (
                ReplayJournal.epoch_pruned())
        elif semantics == "at-least-once":
            self.replay_journal = ReplayJournal(self.config.replay_horizon_s)
        else:
            self.replay_journal = None
        #: Effectively-once state: dedup on, per-origin ids on derived
        #: events, and the checkpoint-epoch barrier.
        self._dedup = semantics == "effectively-once"
        self._replay_reapplied = 0
        self._epoch_pruned = 0
        self._timer_ids = itertools.count(1)
        #: Recent checkpoint-barrier times; epoch k prunes journal
        #: entries recorded before tick[k-2] (two periods of slack for
        #: effects still in flight or queued at the barrier).
        self._epoch_ticks: Deque[float] = deque(maxlen=3)
        self.counters_replayed = 0
        #: Overload-control state: controller + thinner exist only when
        #: ``SimConfig.shedding`` is set, so the disabled hot paths cost
        #: one ``is not None`` test each (same discipline as tracing).
        shed_cfg = self.config.shedding
        if shed_cfg is not None:
            if shed_cfg.overflow_sid is not None:
                # Validate eagerly: a typo'd overflow stream should fail
                # at construction, not mid-overload.
                app.streams.spec(shed_cfg.overflow_sid)
            self._shed: Optional[BackpressureController] = (
                BackpressureController(shed_cfg))
            self._thinner: Optional[Thinner] = Thinner(
                shed_cfg.thinning, seed=shed_cfg.seed)
            self._thinnable: Set[str] = {
                s.name for s in app.thinnable_updaters()}
        else:
            self._shed = None
            self._thinner = None
            self._thinnable = set()
        #: Shedding accounting; an all-zero stand-in when shedding is
        #: off so the ``overload`` metrics family stays present (and
        #: deterministic) in every report.
        self.shedding = (self._shed.counters if self._shed is not None
                         else SheddingCounters())
        #: Per-machine overflow outcome counts (satellite of the
        #: ``overload`` family): ``{machine: {outcome: count}}``.
        self._overflow_outcomes: Dict[str, Dict[str, int]] = {}
        #: Elastic scaling: the autoscaler decides, the migration
        #: coordinator executes. Both are None when unconfigured, so
        #: every previously-working configuration runs byte-identically
        #: (no extra simulator events, no new metrics family).
        auto_cfg = self.config.autoscale
        self._autoscaler = (Autoscaler(auto_cfg)
                            if auto_cfg is not None else None)
        mig_cfg = self.config.migration
        if mig_cfg is not None:
            self._migration: Optional[MigrationCoordinator] = (
                MigrationCoordinator(
                    self, mig_cfg,
                    self.fault_schedule.migration_triggers()))
        else:
            self._migration = None
        #: Scale requests queued behind the (single) in-flight
        #: migration, as (kind, machine) pairs.
        self._pending_scale: Deque[Tuple[str, str]] = deque()
        #: Elastic joins in admission order — shrink retires LIFO.
        self._join_order: List[str] = []
        self._elastic_seq = itertools.count(1)
        #: Machines whose queue/slate probes are registered (joins at
        #: runtime register theirs exactly once).
        self._probed_machines: Set[str] = set()
        self.machines: Dict[str, _Machine] = {}
        self._build_machines()
        self._build_rings()
        self._register_metrics()
        #: Hot-path plumbing: pre-bound handler references (an attribute
        #: fetch of a method allocates a fresh bound-method object per
        #: event; binding once here makes the per-event fetch a plain
        #: load) and a pre-resolved operator-spec table (dict hit instead
        #: of Application.operator's try/except per delivery).
        self._deliver_bound = self._deliver
        self._finish_bound = self._finish
        self._send_bound = self._send
        self._is_muppet2 = self.config.engine == ENGINE_MUPPET2
        self._op_specs: Dict[str, OperatorSpec] = {
            s.name: s for s in self.app.operators()}

    def _make_simulator(self) -> Simulator:
        """Factory for the event loop; the fast-forward runtime overrides
        this to install its tail-call trampoline scheduler. Everything —
        clock, kv-store, managers — hangs off the returned simulator's
        clock, so the swap must happen here, not after construction."""
        return Simulator()

    @property
    def tracer(self) -> Optional[Tracer]:
        """The active span sink, or None when tracing is off."""
        return self._trace

    # -- construction ------------------------------------------------------
    def _new_manager(self, capacity: int,
                     owner: Optional[str] = None) -> SlateManager:
        return SlateManager(
            store=self.store,
            cache_capacity=max(1, capacity),
            flush_policy=self.config.flush_policy,
            clock=self.sim.clock,
            consistency=self.config.consistency,
            max_slate_bytes=self.config.max_slate_bytes,
            retry=self.config.kv_retry,
            coalesce_flushes=self.config.coalesce_slate_flushes,
            tracer=self._trace,
            owner=owner,
        )

    def _build_machines(self) -> None:
        cfg = self.config
        for spec in self.cluster.machines:
            machine = _Machine(spec.name, spec.cores)
            if cfg.engine == ENGINE_MUPPET2:
                threads = cfg.threads_per_machine or spec.cores
                machine.central_mgr = self._new_manager(
                    cfg.cache_slates_per_machine, owner=spec.name)
                if cfg.two_choice:
                    machine.dispatcher = TwoChoiceDispatcher(
                        threads, cfg.dispatch_factor,
                        memoize=cfg.memoize_routing)
                else:
                    machine.dispatcher = SingleChoiceDispatcher(
                        threads, memoize=cfg.memoize_routing)
                machine.shared_instances = {
                    s.name: s.instantiate() for s in self.app.operators()
                }
                for i in range(threads):
                    machine.workers.append(_Worker(
                        wid=f"{spec.name}/t{i}", machine=machine, index=i,
                        function=None, queue_capacity=cfg.queue_capacity,
                        mgr=machine.central_mgr))
            else:
                # Muppet 1.0: worker process pairs per function.
                overrides = cfg.workers_per_function or {}
                total_workers = sum(
                    overrides.get(s.name,
                                  cfg.workers_per_function_per_machine)
                    for s in self.app.operators())
                per_worker_cache = max(
                    1, cfg.cache_slates_per_machine // max(1, total_workers))
                index = 0
                for op_spec in self.app.operators():
                    worker_count = overrides.get(
                        op_spec.name, cfg.workers_per_function_per_machine)
                    for j in range(worker_count):
                        worker = _Worker(
                            wid=f"{spec.name}/{op_spec.name}#{j}",
                            machine=machine, index=index,
                            function=op_spec.name,
                            queue_capacity=cfg.queue_capacity,
                            mgr=self._new_manager(per_worker_cache,
                                                  owner=spec.name))
                        # Each 1.0 worker loads its own copy of the code.
                        machine.shared_instances[worker.wid] = (
                            op_spec.instantiate())
                        machine.workers.append(worker)
                        index += 1
            self.machines[spec.name] = machine

    def _build_rings(self) -> None:
        memoize = self.config.memoize_routing
        if self.config.engine == ENGINE_MUPPET2:
            self._machine_ring: HashRing[str] = HashRing(
                self.cluster.names(), memoize=memoize)
            self._function_rings: Dict[str, HashRing[str]] = {}
        else:
            self._machine_ring = HashRing(self.cluster.names(),
                                          memoize=memoize)
            self._function_rings = {}
            for op_spec in self.app.operators():
                workers = [
                    w.wid
                    for machine in self.machines.values()
                    for w in machine.workers
                    if w.function == op_spec.name
                ]
                self._function_rings[op_spec.name] = HashRing(
                    workers, memoize=memoize)
            self._worker_by_id: Dict[str, _Worker] = {
                w.wid: w
                for machine in self.machines.values()
                for w in machine.workers
            }

    def _register_metrics(self) -> None:
        """Attach every stats object to the registry as a live view.

        The first six families mirror ``SimReport.counter_report``'s
        historical sections exactly (same keys, same values), which is
        what keeps that report byte-identical across the registry
        refactor; the remaining families (queues, slates, kv, latency)
        are new observability surface read via ``SimReport.metrics`` or
        the CLI ``--metrics-out`` sink.
        """
        from repro.muppet.replay import ReplayStats

        reg = self.metrics
        reg.register_group("counters", self.counters.snapshot)
        reg.register_group(
            "robustness", lambda: self._robustness_counters().as_dict())
        reg.register_group("master", self.master.stats.as_dict)
        reg.register_group("dispatch", self._dispatch_stats)
        reg.register_group("dataplane", self.dataplane.as_dict)
        reg.register_group(
            "replay",
            lambda: asdict(self.replay_journal.stats
                           if self.replay_journal is not None
                           else ReplayStats()))
        reg.register_group("overload", self._overload_stats)
        for name, machine in self.machines.items():
            self._probed_machines.add(name)
            reg.register_group(f"queues.{name}",
                               self._make_queue_probe(machine))
            reg.register_group(f"slates.{name}",
                               self._make_slate_probe(machine))
        reg.register_group("kv", self._kv_probe)
        if self._autoscaler is not None or self._migration is not None:
            # Registered only when the subsystem is on: the family's
            # presence in metrics snapshots must not perturb runs that
            # never asked for elasticity.
            reg.register_group("elastic", self._elastic_stats)

    #: Overflow outcomes reported per machine under ``overload.queue.*``
    #: (zero-filled so the key set is load-independent).
    _OVERFLOW_OUTCOMES = ("dropped", "diverted", "diverted_proactive",
                          "throttle_retries")

    def _overload_stats(self) -> Dict[str, Any]:
        """The ``overload`` metrics family: shedding counters, source-
        throttle duty cycle, per-machine tier and overflow outcomes."""
        stats: Dict[str, Any] = self.shedding.as_dict()
        throttle = self.config.throttle
        now = self.sim.now()
        stats["throttle_pauses"] = (throttle.pause_count
                                    if throttle is not None else 0)
        stats["throttle_duty"] = (throttle.duty_cycle(now)
                                  if throttle is not None else 0.0)
        for name in sorted(self.machines):
            outcomes = self._overflow_outcomes.get(name, {})
            for outcome in self._OVERFLOW_OUTCOMES:
                stats[f"queue.{name}.{outcome}"] = outcomes.get(outcome, 0)
            stats[f"tier.{name}"] = (self._shed.tier_of(name)
                                     if self._shed is not None else 0)
        return stats

    def _note_overflow(self, machine_name: str, outcome: str) -> None:
        outcomes = self._overflow_outcomes.get(machine_name)
        if outcomes is None:
            outcomes = self._overflow_outcomes[machine_name] = {}
        outcomes[outcome] = outcomes.get(outcome, 0) + 1

    def _make_queue_probe(self, machine: "_Machine"):
        def probe() -> Dict[str, int]:
            return {
                "depth": sum(len(w.queue) for w in machine.workers),
                "peak": max((w.queue.stats.peak_depth
                             for w in machine.workers), default=0),
                "rejected": sum(w.queue.stats.rejected
                                for w in machine.workers),
            }
        return probe

    def _make_slate_probe(self, machine: "_Machine"):
        def probe() -> Dict[str, int]:
            managers = self._managers_of(machine)
            stats: Dict[str, int] = {
                "dirty": sum(m.cache.dirty_count() for m in managers),
                "resident": sum(len(m.cache) for m in managers),
            }
            for field_name in ("kv_reads", "kv_writes", "batch_flushes",
                               "rehydrated"):
                stats[field_name] = sum(getattr(m.stats, field_name)
                                        for m in managers)
            for field_name in ("hits", "misses", "evictions",
                               "dirty_evictions"):
                stats[f"cache_{field_name}"] = sum(
                    m.cache.stats.as_dict()[field_name] for m in managers)
            return stats
        return probe

    def _kv_probe(self) -> Dict[str, int]:
        flat: Dict[str, int] = {
            "hints_stored": self.store.hints_stored,
            "hints_delivered": self.store.hints_delivered,
            "hints_pending": self.store.pending_hints(),
        }
        for node_name, stats in self.store.stats_by_node().items():
            for key, value in stats.items():
                flat[f"{node_name}.{key}"] = value
        for node_name, node in self.store.nodes.items():
            for key, value in node.observable_state().items():
                flat[f"{node_name}.{key}"] = value
        return flat

    def _dispatch_stats(self) -> Dict[str, Any]:
        """Cluster-wide dispatcher counters (summed across machines)."""
        dispatch: Dict[str, Any] = {}
        for machine in self.machines.values():
            if machine.dispatcher is not None:
                stats = machine.dispatcher.stats
                for key, value in stats.as_dict().items():
                    dispatch[key] = dispatch.get(key, 0) + value
        return dispatch

    # -- top-level run -------------------------------------------------------
    def run(self, duration_s: float) -> SimReport:
        """Simulate ``duration_s`` seconds and summarize the outcome."""
        for source in self.sources:
            self._start_source(source)
        for fault in self.fault_schedule.point_events():
            if fault.kind == "crash":
                self.sim.schedule(fault.at, self._make_failure(fault.machine),
                                  priority=-1)
            elif fault.kind == "recover":
                self.sim.schedule(fault.at,
                                  self._make_recovery(fault.machine),
                                  priority=-1)
            elif fault.kind == "kv_outage":
                self.sim.schedule(fault.at, self._make_kv_down(fault.machine),
                                  priority=-1)
                self.sim.schedule(fault.until,
                                  self._make_kv_up(fault.machine),
                                  priority=-1)
        self._schedule_flusher()
        if self.config.heartbeat_s is not None:
            self._schedule_heartbeat()
        if self._dedup:
            self._schedule_epochs()
        if self._shed is not None:
            # The backpressure controller owns the throttle (tier 3
            # pauses sources); the classic watermark monitor would fight
            # it, so only one of the two runs.
            self._schedule_shedding_monitor()
        elif self.config.throttle is not None:
            self._schedule_throttle_monitor()
        if self._autoscaler is not None:
            self._schedule_autoscaler()
        self.sim.run_until(duration_s)
        if self._shed is not None:
            self._shed.finish(self.sim.now())
        if self.config.throttle is not None:
            self.config.throttle.finish(self.sim.now())
        return self._report(duration_s)

    # -- sources -----------------------------------------------------------------
    def _start_source(self, source: Source) -> None:
        iterator = source.events
        state = {"next": next(iterator, None)}

        def step(sim: Simulator) -> None:
            # Drain every event already due in one step, then sleep
            # until the next arrival — one heap entry per quiet gap
            # instead of a zero-delay re-step per event.
            while True:
                event = state["next"]
                if event is None:
                    return
                throttle = self.config.throttle
                if throttle is not None and throttle.paused:
                    self.counters.throttled += 1
                    sim.schedule_in(self.config.throttle_check_s, step)
                    return
                if event.ts > sim.now():
                    sim.schedule(event.ts, step)
                    return
                self._inject(event)
                state["next"] = next(iterator, None)

        self.sim.schedule_in(0.0, step)

    def _subscribers_of(self, sid: str) -> List[OperatorSpec]:
        """Per-sid subscriber lists, cached (the workflow is immutable
        once the runtime is built; ``Application.subscribers_of`` scans
        every operator per call, far too slow for the per-event path)."""
        subs = self._subs_cache.get(sid)
        if subs is None:
            subs = self._subs_cache[sid] = list(self.app.subscribers_of(sid))
        return subs

    def _inject(self, event: Event) -> None:  # hot-path
        """M0 reads one source event and hashes it onward (Section 4.1)."""
        stamped = self.app.streams.stamp(event)
        self.counters.published += 1
        birth = self.sim.now()
        if self._trace is not None:
            origin, oseq = stamped.provenance()
            self._trace.emit(birth, "source", sid=stamped.sid,
                             key=stamped.key, origin=origin, oseq=oseq)
        for spec in self._subscribers_of(stamped.sid):
            envelope = _Envelope(stamped, birth, spec.name)
            self._send(envelope, from_machine=None,
                       extra_delay=self.config.costs.source_service_s)

    # -- routing / sending ------------------------------------------------------
    def _send(self, envelope: _Envelope, from_machine: Optional[str],  # hot-path
              extra_delay: float = 0.0) -> None:
        machine = self._destination_machine(envelope)
        if machine is None:
            self.counters.lost_failure += 1
            return
        if self._dedup and not envelope.is_timer:
            # Effectively-once journals *before* the liveness check: an
            # event addressed to a machine that died an instant ago (the
            # window before the master broadcast reroutes the ring) must
            # still be replayable, or it is lost exactly as under
            # at-most-once. Timers are exempt — a replayed invocation
            # that re-applies re-derives its timers, so journaling them
            # too would double-fire.
            self.replay_journal.record(machine.name, envelope,
                                       self.sim.now())
        if not machine.alive:
            self._handle_dead_destination(machine, envelope)
            return
        if self.replay_journal is not None and not self._dedup:
            self.replay_journal.record(machine.name, envelope,
                                       self.sim.now())
        same = from_machine == machine.name
        if (self._batching and not same
                and not (self._dedup and envelope.replayed)):
            # Loopback sends skip batching: they pay no per-message
            # network latency, so coalescing would only add linger.
            # Replayed envelopes (effectively-once) also ship solo: a
            # resend lingering in a coalescing buffer could be overtaken
            # by a fresh, higher-sequence event arriving over a
            # different link, and a lost event sneaking in *behind* the
            # watermark its successor advanced would be mistaken for a
            # duplicate. Batching only ever delays an event, so solo
            # resends stay ahead of everything sent after them.
            self._batch_enqueue(envelope, from_machine, machine,
                                extra_delay)
            return
        delay = extra_delay + self.cluster.network.transfer_time(
            envelope.event.size_bytes(), same_machine=same)
        if self._injector is not None:
            delivered, delay = self._injector.message_fate(
                from_machine, machine.name, self.sim.now(), delay)
            if not delivered:
                # Partition/drop losses are silent: the sender does not
                # learn of them, so no failure report follows (unlike a
                # dead destination). Replay, if enabled, journaled the
                # event above and can resurrect it on a later crash.
                return
        self.sim.schedule_call_in(delay, self._deliver_bound,
                                  machine, envelope)

    # -- data-plane batching ---------------------------------------------------
    def _batch_enqueue(self, envelope: _Envelope,
                       from_machine: Optional[str], machine: _Machine,
                       extra_delay: float) -> None:
        """Buffer one event on its (source, destination) link.

        The buffer ships when it reaches ``batch_max_events`` or when
        the per-link linger timer expires, whichever comes first.
        """
        key = (from_machine, machine.name)
        buf = self._batch_buffers.get(key)
        if buf is None:
            buf = self._batch_buffers[key] = []
        buf.append(envelope)
        self.dataplane.batched_events += 1
        if extra_delay > self._batch_extra.get(key, 0.0):
            self._batch_extra[key] = extra_delay
        if len(buf) >= self.config.batch_max_events:
            self.dataplane.size_flushes += 1
            self._flush_batch(key, trigger="size")
            return
        if key not in self._batch_timers:
            self._batch_timers[key] = self.sim.schedule_cancellable(
                self.config.batch_linger_s,
                lambda sim: self._linger_expired(key))

    def _linger_expired(self, key: Tuple[Optional[str], str]) -> None:
        self._batch_timers.pop(key, None)
        if self._batch_buffers.get(key):
            self.dataplane.linger_flushes += 1
            self._flush_batch(key, trigger="linger")

    def _flush_batch(self, key: Tuple[Optional[str], str],
                     trigger: str = "forced") -> None:
        """Ship one link's buffer as a single coalesced envelope.

        One per-message network latency is paid for the whole batch,
        plus bandwidth for the combined payload bytes; the fault
        injector decides one fate for the envelope (a dropped batch
        loses every event in it, like a dropped TCP connection). An
        arrival-time clamp keeps the link FIFO: a later, smaller batch
        must not overtake an earlier, larger one mid-flight.
        """
        timer = self._batch_timers.pop(key, None)
        if timer is not None:
            timer.cancel()
        envelopes = self._batch_buffers.pop(key, None)
        extra = self._batch_extra.pop(key, 0.0)
        if not envelopes:
            return
        from_name, dest_name = key
        machine = self.machines[dest_name]
        if not machine.alive:
            for env in envelopes:
                self._handle_dead_destination(machine, env)
            return
        total_bytes = sum(e.event.size_bytes() for e in envelopes)
        delay = extra + self.cluster.network.transfer_time(
            total_bytes, same_machine=False)
        if self._injector is not None:
            delivered, delay = self._injector.message_fate(
                from_name, dest_name, self.sim.now(), delay)
            if not delivered:
                return
        arrival = max(self.sim.now() + delay,
                      self._batch_last_arrival.get(key, 0.0))
        self._batch_last_arrival[key] = arrival
        self.dataplane.batches_sent += 1
        if len(envelopes) > self.dataplane.max_batch_events:
            self.dataplane.max_batch_events = len(envelopes)
        if self._trace is not None:
            self._trace.emit(self.sim.now(), "batch_flush",
                             src=from_name, dst=dest_name,
                             events=len(envelopes), trigger=trigger)

        def deliver_all(sim: Simulator) -> None:
            for env in envelopes:
                self._deliver(machine, env)

        self.sim.schedule(arrival, deliver_all)

    def _flush_all_batches(self) -> None:
        """Force every buffered batch onto the wire (ring changes)."""
        if not self._batching:
            return
        for key in list(self._batch_buffers.keys()):
            if self._batch_buffers.get(key):
                self.dataplane.forced_flushes += 1
                self._flush_batch(key)

    def _flush_batches_to(self, dest_name: str) -> None:
        """Force batches headed for one machine (it just died)."""
        if not self._batching:
            return
        for key in [k for k in self._batch_buffers if k[1] == dest_name]:
            if self._batch_buffers.get(key):
                self.dataplane.forced_flushes += 1
                self._flush_batch(key)

    def _destination_machine(self, envelope: _Envelope) -> Optional[_Machine]:
        key = route_key(envelope.event.key, envelope.dest_fn)
        try:
            if self.config.engine == ENGINE_MUPPET2:
                name = self._machine_ring.lookup(key)
                return self.machines[name]
            ring = self._function_rings[envelope.dest_fn]
            wid = ring.lookup(key)
            return self._worker_by_id[wid].machine
        except Exception:
            return None

    def _handle_dead_destination(self, machine: _Machine,
                                 envelope: _Envelope) -> None:
        """Sender-side failure detection (Section 4.3): the event is lost
        (and logged as lost); the master broadcast then reroutes."""
        self.counters.lost_failure += 1
        if machine.name in self._known_failed:
            return
        latency = self.cluster.network.latency_s

        def broadcast(sim: Simulator) -> None:
            self._declare_machine_failed(machine.name)

        # Report to master (one hop) + broadcast to workers (one hop).
        self.sim.schedule_in(2 * latency, broadcast, priority=-1)

    def _declare_machine_failed(self, machine_name: str) -> None:
        """Master-side failure handling: exclude the machine and replay.

        The body of the Section 4.3 failure broadcast, callable both
        from the deferred sender-detection path and synchronously (the
        migration coordinator declares a receiver dead at ack time —
        the replayable window is still pinned by the migration hold, so
        exclusion + journal replay heal the handed-off keys exactly).
        Idempotent: a machine already known failed is a no-op.
        """
        if machine_name in self._known_failed:
            return
        machine = self.machines[machine_name]
        now = self.sim.now()
        self._known_failed.add(machine_name)
        self.master.report_failure(machine_name)
        self._machine_ring.exclude(machine_name)
        for ring in self._function_rings.values():  # noqa: MUP010 -- built once at construction; per-ring excludes commute
            for worker in machine.workers:
                ring.exclude(worker.wid)
        if self._trace is not None:
            self._trace.emit(now, "ring_change",
                             change="exclude", machine=machine_name)
        if self._detection_time is None and self._failure_time is not None:
            self._detection_time = now - self._failure_time
        if self.replay_journal is not None:
            # Section 4.3 future work, implemented: re-send the
            # horizon's worth of events that targeted the dead
            # machine. The ring now routes them to survivors. Under
            # effectively-once the resends are flagged so the
            # receiving updaters check them (and everything derived
            # from them) against their dedup watermarks.
            for lost in self.replay_journal.take_for(machine_name, now):
                self.counters_replayed += 1
                if self._dedup:
                    lost.replayed = True
                self._send(lost, from_machine=None)

    # -- delivery / queues -----------------------------------------------------
    def _deliver(self, machine: _Machine, envelope: _Envelope) -> None:  # hot-path
        if not machine.alive:
            self._handle_dead_destination(machine, envelope)
            return
        if self._dedup:
            # Close the rebalance residual hazard (see
            # :meth:`schedule_add_machine`): an event that was in flight
            # — or parked in a coalescing buffer — while the ring moved
            # its key would update the old owner's orphaned cache copy
            # and lose the last-write-wins race. Exactness cannot absorb
            # that, so late arrivals re-route to the current owner.
            target = self._destination_machine(envelope)
            if target is not None and target is not machine:
                self._send(envelope, from_machine=machine.name)
                return
        shed = self._shed
        if (shed is not None and not envelope.is_timer
                and not envelope.diverted
                and machine.pressure_tier >= TIER_OVERFLOW
                and shed.config.overflow_sid is not None
                and machine.queue_depth_fraction()
                >= shed.config.divert_fraction):
            # Overflow tier: shed arrivals to the degraded stream
            # *before* the queues fill, instead of waiting for hard
            # queue-full rejections.
            self.shedding.diverted_proactive += 1
            self._note_overflow(machine.name, "diverted_proactive")
            self._divert(machine, envelope, shed.config.overflow_sid,
                         proactive=True)
            return
        if self._is_muppet2:
            worker = None
            if machine.replay_pins:
                # Replay ordering guard (see _Machine.replay_pins): a
                # queued replay pins its (key, fn) to one worker so no
                # fresh same-key event can overtake it via the spill rule.
                pin = machine.replay_pins.get(
                    (envelope.event.key, envelope.dest_fn))
                if pin is not None:
                    worker = pin[0]
            if worker is None:
                # Fast path: the dispatcher inspects only its two candidate
                # workers instead of the caller building O(threads) length/
                # processing lists per event (see dispatch.choose_workers).
                worker = machine.dispatcher.choose_workers(
                    envelope.event.key, envelope.dest_fn, machine.workers)
        else:
            worker = self._choose_worker(machine, envelope)
            if worker is None:
                # The ring moved this key (failure broadcast raced the
                # send); re-route from scratch.
                self._send(envelope, from_machine=machine.name)
                return
        if self._trace is not None:
            origin, oseq = envelope.event.provenance()
            self._trace.emit(self.sim.now(), "dispatch",
                             machine=machine.name, fn=envelope.dest_fn,
                             key=envelope.event.key, worker=worker.index,
                             origin=origin, oseq=oseq)
        if worker.queue.offer(envelope):
            if (self._is_muppet2 and self._dedup and envelope.replayed
                    and not envelope.is_timer):
                pin_key = (envelope.event.key, envelope.dest_fn)
                pin = machine.replay_pins.get(pin_key)
                if pin is None:
                    machine.replay_pins[pin_key] = [worker, 1]
                else:
                    pin[1] += 1
            if self._trace is not None:
                origin, oseq = envelope.event.provenance()
                self._trace.emit(self.sim.now(), "enqueue",
                                 machine=machine.name,
                                 fn=envelope.dest_fn,
                                 key=envelope.event.key,
                                 worker=worker.index,
                                 depth=len(worker.queue),
                                 origin=origin, oseq=oseq)
            self._try_start(worker)
            return
        self._overflow(machine, worker, envelope)

    def _choose_worker(self, machine: _Machine,
                       envelope: _Envelope) -> Optional[_Worker]:
        if self.config.engine == ENGINE_MUPPET2:
            assert machine.dispatcher is not None
            lengths = [len(w.queue) for w in machine.workers]
            processing = [w.current for w in machine.workers]
            index = machine.dispatcher.choose(
                envelope.event.key, envelope.dest_fn, lengths, processing)
            return machine.workers[index]
        ring = self._function_rings[envelope.dest_fn]
        wid = ring.lookup(route_key(envelope.event.key, envelope.dest_fn))
        worker = self._worker_by_id[wid]
        if worker.machine is not machine:
            # A failure broadcast moved this key between send and deliver.
            return None
        return worker

    def _overflow(self, machine: _Machine, worker: _Worker,
                  envelope: _Envelope) -> None:
        policy = self.config.overflow
        if policy.kind == "drop" or envelope.diverted:
            self.counters.dropped_overflow += 1
            self._note_overflow(machine.name, "dropped")
            if self._trace is not None:
                origin, oseq = envelope.event.provenance()
                self._trace.emit(self.sim.now(), "shed",
                                 machine=machine.name, fn=envelope.dest_fn,
                                 key=envelope.event.key, outcome="drop",
                                 origin=origin, oseq=oseq)
            return
        if policy.kind == "divert":
            assert policy.overflow_sid is not None
            self._note_overflow(machine.name, "diverted")
            self._divert(machine, envelope, policy.overflow_sid)
            return
        # throttle: hold the event and retry; the throttle monitor pauses
        # the sources meanwhile, so the queue drains.
        self.counters.throttled += 1
        self._note_overflow(machine.name, "throttle_retries")
        if self._trace is not None:
            origin, oseq = envelope.event.provenance()
            self._trace.emit(self.sim.now(), "shed", machine=machine.name,
                             fn=envelope.dest_fn, key=envelope.event.key,
                             outcome="throttle_retry",
                             origin=origin, oseq=oseq)
        self.sim.schedule_call_in(self.config.retry_delay_s,
                                  self._deliver_bound, machine, envelope)

    def _divert(self, machine: _Machine, envelope: _Envelope,
                overflow_sid: str, proactive: bool = False) -> None:
        """Re-address one envelope to the degraded overflow stream.

        The diverted copy pins the original's replay-stable
        ``(origin, oseq)`` across the re-stamp — for a source event the
        provenance fallback is ``(sid, seq)``, which re-stamping onto a
        new stream would otherwise rewrite. One event therefore carries
        one identity whether it travels the normal or the degraded path,
        so the effectively-once audit, dedup watermarks, and
        ``ReplayStats`` account for diverted-then-reingested events
        instead of double-counting them. The ``replayed`` flag survives
        diversion for the same reason.
        """
        self.counters.diverted_overflow_stream += 1
        origin, oseq = envelope.event.provenance()
        stamped = self.app.streams.stamp(
            envelope.event.with_stream(overflow_sid))
        stamped = stamped.with_provenance(origin, oseq)
        if self._trace is not None:
            self._trace.emit(self.sim.now(), "shed", machine=machine.name,
                             fn=envelope.dest_fn, key=stamped.key,
                             outcome="divert", proactive=proactive,
                             origin=origin, oseq=oseq)
        for spec in self._subscribers_of(overflow_sid):
            self._send(_Envelope(stamped, envelope.birth_ts, spec.name,
                                 diverted=True, replayed=envelope.replayed),
                       from_machine=machine.name)

    # -- execution -------------------------------------------------------------
    def _try_start(self, worker: _Worker) -> None:  # hot-path
        machine = worker.machine
        if not machine.alive or worker.busy or len(worker.queue) == 0:
            return
        if machine.free_cores <= 0:
            if not worker.waiting:
                machine.waiting.append(worker)
                worker.waiting = True
            return
        machine.free_cores -= 1
        envelope = worker.queue.poll()
        assert envelope is not None
        worker.busy = True
        item = (envelope.event.key, envelope.dest_fn)
        worker.current = item
        if machine.replay_pins and envelope.replayed \
                and not envelope.is_timer:
            # Last queued replay for this (key, fn) is now executing; the
            # dispatcher's processing-affinity rule covers the rest of
            # the window (worker.current == item until _finish).
            pin = machine.replay_pins.get(item)
            if pin is not None:
                pin[1] -= 1
                if pin[1] <= 0:
                    del machine.replay_pins[item]
        count = self._processing_counts.get(item, 0) + 1
        self._processing_counts[item] = count
        if count > self._max_workers_per_slate:
            self._max_workers_per_slate = count
        service, outputs, timers = self._execute(worker, envelope, count)
        self.sim.schedule_call_in(service, self._finish_bound,
                                  worker, envelope, outputs, timers)

    def _operator_instance(self, worker: _Worker, fn: str) -> Operator:
        machine = worker.machine
        if self.config.engine == ENGINE_MUPPET2:
            return machine.shared_instances[fn]
        return machine.shared_instances[worker.wid]

    def _execute(self, worker: _Worker, envelope: _Envelope,  # hot-path
                 concurrent: int) -> Tuple[float, List[Event], List[TimerRequest]]:
        """Run the operator now; return (service time, outputs, timers)."""
        cfg = self.config
        costs = cfg.costs
        machine = worker.machine
        spec = self._op_specs[envelope.dest_fn]
        instance = self._operator_instance(worker, spec.name)
        event = envelope.event
        ctx = Context(spec.name, event.ts, spec.publishes, event.key)
        if self._trace is not None:
            origin, oseq = event.provenance()
            extra: Dict[str, Any] = {}  # noqa: MUP009 -- tracing-only branch; allocates nothing when the tracer is off
            if spec.kind == "update":
                # The kv-store cell this update touches — the join key
                # that lets reconstruct_chain follow the event through
                # slate flushes into replica writes.
                extra["updater"] = spec.name
                extra["row"], extra["column"] = SlateKey(
                    spec.name, event.key).row_column()
            self._trace.emit(self.sim.now(), "execute",
                             machine=machine.name, op=spec.name,
                             op_kind=spec.kind, key=event.key,
                             worker=worker.index,
                             timer=envelope.is_timer,
                             replayed=envelope.replayed,
                             origin=origin, oseq=oseq, **extra)

        service = costs.dispatch_lock_s * (2 if cfg.engine == ENGINE_MUPPET2
                                           else 1)
        if cfg.engine == ENGINE_MUPPET1:
            # Conductor <-> task-processor IPC: fixed wakeup cost plus a
            # byte-accurate serialization charge (see muppet.conductor).
            from repro.muppet.conductor import IPCAccountant

            ipc = IPCAccountant(fixed_s=costs.ipc_overhead_s)
            if len(machine.workers) > machine.cores:
                service += costs.context_switch_s
        else:
            ipc = None

        if spec.kind == "map":
            assert isinstance(instance, Mapper)
            if envelope.is_timer:
                raise SimulationError("timer delivered to a mapper")
            instance.map(ctx, event)
            service += costs.map_time(instance.cost_factor)
            if ipc is not None:
                out_bytes = sum(e.size_bytes() for e in ctx.emitted)
                service += ipc.cost(event.size_bytes(),
                                    output_bytes=out_bytes)
        else:
            assert isinstance(instance, Updater)
            weight = 1.0
            if (self._thinner is not None and not envelope.is_timer
                    and machine.pressure_tier >= TIER_THIN
                    and spec.name in self._thinnable):
                keep, weight = self._thinner.decide(event.key)
                if not keep:
                    # Thinned: skip the slate read and the update
                    # entirely — that saved work is the whole point.
                    # Kept siblings carry weight 1/p, so the counter
                    # stays unbiased (see repro.shedding.thinning).
                    self.counters.thinned += 1
                    self.shedding.thinned += 1
                    if self._trace is not None:
                        origin, oseq = event.provenance()
                        self._trace.emit(self.sim.now(), "shed",
                                         machine=machine.name,
                                         op=spec.name, key=event.key,
                                         outcome="thin",
                                         origin=origin, oseq=oseq)
                    return service, [], []
                if weight > 1.0:
                    self.shedding.kept_weighted += 1
                    self.shedding.weight_applied += weight
            mgr = worker.mgr
            slate = mgr.get(instance, event.key)
            read_io = mgr.take_pending_io()
            service += self._charge_device(machine, read_io)
            if (self._dedup and envelope.replayed
                    and not envelope.is_timer):
                origin, oseq = event.provenance()
                if oseq <= slate.watermark(origin):
                    # The slate already durably contains this event's
                    # effect (the watermark persisted with the fields
                    # that include it): skip the re-application. The
                    # slate read was still paid for — dedup is not free.
                    self.replay_journal.stats.deduped += 1
                    if self._trace is not None:
                        self._trace.emit(self.sim.now(), "dedup",
                                         machine=machine.name,
                                         op=spec.name, key=event.key,
                                         origin=origin, oseq=oseq,
                                         decision="skip")
                    return service, [], []
                self._replay_reapplied += 1
                if self._trace is not None:
                    self._trace.emit(self.sim.now(), "dedup",
                                     machine=machine.name, op=spec.name,
                                     key=event.key, origin=origin,
                                     oseq=oseq, decision="reapply")
            if envelope.is_timer:
                instance.on_timer(ctx, event.key, slate,
                                  envelope.timer_payload)
            else:
                if weight != 1.0:
                    instance.update_weighted(ctx, event, slate, weight)
                else:
                    instance.update(ctx, event, slate)
                if self._dedup:
                    origin, oseq = event.provenance()
                    slate.advance_watermark(origin, oseq)
            slate.touch(event.ts)
            mgr.note_update(slate)
            write_io = mgr.take_pending_io()
            service += self._charge_device(machine, write_io)
            service += costs.update_time(instance.cost_factor,
                                         slate.estimated_bytes())
            if ipc is not None:
                out_bytes = sum(e.size_bytes() for e in ctx.emitted)
                service += ipc.cost(event.size_bytes(),
                                    slate_bytes=slate.estimated_bytes(),
                                    output_bytes=out_bytes)
            if concurrent > 1:
                service += costs.slate_contention_s
                self._contention_events += 1
        if self._injector is not None:
            factor = self._injector.cpu_factor(machine.name, self.sim.now())
            if factor > 1.0:
                extra = service * (factor - 1.0)
                service += extra
                self._injector.note_gray_cpu(extra)
        return service, list(ctx.emitted), list(ctx.timers)

    def _charge_device(self, machine: _Machine, io_s: float) -> float:
        """Queue synchronous I/O behind the machine's storage device."""
        if io_s <= 0:
            return 0.0
        now = self.sim.now()
        start = max(now, machine.device_busy_until)
        done = start + io_s
        machine.device_busy_until = done
        return done - now

    def _finish(self, worker: _Worker, envelope: _Envelope,  # hot-path
                outputs: List[Event], timers: List[TimerRequest]) -> None:
        machine = worker.machine
        item = worker.current
        if item is not None:
            remaining = self._processing_counts.get(item, 1) - 1
            if remaining <= 0:
                self._processing_counts.pop(item, None)
            else:
                self._processing_counts[item] = remaining
        worker.busy = False
        worker.current = None
        machine.free_cores += 1
        if not machine.alive:
            self.counters.lost_failure += 1
            return
        self.counters.processed += 1

        spec = self._op_specs[envelope.dest_fn]
        if spec.kind == "update" and not envelope.is_timer:
            sinks = self.config.latency_sinks
            if sinks is None or spec.name in sinks:
                self.latency.setdefault(spec.name, LatencyRecorder()).record(
                    self.sim.now() - envelope.birth_ts)

        for ordinal, out in enumerate(outputs):
            stamped = self.app.streams.stamp(out, from_operator=True)
            if self._dedup:
                # Replay-stable identity: derived from the *input*
                # event's provenance, not from the stream registry's
                # publication seq (which keeps counting across replays).
                # A deterministic operator re-derives the same
                # (origin, oseq) on replay, so downstream watermarks
                # recognize the duplicate.
                origin, oseq = derive_origin(envelope.event,
                                             envelope.dest_fn, ordinal)
                stamped = stamped.with_provenance(origin, oseq)
            if self._trace is not None:
                parent_origin, parent_oseq = envelope.event.provenance()
                child_origin, child_oseq = stamped.provenance()
                self._trace.emit(self.sim.now(), "publish",
                                 sid=stamped.sid, op=envelope.dest_fn,
                                 ordinal=ordinal,
                                 parent_origin=parent_origin,
                                 parent_oseq=parent_oseq,
                                 origin=child_origin, oseq=child_oseq)
            self.counters.published += 1
            for sub in self._subscribers_of(stamped.sid):
                self._send(_Envelope(stamped, envelope.birth_ts, sub.name,
                                     replayed=envelope.replayed),
                           from_machine=machine.name)
        for timer in timers:
            self._schedule_timer(machine, envelope, timer)

        while machine.free_cores > 0 and machine.waiting:
            next_worker = machine.waiting.popleft()
            next_worker.waiting = False
            self._try_start(next_worker)
        self._try_start(worker)

    def _schedule_timer(self, machine: _Machine, envelope: _Envelope,
                        timer: TimerRequest) -> None:
        fire_at = max(self.sim.now() + 1e-9, timer.at_ts)
        timer_event = Event(sid=f"!timer:{timer.updater}", ts=timer.at_ts,
                            key=timer.key)
        if self._dedup:
            # Each firing gets a unique runtime-local identity. Timer
            # invocations are never journaled or deduped themselves
            # (re-applying an update re-derives its timers), but their
            # *outputs* inherit provenance from this event — without a
            # unique oseq, outputs of distinct firings would collide.
            timer_event = timer_event.with_provenance(
                f"!timer:{timer.updater}", next(self._timer_ids))
        timer_env = _Envelope(timer_event, envelope.birth_ts, timer.updater,
                              is_timer=True, timer_payload=timer.payload)
        self.sim.schedule_call(fire_at, self._send_bound,
                               timer_env, machine.name)

    # -- background processes ----------------------------------------------------
    def _schedule_flusher(self) -> None:
        period = self.config.flusher_period_s

        def tick(sim: Simulator) -> None:
            if self._timeline is not None:
                # Piggyback timeline sampling on this pre-existing tick:
                # no extra simulator events, so the step count (and with
                # it counter_report) is identical with the timeline on.
                self._sample_timeline(sim.now())
            for machine in self.machines.values():  # noqa: MUP003 -- single-threaded DES; machine insertion order is deterministic
                if not machine.alive:
                    continue
                managers = ({machine.central_mgr}
                            if machine.central_mgr is not None
                            else {w.mgr for w in machine.workers})
                io = 0.0
                for mgr in managers:
                    if mgr is None:
                        continue
                    mgr.flush_due()
                    io += mgr.take_pending_io()
                node = self.store.nodes.get(machine.name)
                if node is not None:
                    io += node.take_background_cost()
                if io > 0:
                    machine.device_busy_until = (
                        max(sim.now(), machine.device_busy_until) + io)
            sim.schedule_in(period, tick)

        self.sim.schedule_in(period, tick)

    def _sample_timeline(self, now: float) -> None:
        """Record one timeline sample (read-only over engine state)."""
        timeline = self._timeline
        assert timeline is not None
        for machine in self.machines.values():
            timeline.sample_machine(
                now, machine.name,
                queue_depth=sum(len(w.queue) for w in machine.workers),
                queue_peak=max((w.queue.stats.peak_depth
                                for w in machine.workers), default=0),
                dirty_slates=sum(m.cache.dirty_count()
                                 for m in self._managers_of(machine)),
                alive=machine.alive)
        for name, recorder in self.latency.items():
            timeline.sample_updater(now, name, recorder.samples)

    def _schedule_heartbeat(self) -> None:
        """Master-side liveness sweep (see ``SimConfig.heartbeat_s``).

        Each sweep declares any machine that is down but not yet known
        failed — same exclusion + broadcast + journal replay as the
        sender-side path, so a crash in a quiet traffic window still
        triggers replay before its journal entries age out. Retired
        machines are the planned-removal case and are skipped.
        """
        period = self.config.heartbeat_s
        assert period is not None

        def sweep(sim: Simulator) -> None:
            for name in sorted(self.machines):
                machine = self.machines[name]
                if not machine.alive and not machine.retired \
                        and name not in self._known_failed:
                    self._declare_machine_failed(name)
            sim.schedule_in(period, sweep)

        self.sim.schedule_in(period, sweep)

    def _schedule_epochs(self) -> None:
        """Periodic checkpoint-epoch barrier (effectively-once only)."""
        period = self.config.checkpoint_epoch_s

        def tick(sim: Simulator) -> None:
            self._run_checkpoint_epoch(sim.now())
            sim.schedule_in(period, tick)

        self.sim.schedule_in(period, tick)

    def _run_checkpoint_epoch(self, now: float) -> None:
        """One coordinated flush-then-prune barrier.

        Reuses the rebalance flush barrier: every live machine's dirty
        slates — watermarks embedded in the same blob — go to the
        kv-store, buffered batches are forced onto the wire first so
        nothing sits in a coalescing buffer across the barrier. The
        master counts the epoch; then journal entries recorded before
        the barrier *two epochs ago* are pruned. The two-epoch lag
        covers effects still in flight or queued at a barrier: an entry
        sent before tick[k-2] has been applied (or replayed) and
        flushed by tick[k-1], provided delivery + queueing latency stays
        under one epoch period. A backlog deeper than one period is the
        residual hazard — a pruned entry can no longer be replayed,
        degrading that event to at-most-once.
        """
        self._flush_all_batches()
        self._rebalance_flush()
        self.master.coordinate_epoch()
        self._epoch_ticks.append(now)
        if len(self._epoch_ticks) == 3:
            cutoff = self._epoch_ticks[0]
            self._epoch_pruned += self.replay_journal.prune_before(cutoff)

    def _schedule_throttle_monitor(self) -> None:
        throttle = self.config.throttle
        assert throttle is not None
        period = self.config.throttle_check_s

        def tick(sim: Simulator) -> None:
            worst = max((m.queue_depth_fraction()
                         for m in self.machines.values() if m.alive),
                        default=0.0)
            throttle.observe(worst, sim.now())
            sim.schedule_in(period, tick)

        self.sim.schedule_in(period, tick)

    def _updater_p99(self, window: int) -> float:
        """Worst per-updater p99 over each updater's trailing samples."""
        worst = 0.0
        for recorder in self.latency.values():  # noqa: MUP003 -- max() is order-independent
            samples = recorder.samples
            if samples:
                worst = max(worst, percentile(samples[-window:], 0.99))
        return worst

    def _schedule_shedding_monitor(self) -> None:
        """The backpressure controller's observation tick.

        Each period, every live machine's pressure signals feed the
        controller; the resulting tier lands on ``machine.pressure_tier``
        for the per-event hot paths to read. Any machine at the throttle
        tier pauses the sources (Section 5 source throttling — never
        mid-workflow, which can deadlock).
        """
        shed = self._shed
        assert shed is not None
        cfg = shed.config
        period = cfg.check_period_s

        def tick(sim: Simulator) -> None:
            p99 = (self._updater_p99(cfg.p99_window)
                   if cfg.p99_budget_s is not None else 0.0)
            throttle_wanted = False
            for name in sorted(self.machines):
                machine = self.machines[name]
                if not machine.alive:
                    continue
                dirty = 0
                if cfg.dirty_slates_high is not None:
                    dirty = sum(m.cache.dirty_count()
                                for m in self._managers_of(machine))
                tier = shed.observe(
                    name,
                    PressureSignals(
                        queue_fraction=machine.queue_depth_fraction(),
                        dirty_slates=dirty, p99_s=p99),
                    sim.now())
                machine.pressure_tier = tier
                if tier >= TIER_THROTTLE:
                    throttle_wanted = True
            throttle = self.config.throttle
            if throttle is not None:
                if throttle_wanted:
                    throttle.pause(sim.now())
                else:
                    throttle.resume(sim.now())
            sim.schedule_in(period, tick)

        self.sim.schedule_in(period, tick)

    # -- elastic membership (Section 5 "Changing the Number of Machines
    # on the Fly", implemented as an extension) --------------------------------
    def schedule_add_machine(self, at: float, name: str,
                             cores: int = 4) -> None:
        """Add a machine to the worker ring at simulated time ``at``.

        The paper calls out the hard part: moving a key while its slate
        has unflushed changes on the old owner would need the slate
        "replicated at both A and B". The legacy answer (and still the
        default when ``SimConfig.migration`` is None) is a *rebalance
        barrier*: immediately before the ring change, every dirty slate
        is flushed to the key-value store. The new owner then simply
        misses its cache and refetches — the normal Section 4.2 path.
        With migration configured, the join instead runs the
        five-phase incremental handoff (snapshot → delta_stream →
        cutover → ack → release): donors stream changelogs to the
        joiner while still owning the keys, and only the cutover
        instant flips the ring. The co-located kv-store ring stays
        fixed either way (the paper's Cassandra cluster is managed
        separately).

        Residual hazard of the legacy path (bounded, not eliminated):
        an event already *in flight* to the old owner when the ring
        changes still updates the old owner's now-orphaned cache copy,
        and that update can lose the last-write-wins race against the
        new owner's flushes — at most the in-flight window's worth of
        updates, typically zero to a few events. The incremental path
        shrinks that window to the final cutover delta but shares the
        same in-flight bound.
        """
        def join(sim: Simulator) -> None:
            if self._migration is not None:
                existing = self.machines.get(name)
                if existing is not None and not existing.retired:
                    return
                if existing is None:
                    self._construct_machine(name, cores)
                self._request_scale("join", name, cores=cores)
                return
            self._legacy_join(name, cores)

        self.sim.schedule(at, join, priority=-1)

    def schedule_remove_machine(self, at: float, name: str) -> None:
        """Retire a machine from the worker ring at simulated time ``at``.

        The machine stays constructed (and alive) but leaves the ring:
        its keys move to the survivors — via live handoff when
        ``SimConfig.migration`` is set, via the legacy flush barrier
        otherwise — and it becomes the first re-admission candidate for
        a later scale-up. Retirement is planned downsizing, not a
        failure: nothing is lost, nothing replays.
        """
        def leave(sim: Simulator) -> None:
            if self._migration is not None:
                self._request_scale("retire", name)
            else:
                self._retire_legacy(name)

        self.sim.schedule(at, leave, priority=-1)

    def _construct_machine(self, name: str, cores: int) -> "_Machine":
        """Build a machine (workers, dispatcher, manager) *without* ring
        membership — the caller admits it to the ring, either at once
        (legacy join) or at migration cutover. New machines get no
        co-located kv node: the store ring is fixed at construction,
        matching the paper's separately managed Cassandra cluster.
        """
        from repro.cluster.topology import MachineSpec

        spec = MachineSpec(name, cores=cores)
        machine = _Machine(spec.name, spec.cores)
        cfg = self.config
        if cfg.engine == ENGINE_MUPPET2:
            threads = cfg.threads_per_machine or spec.cores
            machine.central_mgr = self._new_manager(
                cfg.cache_slates_per_machine, owner=spec.name)
            if cfg.two_choice:
                machine.dispatcher = TwoChoiceDispatcher(
                    threads, cfg.dispatch_factor,
                    memoize=cfg.memoize_routing)
            else:
                machine.dispatcher = SingleChoiceDispatcher(
                    threads, memoize=cfg.memoize_routing)
            machine.shared_instances = {
                s.name: s.instantiate() for s in self.app.operators()
            }
            for i in range(threads):
                machine.workers.append(_Worker(
                    wid=f"{spec.name}/t{i}", machine=machine,
                    index=i, function=None,
                    queue_capacity=cfg.queue_capacity,
                    mgr=machine.central_mgr))
        else:
            overrides = cfg.workers_per_function or {}
            total = sum(
                overrides.get(s.name,
                              cfg.workers_per_function_per_machine)
                for s in self.app.operators())
            per_worker_cache = max(
                1, cfg.cache_slates_per_machine // max(1, total))
            index = 0
            for op_spec in self.app.operators():
                count = overrides.get(
                    op_spec.name,
                    cfg.workers_per_function_per_machine)
                for j in range(count):
                    worker = _Worker(
                        wid=f"{spec.name}/{op_spec.name}#{j}",
                        machine=machine, index=index,
                        function=op_spec.name,
                        queue_capacity=cfg.queue_capacity,
                        mgr=self._new_manager(per_worker_cache,
                                              owner=spec.name))
                    machine.shared_instances[worker.wid] = (
                        op_spec.instantiate())
                    machine.workers.append(worker)
                    self._worker_by_id[worker.wid] = worker
                    index += 1
        self.machines[spec.name] = machine
        if ((self._autoscaler is not None or self._migration is not None)
                and name not in self._probed_machines):
            # Elastic machines get queue/slate probes like seed machines;
            # legacy joins skip this to keep non-elastic metrics snapshots
            # identical to the seed.
            self._probed_machines.add(name)
            self.metrics.register_group(f"queues.{name}",
                                        self._make_queue_probe(machine))
            self.metrics.register_group(f"slates.{name}",
                                        self._make_slate_probe(machine))
        return machine

    def _legacy_join(self, name: str, cores: int) -> None:
        """Flush-barrier join: the original Section 4.3 re-admission."""
        existing = self.machines.get(name)
        if existing is not None and not existing.retired:
            return
        self._rebalance_flush()
        machine = (existing if existing is not None
                   else self._construct_machine(name, cores))
        machine.retired = False
        if self.config.engine == ENGINE_MUPPET2:
            self._machine_ring.add(name)
        else:
            for worker in machine.workers:
                if worker.function is not None:
                    self._function_rings[worker.function].add(worker.wid)
        self._join_order.append(name)
        if self._trace is not None:
            self._trace.emit(self.sim.now(), "ring_change",
                             change="join", machine=name)
        self._reroute_queued_after_ring_change()

    def _retire_legacy(self, name: str) -> None:
        """Flush-barrier retirement (no migration configured)."""
        machine = self.machines.get(name)
        if (machine is None or machine.retired or not machine.alive
                or (self.config.engine == ENGINE_MUPPET2
                    and name not in self._machine_ring.members)):
            return
        self._rebalance_flush()
        if self.config.engine == ENGINE_MUPPET2:
            self._machine_ring.remove(name)
        else:
            for worker in machine.workers:
                if worker.function is not None:
                    self._function_rings[worker.function].remove(worker.wid)
        machine.retired = True
        if self._trace is not None:
            self._trace.emit(self.sim.now(), "ring_change",
                             change="retire", machine=name)
        self._reroute_queued_after_ring_change()
        self._drop_retired_copies(name)

    # -- elastic scaling (autoscaler + live migration) ---------------------
    def _elastic_stats(self) -> Dict[str, Any]:
        """The ``elastic`` metrics family: cluster size, autoscaler
        decisions, and migration handoff accounting."""
        live = (self._machine_ring.live_members
                if self.config.engine == ENGINE_MUPPET2
                else {n for n, m in self.machines.items()
                      if m.alive and not m.retired})
        stats: Dict[str, Any] = {
            "machines_live": len(live),
            "machines_retired": sum(
                1 for m in self.machines.values() if m.retired),
            "pending_requests": len(self._pending_scale),
        }
        if self._autoscaler is not None:
            for key, value in self._autoscaler.counters.as_dict().items():
                stats[f"autoscaler.{key}"] = value
            stats["autoscaler.queue_ewma"] = self._autoscaler.smoothed_queue
        if self._migration is not None:
            for key, value in self._migration.counters.as_dict().items():
                stats[f"migration.{key}"] = value
        return stats

    def _central_manager(self, name: str) -> Optional[SlateManager]:
        """A machine's central slate manager (None for unknown names)."""
        machine = self.machines.get(name)
        return None if machine is None else machine.central_mgr

    def route_key_of(self, slate_key: SlateKey) -> str:
        """The ring routing key a slate's events hash under."""
        return route_key(slate_key.key, slate_key.updater)

    def _kill_machine_now(self, name: str) -> None:
        """Crash a machine at the current instant (migration chaos)."""
        self._make_failure(name)(self.sim)

    def _drop_retired_copies(self, name: str) -> None:
        """Flush-and-drop every cache copy a retired machine still holds,
        and cold-start its dispatcher so a later re-admission is
        indistinguishable from a fresh join."""
        machine = self.machines.get(name)
        if machine is None or not machine.alive:
            return
        io = 0.0
        for mgr in self._managers_of(machine):
            mgr.flush_all_dirty()
            io += mgr.take_pending_io()
            for slate_key in list(mgr.cache.resident()):
                mgr.drop(slate_key)
        if io > 0:
            machine.device_busy_until = (
                max(self.sim.now(), machine.device_busy_until) + io)
        if machine.dispatcher is not None:
            machine.dispatcher.reset()

    def _request_scale(self, kind: str, name: str, cores: int = 4) -> None:
        """Route one join/retire request to the configured mechanism.

        With migration configured, requests serialize: one handoff is in
        flight at a time and the rest queue (FIFO), which keeps every
        ownership change attributable to exactly one migration epoch.
        """
        if self._migration is None:
            if kind == "join":
                self._legacy_join(name, cores)
            else:
                self._retire_legacy(name)
            return
        if self._migration.active is not None:
            self._pending_scale.append((kind, name))
            return
        self._start_migration(kind, name)

    def _start_migration(self, kind: str, name: str) -> None:
        migration = self._migration
        assert migration is not None
        machine = self.machines.get(name)
        if machine is None or not machine.alive:
            return
        if kind == "join":
            if name in self._machine_ring.members:
                return
        else:
            if machine.retired or name not in self._machine_ring.live_members:
                return  # failed machines heal via replay, not migration
        migration.begin(kind, name)

    def _drain_scale_queue(self) -> None:
        migration = self._migration
        if migration is None:
            return
        while self._pending_scale and migration.active is None:
            kind, name = self._pending_scale.popleft()
            self._start_migration(kind, name)

    def _apply_migration_ring_change(self, mig: "MigrationState") -> None:
        """The coordinator's cutover hook: flip the ring, re-address the
        journal, clean up a retiring donor. Runs at one simulated
        instant inside the cutover phase."""
        machine = self.machines[mig.machine]
        if mig.kind == "join":
            machine.retired = False
            self._machine_ring.add(mig.machine)
            self._join_order.append(mig.machine)
            change = "join"
        else:
            machine.retired = True
            self._machine_ring.remove(mig.machine)
            change = "retire"
        if self._trace is not None:
            self._trace.emit(self.sim.now(), "ring_change",
                             change=change, machine=mig.machine)
        journal = self.replay_journal
        donors = set(mig.donors())
        if journal is not None and donors:
            def resolve(dest: str, payload: Any) -> Optional[str]:
                if dest not in donors:
                    return None
                target = self._destination_machine(payload)
                return None if target is None else target.name
            changed = journal.readdress(resolve)
            if self._migration is not None:
                # readdress() already counts into journal stats; mirror
                # into the migration family so bench E24 sees it.
                self._migration.counters.journal_readdressed += changed
        if mig.kind == "retire":
            self._drop_retired_copies(mig.machine)

    def _migration_finished(self, mig: "MigrationState",
                            completed: bool) -> None:
        """The coordinator's completion/abort hook."""
        if mig.kind == "join" and not completed:
            machine = self.machines.get(mig.machine)
            if (machine is not None
                    and mig.machine not in self._machine_ring.members):
                # The joiner never entered the ring; park it as a
                # re-admission candidate for the next scale-up.
                machine.retired = True
        self._drain_scale_queue()

    def _schedule_autoscaler(self) -> None:
        """The autoscaler's observation tick (mirrors the shedding
        monitor): sample cluster health each period, execute any
        resulting decision through the scaling machinery."""
        scaler = self._autoscaler
        assert scaler is not None
        cfg = scaler.config
        period = cfg.check_period_s

        def tick(sim: Simulator) -> None:
            live = sorted(self._machine_ring.live_members)
            alive = [self.machines[n] for n in live
                     if self.machines[n].alive]
            worst = max((m.queue_depth_fraction() for m in alive),
                        default=0.0)
            p99 = (self._updater_p99(256)
                   if cfg.p99_budget_s is not None else None)
            dirty = 0
            if cfg.dirty_backlog_high is not None:
                dirty = max(
                    (sum(mg.cache.dirty_count()
                         for mg in self._managers_of(m)) for m in alive),
                    default=0)
            decision = scaler.observe(
                sim.now(), worst_queue_fraction=worst, p99_s=p99,
                dirty_backlog=dirty, live_machines=len(live))
            if decision is not None:
                self._execute_scale_decision(decision)
            sim.schedule_in(period, tick)

        self.sim.schedule_in(period, tick)

    def _execute_scale_decision(self, decision: ScaleDecision) -> None:
        scaler = self._autoscaler
        assert scaler is not None
        if self._migration is not None and (
                self._migration.active is not None or self._pending_scale):
            # A handoff is in flight (or queued): don't pile decisions on
            # top — the EWMA will re-fire if pressure persists.
            scaler.counters.blocked_migration += 1
            return
        cores = scaler.config.cores
        if decision.direction == "grow":
            for _ in range(decision.count):
                name = self._next_join_candidate()
                if name not in self.machines:
                    self._construct_machine(name, cores)
                self._request_scale("join", name, cores=cores)
        else:
            for _ in range(decision.count):
                name = self._pick_retire_victim()
                if name is None:
                    return
                self._request_scale("retire", name)

    def _claimed_for_scaling(self) -> Set[str]:
        claimed = {n for _, n in self._pending_scale}
        if self._migration is not None and self._migration.active is not None:
            claimed.add(self._migration.active.machine)
        return claimed

    def _next_join_candidate(self) -> str:
        """Pick the next machine to admit: retired machines re-admit
        first (their probes and workers already exist), then fresh
        ``e###`` names from the elastic sequence."""
        claimed = self._claimed_for_scaling()
        for name in sorted(self.machines):
            machine = self.machines[name]
            if machine.retired and machine.alive and name not in claimed:
                return name
        while True:
            name = f"e{next(self._elastic_seq):03d}"
            if name not in self.machines:
                return name

    def _pick_retire_victim(self) -> Optional[str]:
        """Pick the machine to retire: last joined leaves first (LIFO —
        elastic machines drain before seed machines), falling back to
        the lexicographically last live member."""
        claimed = self._claimed_for_scaling()
        live = self._machine_ring.live_members
        for name in reversed(self._join_order):
            if name in live and name not in claimed:
                return name
        candidates = sorted(n for n in live if n not in claimed)
        if len(candidates) <= 1:
            return None
        return candidates[-1]

    def _reroute_queued_after_ring_change(self) -> None:
        """Move queued events whose keys changed owner to the new owner.

        Without this, a deep backlog queued at the old owner would keep
        updating its orphaned cache copy while fresh events hit the new
        owner — divergence far beyond the in-flight window under load.
        """
        # Batched events are part of that backlog too: push them onto
        # the wire now so nothing lingers addressed to the old owner.
        self._flush_all_batches()
        for machine in list(self.machines.values()):
            if not machine.alive:
                continue
            # Pins are rebuilt below from the envelopes that stay; moved
            # replays re-pin at their new owner on re-delivery.
            machine.replay_pins.clear()
            for worker in machine.workers:
                kept: List[_Envelope] = []
                for envelope in worker.queue.drain():
                    target = self._destination_machine(envelope)
                    moved = target is None or target is not machine
                    if not moved and self.config.engine == ENGINE_MUPPET1:
                        ring = self._function_rings[envelope.dest_fn]
                        wid = ring.lookup(route_key(envelope.event.key,
                                                    envelope.dest_fn))
                        moved = wid != worker.wid
                    if moved:
                        self._send(envelope, from_machine=machine.name)
                    else:
                        kept.append(envelope)
                for envelope in kept:
                    worker.queue.offer(envelope)
                    if (self._is_muppet2 and self._dedup
                            and envelope.replayed and not envelope.is_timer):
                        pin_key = (envelope.event.key, envelope.dest_fn)
                        pin = machine.replay_pins.get(pin_key)
                        if pin is None:
                            machine.replay_pins[pin_key] = [worker, 1]
                        else:
                            pin[1] += 1

    def _rebalance_flush(self) -> None:
        """Flush every dirty slate cluster-wide before a ring change, so
        no key moves while its freshest state is only in a cache."""
        for machine in self.machines.values():  # noqa: MUP003, MUP010 -- single-threaded DES; machine insertion order is deterministic
            if not machine.alive:
                continue
            managers = ({machine.central_mgr}
                        if machine.central_mgr is not None
                        else {w.mgr for w in machine.workers})
            io = 0.0
            for mgr in managers:
                if mgr is None:
                    continue
                mgr.flush_all_dirty()
                io += mgr.take_pending_io()
            if io > 0:
                machine.device_busy_until = (
                    max(self.sim.now(), machine.device_busy_until) + io)

    # -- failures ---------------------------------------------------------------
    def _make_failure(self, machine_name: str):
        def kill(sim: Simulator) -> None:
            machine = self.machines.get(machine_name)
            if machine is None:
                raise ConfigurationError(
                    "crash fault targets unknown machine "
                    f"{machine_name!r}; cluster has "
                    f"{sorted(self.machines)}")
            if not machine.alive:
                return
            machine.alive = False
            if self._failure_time is None:
                self._failure_time = sim.now()
            # Events still buffered for this machine are as dead as its
            # queues: flush them now so they are counted lost (and the
            # failure broadcast fires) instead of lingering.
            self._flush_batches_to(machine_name)
            machine.replay_pins.clear()
            for worker in machine.workers:
                lost = worker.queue.drain()
                self.counters.lost_failure += len(lost)
                if worker.mgr is not machine.central_mgr:
                    worker.mgr.crash()
            if machine.central_mgr is not None:
                machine.central_mgr.crash()
            if self.config.kill_kv_on_machine_failure \
                    and machine_name in self.store.nodes:
                # Elastic machines (joined after boot) host workers only;
                # kv membership is fixed at the seed spec.
                self.store.mark_down(machine_name)

        return kill

    def _make_recovery(self, machine_name: str):
        """The full machine-recovery path — the Section 4.3 gap closed.

        The paper excludes a dead machine from the ring "until operator
        intervention" and leaves recovery as future work. Here the
        revived machine (1) restarts its workers with cold caches,
        (2) brings its co-located kv node back, draining hinted handoff,
        (3) reports to the master, which broadcasts recovery exactly as
        it broadcasts failure (one report hop + one broadcast hop), and
        (4) rejoins the shared hash ring behind the same rebalance
        barrier as elastic joins: survivors flush dirty slates first, so
        keys that move back re-hydrate from fresh kv-store state through
        the ordinary Section 4.2 cache-miss path.
        """

        def revive(sim: Simulator) -> None:
            machine = self.machines.get(machine_name)
            if machine is None or machine.alive:
                return
            machine.alive = True
            # Workers still mid-service when the machine died have their
            # _finish callbacks pending; count them as busy so the core
            # ledger stays consistent whichever order things resolve.
            busy = sum(1 for w in machine.workers if w.busy)
            machine.free_cores = machine.cores - busy
            machine.waiting.clear()
            for worker in machine.workers:
                if not worker.busy:
                    worker.waiting = False
            for mgr in self._managers_of(machine):
                mgr.revive()
            if self.config.kill_kv_on_machine_failure:
                node = self.store.nodes.get(machine_name)
                if node is not None and node.is_down:
                    self.store.mark_up(machine_name)
            self._recoveries += 1
            latency = self.cluster.network.latency_s

            def broadcast(sim2: Simulator) -> None:
                if not machine.alive:
                    return  # crashed again before the broadcast landed
                self.master.report_recovery(machine_name)
                self._known_failed.discard(machine_name)
                if self.config.recovery_rebalance_flush:
                    self._rebalance_flush()
                self._machine_ring.restore(machine_name)
                for ring in self._function_rings.values():  # noqa: MUP010 -- built once at construction; per-ring restores commute
                    for worker in machine.workers:
                        ring.restore(worker.wid)
                if self._trace is not None:
                    self._trace.emit(sim2.now(), "ring_change",
                                     change="restore", machine=machine_name)
                self._reroute_queued_after_ring_change()

            # Report to master (one hop) + broadcast to workers (one
            # hop) — symmetric to failure reporting.
            self.sim.schedule_in(2 * latency, broadcast, priority=-1)

        return revive

    def _make_kv_down(self, machine_name: str):
        """A transient outage of one co-located kv node (machine up)."""

        def down(sim: Simulator) -> None:
            node = self.store.nodes.get(machine_name)
            if node is not None and not node.is_down:
                self.store.mark_down(machine_name)

        return down

    def _make_kv_up(self, machine_name: str):
        def up(sim: Simulator) -> None:
            node = self.store.nodes.get(machine_name)
            if node is not None and node.is_down:
                self.store.mark_up(machine_name)

        return up

    def _managers_of(self, machine: _Machine) -> List[SlateManager]:
        if machine.central_mgr is not None:
            return [machine.central_mgr]
        return [w.mgr for w in machine.workers]

    # -- results ---------------------------------------------------------------
    def slate(self, updater: str, key: str) -> Optional[Dict[str, Any]]:
        """Read a slate's final contents from cache, else the kv-store.

        Mirrors the HTTP slate fetch (Section 4.4): the cache answer wins
        because it is fresher than the durable store. When several caches
        hold a copy (a survivor's orphaned copy after a failover-and-
        recover cycle), the most recently updated one wins.
        """
        slate_key = SlateKey(updater, key)
        best = None
        for machine in self.machines.values():
            managers = ([machine.central_mgr] if machine.central_mgr
                        else [w.mgr for w in machine.workers])
            for mgr in managers:
                if mgr is None:
                    continue
                slate = mgr.cache.peek(slate_key)
                if slate is not None and (
                        best is None
                        or slate.last_update_ts > best.last_update_ts):
                    best = slate
        if best is not None:
            return best.as_dict()
        try:
            result = self.store.read(key, updater)
        except Exception:
            return None
        if result.value is None:
            return None
        from repro.slates.codec import DEFAULT_CODEC, split_watermarks

        fields, _ = split_watermarks(DEFAULT_CODEC.decode(result.value))
        return fields

    def slates_of(self, updater: str,
                  read_through: bool = False) -> Dict[str, Dict[str, Any]]:
        """All cached slates of one updater (post-run inspection).

        Freshest copy wins when several caches hold the same slate —
        after a failover-and-recover cycle, survivors retain orphaned
        (stale) copies of keys that moved back to the revived owner.

        With ``read_through=True`` the kv-store's column is scanned too,
        so slates that were flushed and then dropped from every cache
        (a full-rehydration cutover whose keys saw no later traffic)
        still appear; a resident copy only loses to the store when the
        store's write is fresher.
        """
        found: Dict[str, Tuple[float, Dict[str, Any]]] = {}
        for machine in self.machines.values():
            managers = ([machine.central_mgr] if machine.central_mgr
                        else [w.mgr for w in machine.workers])
            for mgr in managers:
                if mgr is None:
                    continue
                for slate_key in mgr.cache.resident():
                    if slate_key.updater != updater:
                        continue
                    slate = mgr.cache.peek(slate_key)
                    if slate is None:
                        continue
                    known = found.get(slate_key.key)
                    if known is None or slate.last_update_ts > known[0]:
                        found[slate_key.key] = (slate.last_update_ts,
                                                slate.as_dict())
        if read_through and self.store is not None:
            from repro.slates.codec import DEFAULT_CODEC, split_watermarks

            for row, cell in self.store.column_cells(updater).items():
                known = found.get(row)
                if known is not None and known[0] >= cell.write_ts:
                    continue
                fields, _ = split_watermarks(DEFAULT_CODEC.decode(cell.value))
                found[row] = (cell.write_ts, fields)
        return {key: contents for key, (_, contents) in found.items()}

    def memory_mb_per_machine(self) -> float:
        """Average resident MB per machine: code copies + slate caches.

        Muppet 1.0 loads the code once per worker process; 2.0 loads it
        once per machine (Section 4.5's first limitation).
        """
        total = 0.0
        for machine in self.machines.values():
            if self.config.engine == ENGINE_MUPPET2:
                total += self.config.operator_code_mb
                if machine.central_mgr is not None:
                    total += machine.central_mgr.cache.total_bytes() / 1e6
            else:
                total += self.config.operator_code_mb * len(machine.workers)
                total += sum(w.mgr.cache.total_bytes()
                             for w in machine.workers) / 1e6
        return total / max(1, len(self.machines))

    def _robustness_counters(self) -> RobustnessCounters:
        """Aggregate recovery/retry/chaos accounting for the report."""
        rc = RobustnessCounters(recoveries=self._recoveries)
        for machine in self.machines.values():
            for mgr in self._managers_of(machine):
                rc.rehydrated_slates += mgr.stats.rehydrated
                rc.kv_retries += mgr.stats.kv_retries
                rc.kv_backoff_s += mgr.stats.kv_backoff_s
                rc.fail_open_reads += mgr.stats.fail_open_reads
                rc.fail_open_writes += mgr.stats.fail_open_writes
        if self._injector is not None:
            stats = self._injector.stats
            rc.gray_slow_s = stats.gray_slow_s
            rc.dropped_injected = stats.dropped_messages
            rc.lost_partition = stats.lost_partition
            rc.delayed_injected = stats.delayed_messages
            rc.injected_delay_s = stats.injected_delay_s
        rc.hints_stored = self.store.hints_stored
        rc.hints_delivered = self.store.hints_delivered
        rc.hints_evicted = self.store.hints_evicted
        rc.hints_pending = self.store.pending_hints()
        if self.replay_journal is not None:
            rc.replay_deduped = self.replay_journal.stats.deduped
        rc.replay_reapplied = self._replay_reapplied
        rc.checkpoint_epochs = self.master.stats.checkpoint_epochs
        rc.epoch_pruned = self._epoch_pruned
        return rc

    def _report(self, duration_s: float) -> SimReport:
        all_latencies = LatencyRecorder()
        by_updater: Dict[str, LatencySummary] = {}
        for name, recorder in self.latency.items():  # noqa: MUP003 -- single-threaded DES; operator insertion order is deterministic
            if len(recorder):
                by_updater[name] = recorder.summary()
                all_latencies.extend(recorder.samples)
                histogram = self.metrics.histogram(f"latency.{name}")
                if histogram.count == 0:
                    recorder.fill_histogram(histogram)
        dispatch = self._dispatch_stats()
        queue_peak = 0
        for machine in self.machines.values():  # noqa: MUP003 -- max() is order-independent
            for worker in machine.workers:
                queue_peak = max(queue_peak, worker.queue.stats.peak_depth)
        return SimReport(
            engine=self.config.engine,
            duration_s=duration_s,
            counters=self.counters,
            latency=(all_latencies.summary() if len(all_latencies) else None),
            latency_by_updater=by_updater,
            throughput=ThroughputReport(self.counters.processed, duration_s),
            dispatch_stats=dispatch,
            master_stats=asdict(self.master.stats),
            queue_peak_depth=queue_peak,
            slate_contention_events=self._contention_events,
            max_workers_per_slate=self._max_workers_per_slate,
            failure_detection_s=self._detection_time,
            throttle_paused_s=(self.config.throttle.paused_time_s
                               if self.config.throttle else 0.0),
            memory_mb_per_machine=self.memory_mb_per_machine(),
            kv_stats=self.store.stats_by_node(),
            device_stats={name: node.device.stats.as_dict()
                          for name, node in sorted(self.store.nodes.items())},
            steps=self.sim.steps,
            robustness=self._robustness_counters(),
            dataplane=self.dataplane,
            replay=(ReplayStats(**asdict(self.replay_journal.stats))
                    if self.replay_journal is not None else ReplayStats()),
            shedding=self.shedding,
            metrics=self.metrics.family_snapshot(),
            timeline_data=(self._timeline.as_dict()
                           if self._timeline is not None else None),
        )
