"""Service-time cost models for the cluster simulator.

The simulator executes real operator code but charges *virtual* time for
each action. The defaults below are calibrated to the paper's era and
claims: a cluster of tens of ~8-core machines sustains >100 M events/day
(~1.2 k events/s) with seconds of headroom and sub-2-second end-to-end
latency (Section 5). Per-event costs are sub-millisecond for framework
work, with application work scaled by each operator's ``cost_factor``.

Muppet 1.0 pays an extra inter-process hop per event: the Perl conductor
passes the event (and slate) to the JVM task processor and receives the
outputs back — "Passing data between processes ... can be computationally
wasteful" (Section 4.5). That is ``ipc_overhead_s``, charged only by the
1.0 engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CostModel:
    """Virtual service times (seconds) charged by the simulator.

    Attributes:
        source_service_s: M0's per-event cost (parse + hash + enqueue).
        map_service_s: Base CPU time per map invocation (multiplied by the
            operator's ``cost_factor``).
        update_service_s: Base CPU time per update invocation (likewise).
        ipc_overhead_s: Muppet 1.0 conductor↔task-processor serialization
            cost per event (0 for Muppet 2.0 — "Passing data between
            processes is eliminated within each machine").
        dispatch_lock_s: Cost of acquiring one queue lock at dispatch.
        slate_contention_s: Extra cost when a second worker contends for a
            slate already held (Muppet 2.0 allows at most two).
        context_switch_s: Per-dispatch scheduling overhead when a machine
            runs more worker processes than cores (Muppet 1.0's "more
            numerous processes can also require more context switching").
        slate_byte_cost_s: Serialization cost per slate byte on kv-store
            traffic — what makes megabyte slates slow (Section 5, bench
            E11).
    """

    source_service_s: float = 20e-6
    map_service_s: float = 150e-6
    update_service_s: float = 250e-6
    ipc_overhead_s: float = 200e-6
    dispatch_lock_s: float = 2e-6
    slate_contention_s: float = 30e-6
    context_switch_s: float = 15e-6
    slate_byte_cost_s: float = 2e-9

    def __post_init__(self) -> None:
        for name, value in self.__dict__.items():
            if value < 0:
                raise ConfigurationError(f"cost {name} must be >= 0")

    def map_time(self, cost_factor: float = 1.0) -> float:
        """Service time of one map invocation."""
        return self.map_service_s * cost_factor

    def update_time(self, cost_factor: float = 1.0,
                    slate_bytes: int = 0) -> float:
        """Service time of one update invocation on a slate of given size."""
        return (self.update_service_s * cost_factor
                + self.slate_byte_cost_s * slate_bytes)
