"""Adaptive backpressure: per-machine pressure tiers with hysteresis.

The controller reads the same signals the observability layer already
exposes — worst worker-queue depth fraction, dirty-slate backlog, and
the recent updater p99 — smooths the queue signal with an EWMA, and
walks each machine through four pressure tiers:

====  ==========  ==================================================
tier  name        engine behaviour
====  ==========  ==================================================
0     normal      nothing shed; the configured overflow policy only
1     thin        thinnable updaters probabilistically thin (IPW)
2     overflow    + arrivals above ``divert_fraction`` divert to the
                  degraded overflow stream (provenance preserved)
3     throttle    + sources pause (Section 5 source throttling)
====  ==========  ==================================================

Escalation is immediate (overload is urgent: a machine may jump
several tiers in one observation); de-escalation steps down one tier
at a time and only after ``hold_s`` seconds in the current tier with
the smoothed signal below the tier's exit threshold — the hysteresis
that keeps the controller from flapping around a threshold. Per-tier
transition counts and residence times are accounted in
:class:`SheddingCounters` and surfaced as the ``overload.*`` metrics
family in ``SimReport.counter_report()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Optional

from repro.errors import ConfigurationError
from repro.obs.registry import Ewma
from repro.shedding.thinning import ThinningPolicy

TIER_NORMAL = 0
TIER_THIN = 1
TIER_OVERFLOW = 2
TIER_THROTTLE = 3

#: Tier names in tier order (index == tier number).
TIER_NAMES = ("normal", "thin", "overflow", "throttle")


@dataclass
class SheddingConfig:
    """Knobs of the overload-control subsystem.

    Thresholds are worst worker-queue depth fractions (0..1) on the
    EWMA-smoothed signal; each tier has an *enter* threshold (escalate
    at or above) and an *exit* threshold (de-escalate at or below,
    after ``hold_s`` in tier). ``None`` for the optional signals
    disables them.
    """

    #: Per-key-class keep rates applied at tier >= thin.
    thinning: ThinningPolicy = field(default_factory=ThinningPolicy)
    #: Seed for the thinning RNG (replay-exactness contract).
    seed: int = 0
    #: Controller sampling period (simulated seconds).
    check_period_s: float = 0.02
    #: Minimum residence time in a tier before de-escalating.
    hold_s: float = 0.25
    #: EWMA smoothing factor for the queue-fraction signal.
    ewma_alpha: float = 0.4
    thin_enter: float = 0.35
    thin_exit: float = 0.15
    overflow_enter: float = 0.70
    overflow_exit: float = 0.40
    throttle_enter: float = 0.92
    throttle_exit: float = 0.60
    #: Degraded overflow stream for tier-2 proactive diversion; None
    #: disables the overflow tier's divert action (the tier can still
    #: be entered, acting only as a stepping stone to throttle).
    overflow_sid: Optional[str] = None
    #: At tier >= overflow, arrivals while the instantaneous queue
    #: fraction is at or above this divert instead of enqueueing.
    divert_fraction: float = 0.70
    #: Escalate to at least ``thin`` while the recent updater p99
    #: exceeds this budget (None disables the latency signal).
    p99_budget_s: Optional[float] = None
    #: Trailing latency samples per updater used for the p99 signal.
    p99_window: int = 256
    #: Escalate to at least ``thin`` while a machine's dirty-slate
    #: backlog exceeds this count (None disables the signal).
    dirty_slates_high: Optional[int] = None

    def __post_init__(self) -> None:
        if self.check_period_s <= 0:
            raise ConfigurationError(
                f"check_period_s must be > 0, got {self.check_period_s!r}")
        if self.hold_s < 0:
            raise ConfigurationError(
                f"hold_s must be >= 0, got {self.hold_s!r}")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ConfigurationError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha!r}")
        pairs = (("thin", self.thin_enter, self.thin_exit),
                 ("overflow", self.overflow_enter, self.overflow_exit),
                 ("throttle", self.throttle_enter, self.throttle_exit))
        for name, enter, exit_ in pairs:
            if not 0.0 < exit_ < enter <= 1.0:
                raise ConfigurationError(
                    f"{name} tier needs 0 < exit ({exit_!r}) < enter "
                    f"({enter!r}) <= 1 (hysteresis band)")
        if self.thin_enter >= self.overflow_enter or \
                self.overflow_enter >= self.throttle_enter:
            raise ConfigurationError(
                "tier enter thresholds must ascend: thin < overflow "
                f"< throttle, got {self.thin_enter!r} / "
                f"{self.overflow_enter!r} / {self.throttle_enter!r}")
        if not 0.0 < self.divert_fraction <= 1.0:
            raise ConfigurationError(
                f"divert_fraction must be in (0, 1], got "
                f"{self.divert_fraction!r}")
        if self.p99_window < 1:
            raise ConfigurationError(
                f"p99_window must be >= 1, got {self.p99_window}")


@dataclass(frozen=True)
class PressureSignals:
    """One machine's load signals at one controller observation."""

    #: Worst worker-queue depth fraction on the machine (0..1).
    queue_fraction: float
    #: Dirty slates awaiting flush on the machine's managers.
    dirty_slates: int = 0
    #: Recent cluster-wide worst updater p99 (seconds).
    p99_s: float = 0.0


@dataclass(slots=True)
class SheddingCounters:
    """Overload-control accounting for one run (all zero when off).

    Printed under ``overload.*`` in ``SimReport.counter_report()``
    alongside the throttle duty cycle and per-queue overflow outcome
    counts the runtime adds.
    """

    #: Update applications skipped by thinning.
    thinned: int = 0
    #: Update applications that applied with an IPW weight > 1.
    kept_weighted: int = 0
    #: Total IPW weight applied by those (audit: thinned + weight sum
    #: tracks the raw event count in expectation).
    weight_applied: float = 0.0
    #: Events proactively diverted by the overflow tier (distinct from
    #: queue-full diversion under the ``divert`` overflow policy).
    diverted_proactive: int = 0
    #: Tier transitions, split by direction.
    escalations: int = 0
    deescalations: int = 0
    #: Machine-seconds of residence per tier (closed by ``finish``).
    time_normal_s: float = 0.0
    time_thin_s: float = 0.0
    time_overflow_s: float = 0.0
    time_throttle_s: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict snapshot (insertion-ordered, deterministic)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def add_residence(self, tier: int, seconds: float) -> None:
        """Charge ``seconds`` of machine time to one tier."""
        name = f"time_{TIER_NAMES[tier]}_s"
        setattr(self, name, getattr(self, name) + seconds)


class _MachinePressure:
    """Per-machine controller state: tier, dwell, smoothed signal."""

    __slots__ = ("tier", "entered_at", "ewma")

    def __init__(self, alpha: float, name: str) -> None:
        self.tier = TIER_NORMAL
        self.entered_at = 0.0
        self.ewma = Ewma(f"overload.{name}.queue_ewma", alpha)


class BackpressureController:
    """Walks machines through pressure tiers from observed signals.

    One instance per runtime; the engine calls :meth:`observe` for each
    live machine on its monitor tick and acts on the returned tier.
    The controller is engine-agnostic (pure state machine over floats),
    which is what the unit tests exercise directly.
    """

    def __init__(self, config: SheddingConfig) -> None:
        self.config = config
        self.counters = SheddingCounters()
        self._machines: Dict[str, _MachinePressure] = {}

    def tier_of(self, machine: str) -> int:
        """The machine's current tier (normal if never observed)."""
        state = self._machines.get(machine)
        return state.tier if state is not None else TIER_NORMAL

    def smoothed(self, machine: str) -> float:
        """The machine's EWMA-smoothed queue fraction (diagnostics)."""
        state = self._machines.get(machine)
        return state.ewma.value if state is not None else 0.0

    def observe(self, machine: str, signals: PressureSignals,
                now: float) -> int:
        """Fold one observation; returns the machine's (new) tier."""
        cfg = self.config
        state = self._machines.get(machine)
        if state is None:
            state = self._machines[machine] = _MachinePressure(
                cfg.ewma_alpha, machine)
            state.entered_at = now
        state.ewma.observe(signals.queue_fraction)
        smoothed = state.ewma.value

        target = self._target_tier(smoothed, signals)
        tier = state.tier
        if target > tier:
            # Escalation is immediate — overload is urgent.
            self._transition(state, target, now)
        elif target < tier and now - state.entered_at >= cfg.hold_s \
                and smoothed <= self._exit_threshold(tier):
            # De-escalate one tier at a time, after the dwell, and only
            # once the smoothed signal cleared the tier's exit band.
            self._transition(state, tier - 1, now)
        return state.tier

    def finish(self, now: float) -> None:
        """Close every open tier-residence interval (end of run)."""
        for state in self._machines.values():  # noqa: MUP003 -- residence sums are order-independent
            self.counters.add_residence(state.tier,
                                        max(0.0, now - state.entered_at))
            state.entered_at = now

    # -- internals ---------------------------------------------------------
    def _target_tier(self, smoothed: float,
                     signals: PressureSignals) -> int:
        cfg = self.config
        if smoothed >= cfg.throttle_enter:
            return TIER_THROTTLE
        if smoothed >= cfg.overflow_enter:
            return TIER_OVERFLOW
        if smoothed >= cfg.thin_enter:
            return TIER_THIN
        # Secondary signals can force the first (cheap, reversible)
        # tier even while queues still look shallow: a slow updater
        # (p99 over budget) or a flush backlog both predict queue
        # growth before the queues themselves show it.
        if cfg.p99_budget_s is not None and signals.p99_s > cfg.p99_budget_s:
            return TIER_THIN
        if cfg.dirty_slates_high is not None and \
                signals.dirty_slates > cfg.dirty_slates_high:
            return TIER_THIN
        return TIER_NORMAL

    def _exit_threshold(self, tier: int) -> float:
        cfg = self.config
        if tier >= TIER_THROTTLE:
            return cfg.throttle_exit
        if tier == TIER_OVERFLOW:
            return cfg.overflow_exit
        return cfg.thin_exit

    def _transition(self, state: _MachinePressure, tier: int,
                    now: float) -> None:
        self.counters.add_residence(state.tier,
                                    max(0.0, now - state.entered_at))
        if tier > state.tier:
            self.counters.escalations += 1
        else:
            self.counters.deescalations += 1
        state.tier = tier
        state.entered_at = now
