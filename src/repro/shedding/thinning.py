"""Probabilistic thinning with inverse-probability-weighted estimates.

An updater whose state is an associative accumulator (counts, sums —
anything where ``update`` folds events commutatively) can *declare
thinnability*: under overload the engine may skip a fraction of its
update applications, and the kept events are applied with weight
``1/p_keep`` so the expected slate value equals the exact one
(Horvitz-Thompson estimation).

Two sampling modes, both unbiased and both seeded:

* ``"stratified"`` (default) — systematic sampling with a seeded
  random phase: each key carries an accumulator that gains ``p_keep``
  per arrival and keeps an event each time it crosses 1. Over the
  uniform random phase the estimate is unbiased, and — the property
  the bench leans on — the pre-weight error is **deterministically
  bounded** by one event, so a key that saw ``n`` thinned arrivals at
  rate ``p`` ends within ``1/p`` of its exact count: relative error
  at most ``1 / (p · n)``. Hot keys (large ``n``) get provably tiny
  error, which is exactly where thinning engages.
* ``"bernoulli"`` — independent coin flips per arrival. Same
  expectation, but the error is stochastic (variance ``n(1-p)/p``),
  so only the *mean over seeds* converges; any single run can sit
  several standard deviations out. Kept for the unbiasedness property
  tests and as the textbook Horvitz-Thompson baseline.

The contract has two halves:

* **Declaration** — an :class:`~repro.core.operators.Updater` subclass
  sets ``thinnable = True`` (or passes ``{"thinnable": True}`` config)
  and implements ``update_weighted(ctx, event, slate, weight)``.
  :class:`ThinnableCounter` is the canonical implementation.
* **Decision** — :class:`Thinner` draws keep/skip decisions from one
  seeded RNG according to a :class:`ThinningPolicy` of per-key-class
  keep rates. The engine consumes decisions in discrete-event order,
  so a seeded overloaded run replays exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.core.event import Event, Key
from repro.core.operators import Context, Updater
from repro.core.slate import Slate
from repro.errors import ConfigurationError

#: The key class used when no classifier is configured (or the
#: classifier returns a class with no configured rate).
DEFAULT_CLASS = "default"


@dataclass(frozen=True)
class ThinningPolicy:
    """Per-key-class keep probabilities for thinned update application.

    Keys are mapped to classes by ``classifier`` (default: every key is
    ``"default"``); each class keeps events with its configured
    probability. A rate of 1.0 disables thinning for that class — hot
    key classes typically get low keep rates (their estimates have many
    samples) while rare-key classes keep 1.0.

    Attributes:
        keep_rates: Mapping class name -> keep probability in (0, 1].
        classifier: Optional ``key -> class name`` function. ``None``
            classifies every key as :data:`DEFAULT_CLASS`.
        mode: ``"stratified"`` (bounded error, default) or
            ``"bernoulli"`` (independent draws); see the module
            docstring for the trade-off.
    """

    keep_rates: Dict[str, float] = field(
        default_factory=lambda: {DEFAULT_CLASS: 0.1})
    classifier: Optional[Callable[[Key], str]] = None
    mode: str = "stratified"

    def __post_init__(self) -> None:
        if not self.keep_rates:
            raise ConfigurationError("ThinningPolicy needs >= 1 keep rate")
        for cls, rate in self.keep_rates.items():
            if not 0.0 < rate <= 1.0:
                raise ConfigurationError(
                    f"keep rate for class {cls!r} must be in (0, 1], "
                    f"got {rate!r}")
        if self.mode not in ("stratified", "bernoulli"):
            raise ConfigurationError(
                f"mode must be 'stratified' or 'bernoulli', "
                f"got {self.mode!r}")

    @classmethod
    def uniform(cls, keep_rate: float,
                mode: str = "stratified") -> "ThinningPolicy":
        """One keep rate for every key."""
        return cls(keep_rates={DEFAULT_CLASS: keep_rate}, mode=mode)

    def keep_rate(self, key: Key) -> float:
        """The keep probability for one key (1.0 for unknown classes)."""
        if self.classifier is None:
            return self.keep_rates.get(DEFAULT_CLASS, 1.0)
        cls = self.classifier(key)
        rate = self.keep_rates.get(cls)
        if rate is None:
            rate = self.keep_rates.get(DEFAULT_CLASS, 1.0)
        return rate


class Thinner:
    """Seeded keep/skip decision engine (one per runtime).

    Decisions draw from a private ``random.Random(seed)``; the engines
    consume them in deterministic discrete-event (or lock-serialized)
    order, so the same seed over the same workload replays the exact
    same keep/skip sequence — the replay-exactness half of the
    overload-control contract.
    """

    __slots__ = ("policy", "decisions", "kept", "skipped", "_rng",
                 "_phase")

    def __init__(self, policy: ThinningPolicy, seed: int = 0) -> None:
        self.policy = policy
        self.decisions = 0
        self.kept = 0
        self.skipped = 0
        self._rng = random.Random(seed)
        #: Stratified mode: per-key sampling accumulator, seeded with a
        #: random phase in [0, 1) on the key's first thinned arrival.
        self._phase: Dict[Key, float] = {}

    def decide(self, key: Key) -> Tuple[bool, float]:
        """One keep/skip decision for ``key``.

        Returns:
            ``(keep, weight)``: kept events apply with the
            inverse-probability weight ``1 / p_keep`` (1.0 when the
            class's rate is 1.0 — no RNG draw is consumed then, so
            fully-kept classes cost nothing and perturb nothing).
        """
        rate = self.policy.keep_rate(key)
        if rate >= 1.0:
            return True, 1.0
        self.decisions += 1
        if self.policy.mode == "stratified":
            acc = self._phase.get(key)
            if acc is None:
                acc = self._rng.random()
            acc += rate
            if acc >= 1.0:
                self._phase[key] = acc - 1.0
                self.kept += 1
                return True, 1.0 / rate
            self._phase[key] = acc
            self.skipped += 1
            return False, 0.0
        if self._rng.random() < rate:
            self.kept += 1
            return True, 1.0 / rate
        self.skipped += 1
        return False, 0.0


class ThinnableCounter(Updater):
    """The canonical thinnable updater: an IPW-weighted per-key counter.

    Under normal load every event adds 1.0 to ``count`` — identical to
    the plain counting updater, and identical to what the reference
    executor computes. Under thinning, kept events add their weight
    ``1/p``, so ``E[count]`` still equals the exact count (unbiased);
    the ground-truth error is measured by
    :func:`repro.shedding.measure.measure_counter_error`.
    """

    thinnable = True

    def init_slate(self, key: Key) -> Dict[str, Any]:
        return {"count": 0.0}

    def update(self, ctx: Context, event: Event, slate: Slate) -> None:
        self.update_weighted(ctx, event, slate, 1.0)

    def update_weighted(self, ctx: Context, event: Event, slate: Slate,
                        weight: float) -> None:
        slate["count"] += weight
