"""Overload control: adaptive backpressure + probabilistic thinning.

The paper's queue-overflow story (Sections 4.3, 5) is blunt: drop (and
log), divert to a degraded overflow stream, or throttle the sources.
All three either lose data outright or stall ingestion. This package
adds a fourth, *graceful* degradation mode for associative counter-like
state: probabilistically thin update application and keep the counters
unbiased via inverse-probability weighting (Horvitz-Thompson
estimation) — a kept event with keep-probability ``p`` applies with
weight ``1/p``, so the expected counter value equals the exact count.

Three pieces:

* :mod:`repro.shedding.thinning` — the thinnability contract and the
  seeded per-key-class thinning decision engine;
* :mod:`repro.shedding.controller` — the adaptive backpressure
  controller that walks each machine through pressure tiers
  (normal → thin → overflow-stream → source-throttle) with hysteresis;
* :mod:`repro.shedding.measure` — ground-truth error measurement
  against the reference executor (max/mean relative counter error and
  per-policy data-loss accounting).

Everything here is deterministic given the configured seed: all
probabilistic decisions draw from one seeded RNG consumed in
discrete-event order, so an overloaded run replays exactly.
"""

from repro.shedding.controller import (TIER_NAMES, TIER_NORMAL,
                                       TIER_OVERFLOW, TIER_THIN,
                                       TIER_THROTTLE, BackpressureController,
                                       PressureSignals, SheddingConfig,
                                       SheddingCounters)
from repro.shedding.measure import CounterErrorReport, measure_counter_error
from repro.shedding.thinning import ThinnableCounter, Thinner, ThinningPolicy

__all__ = [
    "BackpressureController",
    "CounterErrorReport",
    "PressureSignals",
    "SheddingConfig",
    "SheddingCounters",
    "ThinnableCounter",
    "Thinner",
    "ThinningPolicy",
    "TIER_NAMES",
    "TIER_NORMAL",
    "TIER_OVERFLOW",
    "TIER_THIN",
    "TIER_THROTTLE",
    "measure_counter_error",
]
