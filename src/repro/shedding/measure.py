"""Ground-truth error measurement against the reference executor.

Section 3's reference executor defines what every counter *should* be;
an overloaded run that shed load (thinned, dropped, diverted) deviates
from it. This module quantifies the deviation: per-key relative error
of a numeric slate field versus the reference ground truth, plus the
data-loss accounting that distinguishes the policies — drop loses
events outright, thinning loses none (it degrades precision, bounded
and unbiased, instead of completeness).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Mapping, Optional

from repro.errors import AnalysisError

if TYPE_CHECKING:  # import cycle: reference → muppet → shedding → here
    from repro.core.reference import ReferenceResult


@dataclass
class CounterErrorReport:
    """Per-key counter error of one engine run versus the reference.

    Relative error for key ``k`` is ``|measured - exact| / exact``
    (exact-zero keys are compared absolutely: any nonzero measurement
    counts as error 1.0). ``missing_keys`` are reference keys the run
    never materialized — total loss for those keys, reported separately
    so a policy that drops whole keys cannot hide behind a low mean.
    """

    updater: str
    fld: str
    compared: int = 0
    missing_keys: int = 0
    max_rel_error: float = 0.0
    mean_rel_error: float = 0.0
    #: Key with the worst error (diagnostics; "" when none compared).
    worst_key: str = ""
    per_key: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        """Summary dict (no per-key detail) for report/bench tables."""
        return {
            "updater": self.updater,
            "field": self.fld,
            "compared": self.compared,
            "missing_keys": self.missing_keys,
            "max_rel_error": self.max_rel_error,
            "mean_rel_error": self.mean_rel_error,
            "worst_key": self.worst_key,
        }


def _numeric(value: Any, where: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise AnalysisError(
            f"counter error needs a numeric field; {where} holds "
            f"{value!r}")
    return float(value)


def counter_error(measured: Mapping[str, Mapping[str, Any]],
                  exact: Mapping[str, float],
                  updater: str, fld: str) -> CounterErrorReport:
    """Compare ``measured`` slates against exact per-key values.

    Args:
        measured: ``{key: slate fields}`` as the engines return from
            ``slates_of`` / ``read_slates_of``.
        exact: ``{key: exact value}`` ground truth (see
            :meth:`repro.core.reference.ReferenceResult.numeric_slates`).
        updater: Label for the report.
        fld: Slate field name being compared.
    """
    report = CounterErrorReport(updater=updater, fld=fld)
    total = 0.0
    for key in sorted(exact):
        truth = exact[key]
        slate = measured.get(key)
        if slate is None or fld not in slate:
            report.missing_keys += 1
            continue
        got = _numeric(slate[fld], f"slate ({updater}, {key!r}).{fld}")
        if truth == 0.0:
            rel = 0.0 if got == 0.0 else 1.0
        else:
            rel = abs(got - truth) / abs(truth)
        report.per_key[key] = rel
        report.compared += 1
        total += rel
        if rel > report.max_rel_error:
            report.max_rel_error = rel
            report.worst_key = key
    if report.compared:
        report.mean_rel_error = total / report.compared
    return report


def measure_counter_error(measured: Mapping[str, Mapping[str, Any]],
                          reference: ReferenceResult,
                          updater: str, fld: str) -> CounterErrorReport:
    """Counter error of an engine's final slates versus a reference run.

    The reference executor never sheds, so its slates are the Section 3
    exact values; any relative error here is the price of the overload
    policy (zero under no overload, bounded and unbiased under
    thinning, unbounded under drop).
    """
    return counter_error(measured,
                         reference.numeric_slates(updater, fld),
                         updater, fld)


def attach_error_report(report: Any,
                        measured: Mapping[str, Mapping[str, Any]],
                        reference: ReferenceResult,
                        updater: str, fld: str) -> CounterErrorReport:
    """Measure and surface the error summary on a ``SimReport``.

    Fills ``report.shedding_error`` with the summary dict so benchmark
    tables and JSON dumps carry the ground-truth deviation next to the
    shedding counters. Returns the full per-key report.
    """
    error = measure_counter_error(measured, reference, updater, fld)
    report.shedding_error = error.as_dict()
    return error


def loss_summary(report: Any) -> Dict[str, Optional[float]]:
    """Per-policy data-loss accounting from one ``SimReport``.

    ``lost`` events left the system without being processed (dropped on
    overflow or to failures); ``degraded`` were served on the overflow
    stream; ``thinned`` were sampled out with unbiased reconstruction
    (precision cost, not data loss); ``throttled`` were deferred at the
    source.
    """
    counters = report.counters
    return {
        "published": counters.published,
        "lost": counters.lost_total(),
        "degraded": counters.diverted_overflow_stream,
        "thinned": getattr(counters, "thinned", 0),
        "throttled": counters.throttled,
        "throttle_paused_s": report.throttle_paused_s,
    }
