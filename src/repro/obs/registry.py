"""MetricsRegistry: counters, gauges, and fixed-bucket histograms.

The paper's operators were tuned in production by watching queue depths,
slate-flush backlogs, and per-function latencies (Sections 5-6: two-choice
queue balancing, the background flusher, and hot-key detection all hinge on
observable load). This module is the reproduction's single pane of glass
for those quantities: every engine attaches one :class:`MetricsRegistry`
and registers its live counter objects as *views*, so a snapshot reads the
whole system without any hot-path bookkeeping beyond what already exists.

Three instrument kinds:

* :class:`Counter` — a monotone count the owner increments explicitly.
* :class:`Gauge` — a lazy callable sampled only at snapshot time; views
  over existing stats dataclasses are gauges, so registering them costs
  the hot path nothing.
* :class:`Histogram` — fixed bucket boundaries with linear-interpolated
  p50/p95/p99 summaries; bucket counts (not raw samples) are retained, so
  memory stays O(buckets) regardless of event volume.
"""

from __future__ import annotations

import bisect
import json
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.errors import ConfigurationError

#: Default latency buckets (seconds): 1 ms .. 30 s in roughly 2x steps,
#: bracketing the paper's 2-second end-to-end bound from both sides.
# fmt: off
DEFAULT_LATENCY_BUCKETS_S = (
    0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5,
    1.0, 2.0, 5.0, 10.0, 30.0,
)
# fmt: on


class Counter:
    """A monotone counter owned by the registry."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        self.value += amount


class Gauge:
    """A lazily sampled value: ``fn`` runs only at snapshot time."""

    __slots__ = ("name", "fn")

    def __init__(self, name: str, fn: Callable[[], Any]) -> None:
        self.name = name
        self.fn = fn

    def read(self) -> Any:
        """Sample the gauge now."""
        return self.fn()


class Histogram:
    """Fixed-bucket histogram with percentile summaries.

    Args:
        name: Registry name.
        buckets: Ascending upper bounds; an implicit overflow bucket
            catches everything above the last bound.

    Percentiles are linearly interpolated within the winning bucket (the
    classic Prometheus ``histogram_quantile`` estimate), so they are
    approximations bounded by bucket width — adequate for the latency
    tables the benchmarks print, at O(buckets) memory.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "maximum")

    def __init__(
        self, name: str, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_S
    ) -> None:
        if not buckets:
            raise ConfigurationError("histogram needs at least one bucket")
        bounds = list(buckets)
        if sorted(bounds) != bounds or len(set(bounds)) != len(bounds):
            raise ConfigurationError(
                f"histogram buckets must be strictly ascending, got {bounds}"
            )
        self.name = name
        self.bounds: List[float] = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)  # +overflow
        self.count = 0
        self.total = 0.0
        self.maximum = 0.0

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value > self.maximum:
            self.maximum = value

    def observe_many(self, values: Sequence[float]) -> None:
        """Record many samples (report-time bulk feed)."""
        for value in values:
            self.observe(value)

    def percentile(self, fraction: float) -> float:
        """Estimated percentile; 0.0 when no samples were recorded."""
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError(f"fraction {fraction} outside [0, 1]")
        if self.count == 0:
            return 0.0
        rank = fraction * self.count
        seen = 0
        for i, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if seen + bucket_count >= rank:
                low = self.bounds[i - 1] if i > 0 else 0.0
                high = self.bounds[i] if i < len(self.bounds) else self.maximum
                if high <= low:
                    return high
                within = (rank - seen) / bucket_count
                return min(low + within * (high - low), self.maximum)
            seen += bucket_count
        return self.maximum

    @property
    def mean(self) -> float:
        """Sample mean; 0.0 when empty."""
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, float]:
        """Plain-dict summary: count/mean/p50/p95/p99/max."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
            "max": self.maximum,
        }


class Ewma:
    """Exponentially weighted moving average of a scalar signal.

    The overload controller smooths its queue-depth signal with one of
    these per machine so a single deep-queue sample cannot flap a
    pressure tier. The first observation seeds the average directly
    (no warm-up bias toward zero); afterwards
    ``value = alpha * sample + (1 - alpha) * value``.
    """

    __slots__ = ("name", "alpha", "value", "count")

    def __init__(self, name: str, alpha: float) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(
                f"ewma alpha must be in (0, 1], got {alpha!r}")
        self.name = name
        self.alpha = alpha
        self.value = 0.0
        self.count = 0

    def observe(self, sample: float) -> float:
        """Fold one sample; returns the updated average."""
        if self.count == 0:
            self.value = sample
        else:
            self.value = self.alpha * sample + (1.0 - self.alpha) * self.value
        self.count += 1
        return self.value


def _numeric_fields(obj: Any) -> Dict[str, Any]:
    """The int/float attributes of a stats object, insertion-ordered.

    Works for ``__dict__``-backed and slotted stats objects alike; a
    slotted dataclass's ``__slots__`` preserves field declaration order,
    so snapshots keep their historical key order either way.
    """
    attrs = getattr(obj, "__dict__", None)
    if attrs is None:
        attrs = {name: getattr(obj, name) for name in obj.__slots__}
    return {
        name: value
        for name, value in attrs.items()
        if isinstance(value, (int, float)) and not name.startswith("_")
    }


class MetricsRegistry:
    """A namespace of counters, gauges, histograms, and object views.

    Names are dotted paths (``"robustness.kv_retries"``); the first
    segment is the *family*, which :meth:`family_snapshot` groups by —
    the engines' ``counter_report`` is generated from exactly those
    families, which is what makes the registry refactor byte-invisible
    to the pre-existing determinism gates.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        #: (prefix, fn) pairs contributing whole dicts at snapshot time.
        self._groups: List[Any] = []

    # -- registration ------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        counter = self._counters.get(name)
        if counter is None:
            self._check_free(name)
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str, fn: Callable[[], Any]) -> Gauge:
        """Register a lazy gauge; re-registering replaces the callable."""
        gauge = self._gauges.get(name)
        if gauge is None:
            self._check_free(name)
            gauge = self._gauges[name] = Gauge(name, fn)
        else:
            gauge.fn = fn
        return gauge

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_S,
    ) -> Histogram:
        """Get or create the histogram ``name``."""
        histogram = self._histograms.get(name)
        if histogram is None:
            self._check_free(name)
            histogram = self._histograms[name] = Histogram(name, buckets)
        return histogram

    def register_view(self, prefix: str, obj: Any) -> None:
        """Expose a live stats object's numeric fields as gauges.

        The object is read at snapshot time, so the owner keeps mutating
        its fields exactly as before — the registry is a *view*, not a
        copy, and attaching it costs the hot path nothing.
        """
        self._groups.append((prefix, lambda: _numeric_fields(obj)))

    def register_group(self, prefix: str, fn: Callable[[], Mapping[str, Any]]) -> None:
        """Expose a whole dict-producing callable under ``prefix``."""
        self._groups.append((prefix, fn))

    def _check_free(self, name: str) -> None:
        if name in self._counters or name in self._gauges or name in self._histograms:
            raise ConfigurationError(
                f"metric {name!r} already registered as another kind"
            )

    # -- reading -----------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """One flat, deterministically ordered name->value mapping.

        Histograms expand to ``<name>.count/.mean/.p50/.p95/.p99/.max``.
        Group and view entries are sampled now; conflicting names resolve
        last-registered-wins (views layered over explicit instruments).
        """
        flat: Dict[str, Any] = {}
        for name, counter in self._counters.items():  # noqa: MUP003 -- flat is sorted before return
            flat[name] = counter.value
        for name, gauge in self._gauges.items():  # noqa: MUP003 -- flat is sorted before return
            flat[name] = gauge.read()
        for name, histogram in self._histograms.items():  # noqa: MUP003 -- flat is sorted before return
            for stat, value in histogram.summary().items():  # noqa: MUP003 -- flat is sorted before return
                flat[f"{name}.{stat}"] = value
        for prefix, fn in self._groups:
            for key, value in fn().items():  # noqa: MUP003 -- flat is sorted before return
                flat[f"{prefix}.{key}"] = value
        return dict(sorted(flat.items()))

    def family_snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Snapshot grouped by the first dotted segment of each name."""
        families: Dict[str, Dict[str, Any]] = {}
        for name, value in self.snapshot().items():  # noqa: MUP003 -- snapshot() is already name-sorted
            family, _, rest = name.partition(".")
            families.setdefault(family, {})[rest or family] = value
        return families

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The snapshot as a JSON document (CLI ``--metrics-out``)."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True, default=float)
