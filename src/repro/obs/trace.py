"""Structured event tracing: span records, sinks, and chain rebuilding.

With ``SimConfig.trace`` on, the simulated engine emits one *span record*
at every station an event passes through — source injection, dispatch,
enqueue, map/update execution, slate read/flush, kv replica write, batch
flush, replay-dedup decisions — each carrying the event's replay-stable
``(origin, oseq)`` provenance (see :meth:`repro.core.event.Event.
provenance`). Because the provenance survives operator hops (derived
events chain their parent's identity), a single source event's complete
path through the workflow graph can be reconstructed from the trace with
:func:`reconstruct_chain`.

Tracing is strictly passive: sinks never schedule simulator events or
mutate engine state, so an enabled trace changes *nothing* about the
simulated outcome — the no-op contract tests assert byte-identical
counters and slates with tracing on and off. With tracing off the engines
hold ``None`` instead of a tracer and every emission site is a single
``is not None`` check; the overhead bench measures that guard at well
under the 2% budget.

Span record schema (one JSON object per line in the JSONL sink)::

    {"ts": <simulated seconds>, "kind": <station>, ...station fields}

Station kinds and their fields:

* ``source``   — ``sid, key, origin, oseq``: M0 injected a source event.
* ``dispatch`` — ``machine, fn, key, worker, origin, oseq``: the
  two-choice (or single-choice) dispatcher picked a worker queue.
* ``enqueue``  — ``machine, fn, key, worker, depth, origin, oseq``: the
  event entered that worker's bounded queue.
* ``execute``  — ``machine, op, op_kind, key, worker, origin, oseq``
  (+``updater, row, column`` for updates): one map/update invocation ran.
* ``publish``  — ``sid, op, ordinal, parent_origin, parent_oseq, origin,
  oseq``: an operator emitted its ``ordinal``-th output event. The
  explicit parent→child provenance edge is what lets
  :func:`reconstruct_chain` cross operator hops in every delivery mode
  (without effectively-once dedup, derived events carry no ``>``-chained
  origin of their own).
* ``dedup``    — ``machine, op, key, origin, oseq, decision``: a
  replayed event hit the slate watermark check (``skip``/``reapply``).
* ``shed``     — ``machine, key, origin, oseq, outcome`` plus ``op``
  (outcome ``thin``) or ``fn`` (other outcomes): the overload machinery
  resolved one delivery. ``thin`` = probabilistically skipped inside
  the updater (kept siblings carry inverse-probability weight);
  ``drop`` = discarded at a full queue; ``divert`` = re-addressed to
  the overflow stream (``proactive`` True when backpressure diverted
  it before the queue filled); ``throttle_retry`` = held for a later
  redelivery while sources pause. The shed-accounting invariant
  (``repro.analysis.invariants``) audits these against executes.
* ``batch_flush`` — ``src, dst, events, trigger``: a coalesced
  data-plane envelope shipped.
* ``slate_read``  — ``updater, key, row, column, hit``: a slate-manager
  store fetch (``hit`` False = initialized fresh).
* ``slate_flush`` — ``updater, key, row, column, batched``: one dirty
  slate persisted.
* ``kv_write`` — ``row, column, replicas, acks``: one replicated cell
  write (batch writes emit one span per cell).
* ``ring_change`` — ``change, machine``: cluster membership changed
  (``exclude`` on failure broadcast, ``restore`` on recovery, ``join``
  on elastic add). The trace invariant checker scopes its two-choice
  and ring-ownership windows between these spans.

``slate_read``/``slate_flush`` spans additionally carry ``machine``
when the emitting slate manager was constructed with an owner (the
simulator always sets one; the threaded engines have no machine name).
"""

from __future__ import annotations

import json
from collections import deque
from typing import IO, Any, Deque, Dict, Iterable, List, Optional, Union

from repro.errors import ConfigurationError

#: One span record. Plain dicts keep emission allocation-cheap and make
#: every sink (ring, JSONL, tests) share one representation.
Span = Dict[str, Any]


class Tracer:
    """Base tracer: collects span records; subclasses choose retention."""

    def emit(self, ts: float, kind: str, **fields: Any) -> None:
        """Record one span at simulated time ``ts``."""
        span: Span = {"ts": ts, "kind": kind}
        span.update(fields)
        self._store(span)

    def _store(self, span: Span) -> None:
        raise NotImplementedError

    def spans(self) -> List[Span]:
        """Everything retained, in emission order."""
        raise NotImplementedError

    def close(self) -> None:
        """Flush/release sink resources (no-op by default)."""

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class RingTracer(Tracer):
    """In-memory sink keeping the most recent ``capacity`` spans.

    The bounded deque makes long chaos runs safe to trace: memory is
    O(capacity), and the tail of the run — where recovery and replay
    happen — is what debugging usually needs.
    """

    def __init__(self, capacity: int = 65_536) -> None:
        if capacity < 1:
            raise ConfigurationError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.dropped = 0
        self._ring: Deque[Span] = deque(maxlen=capacity)

    def _store(self, span: Span) -> None:
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(span)

    def spans(self) -> List[Span]:
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)


class JsonlTracer(Tracer):
    """File sink writing one JSON object per line (and keeping a ring).

    Args:
        path_or_file: Output path, or an open text file (tests pass
            ``io.StringIO``). Paths are opened lazily on first span.
        ring_capacity: How many recent spans :meth:`spans` retains for
            in-process inspection alongside the file.
    """

    def __init__(
        self, path_or_file: Union[str, IO[str]], ring_capacity: int = 4_096
    ) -> None:
        self._path: Optional[str] = None
        self._file: Optional[IO[str]] = None
        if isinstance(path_or_file, str):
            self._path = path_or_file
        else:
            self._file = path_or_file
        self._owns_file = self._file is None
        self._ring: Deque[Span] = deque(maxlen=ring_capacity)
        self.written = 0

    def _store(self, span: Span) -> None:
        if self._file is None:
            assert self._path is not None
            self._file = open(self._path, "w", encoding="utf-8")
        self._file.write(json.dumps(span, sort_keys=True, default=repr))
        self._file.write("\n")
        self.written += 1
        self._ring.append(span)

    def spans(self) -> List[Span]:
        return list(self._ring)

    def close(self) -> None:
        if self._file is not None:
            self._file.flush()
            if self._owns_file:
                self._file.close()
                self._file = None


def read_jsonl(path: str) -> List[Span]:
    """Load a JSONL trace file back into span dicts."""
    spans: List[Span] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans


def spans_for(spans: Iterable[Span], origin: str, oseq: int) -> List[Span]:
    """All spans carrying exactly the provenance ``(origin, oseq)``."""
    return [
        span
        for span in spans
        if span.get("origin") == origin and span.get("oseq") == oseq
    ]


def reconstruct_chain(spans: Iterable[Span], origin: str, oseq: int) -> List[Span]:
    """Rebuild one event's full path from a trace.

    The chain starts with every span that carries the event's own
    ``(origin, oseq)`` provenance — source injection, dispatches,
    enqueues, executions, dedup decisions — *plus* the spans of events
    derived from it downstream. Downstream identities are found two
    ways: by following the explicit parent→child edges that ``publish``
    spans record (works in every delivery mode), and by the
    effectively-once origin chaining (``"S1" -> "S1>M1"``, see
    :func:`repro.core.event.derive_origin`) for traces that predate
    publish spans. It is then extended through the state layers by
    joining on the slate address: the first ``slate_flush`` of a slate
    this event's update touched that happens at-or-after the update, and
    the first ``kv_write`` of that slate's ``(row, column)`` cell
    at-or-after the flush. Returns the chain in time order (ties keep
    emission order).
    """
    ordered = list(spans)
    # Identities reachable from the root via publish parent→child edges.
    children: Dict[tuple, List[tuple]] = {}
    for span in ordered:
        if span.get("kind") == "publish":
            parent = (span.get("parent_origin"), span.get("parent_oseq"))
            children.setdefault(parent, []).append(
                (span.get("origin"), span.get("oseq"))
            )
    reached = {(origin, oseq)}
    frontier = [(origin, oseq)]
    while frontier:
        for child in children.get(frontier.pop(), ()):
            if child not in reached:
                reached.add(child)
                frontier.append(child)
    chain: List[Span] = []
    for span in ordered:
        span_origin = span.get("origin")
        if span_origin is None:
            continue
        if (span_origin, span.get("oseq")) in reached:
            chain.append(span)
        elif (
            isinstance(span_origin, str)
            and span_origin.startswith(f"{origin}>")
            and _derived_from(span.get("oseq"), span_origin, origin, oseq)
        ):
            chain.append(span)
    # Join through the state layers: updates name the slate cell they
    # touched; flushes and kv writes name the same cell.
    for update in [s for s in chain if s.get("kind") == "execute" and "row" in s]:
        flush = _first_at_or_after(
            ordered,
            "slate_flush",
            update["ts"],
            row=update["row"],
            column=update["column"],
        )
        if flush is None:
            continue
        if flush not in chain:
            chain.append(flush)
        write = _first_at_or_after(
            ordered, "kv_write", flush["ts"], row=flush["row"], column=flush["column"]
        )
        if write is not None and write not in chain:
            chain.append(write)
    indexed = {id(span): i for i, span in enumerate(ordered)}
    chain.sort(key=lambda span: (span["ts"], indexed.get(id(span), 0)))
    return chain


def _derived_from(
    derived_oseq: Optional[int], derived_origin: str, origin: str, oseq: int
) -> bool:
    """Is ``(derived_origin, derived_oseq)`` derived from ``(origin,
    oseq)``? Derivation multiplies the parent sequence by
    ``ORIGIN_SEQ_STRIDE`` once per operator hop and adds the output
    ordinal (see :func:`repro.core.event.derive_origin`)."""
    from repro.core.event import ORIGIN_SEQ_STRIDE

    if derived_oseq is None:
        return False
    hops = derived_origin[len(origin) :].count(">")
    ancestor = derived_oseq
    for _ in range(hops):
        ancestor //= ORIGIN_SEQ_STRIDE
    return ancestor == oseq


def _first_at_or_after(
    spans: List[Span], kind: str, ts: float, **match: Any
) -> Optional[Span]:
    for span in spans:
        if span.get("kind") != kind or span["ts"] < ts:
            continue
        if all(span.get(field) == value for field, value in match.items()):
            return span
    return None
