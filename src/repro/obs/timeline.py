"""Per-operator/per-machine timeseries sampled during a simulated run.

The paper's operational story (Sections 5-6) is about watching load move:
queue depths during hotspots, dirty-slate backlogs between flushes,
per-function latency as machines come and go. :class:`TimelineRecorder`
captures exactly those series. Sampling piggybacks on the engine's
existing background-flusher tick, so enabling a timeline adds *zero*
simulator events — ``SimReport.counter_report()`` (which includes the
step count) stays byte-identical with the timeline on or off.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.obs.registry import Histogram


class TimelineRecorder:
    """Accumulates periodic samples; rendered by ``SimReport.timeline()``.

    Series kept per sample time ``t`` (simulated seconds):

    * machines: worst/total worker-queue depth and dirty-slate count;
    * updaters: cumulative latency-sample count plus the running
      p50/p95/p99 estimate from a fixed-bucket :class:`Histogram`.
    """

    def __init__(self) -> None:
        self.machine_series: Dict[str, List[Dict[str, Any]]] = {}
        self.updater_series: Dict[str, List[Dict[str, Any]]] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._fed: Dict[str, int] = {}

    def sample_machine(
        self,
        now: float,
        machine: str,
        queue_depth: int,
        queue_peak: int,
        dirty_slates: int,
        alive: bool,
    ) -> None:
        """Record one machine's queue/slate state at time ``now``."""
        point = {
            "t": now,
            "queue_depth": queue_depth,
            "queue_peak": queue_peak,
            "dirty_slates": dirty_slates,
            "alive": alive,
        }
        self.machine_series.setdefault(machine, []).append(point)

    def sample_updater(
        self, now: float, updater: str, latency_samples: List[float]
    ) -> None:
        """Fold new latency samples into the updater's running histogram
        and record the summary at time ``now``. ``latency_samples`` is
        the updater's cumulative sample list; only the unseen tail is
        folded in, so callers can pass the recorder's live list."""
        histogram = self._histograms.get(updater)
        if histogram is None:
            histogram = self._histograms[updater] = Histogram(f"timeline.{updater}")
        seen = self._fed.get(updater, 0)
        for value in latency_samples[seen:]:
            histogram.observe(value)
        self._fed[updater] = len(latency_samples)
        point = {"t": now}
        point.update(histogram.summary())
        self.updater_series.setdefault(updater, []).append(point)

    def histogram(self, updater: str) -> Histogram:
        """The running latency histogram for one updater (creates it)."""
        histogram = self._histograms.get(updater)
        if histogram is None:
            histogram = self._histograms[updater] = Histogram(f"timeline.{updater}")
        return histogram

    def as_dict(self) -> Dict[str, Any]:
        """The full timeline: ``{"machines": {...}, "updaters": {...}}``."""
        return {
            "machines": {
                name: list(points)
                for name, points in sorted(self.machine_series.items())
            },
            "updaters": {
                name: list(points)
                for name, points in sorted(self.updater_series.items())
            },
        }
