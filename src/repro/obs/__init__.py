"""repro.obs — the observability layer: metrics, tracing, timelines.

Three cooperating pieces, all engine-agnostic:

* :class:`MetricsRegistry` (:mod:`repro.obs.registry`) — counters,
  lazy gauges, and fixed-bucket latency histograms; engines register
  their existing stats objects as live views, so one snapshot reads the
  whole system and ``counter_report()`` is generated from the registry's
  family snapshot byte-identically to the pre-registry output.
* :class:`Tracer` sinks (:mod:`repro.obs.trace`) — opt-in structured
  span records (source → dispatch → enqueue → execute → slate flush →
  kv replica write, plus batch flushes and replay-dedup decisions),
  carrying each event's replay-stable ``(origin, oseq)`` provenance;
  :func:`reconstruct_chain` rebuilds a single event's full path.
* :class:`TimelineRecorder` (:mod:`repro.obs.timeline`) — per-machine
  queue-depth / dirty-slate and per-updater latency timeseries sampled
  on the existing flusher tick (zero extra simulator events).
"""

from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.timeline import TimelineRecorder
from repro.obs.trace import (
    JsonlTracer,
    RingTracer,
    Span,
    Tracer,
    read_jsonl,
    reconstruct_chain,
    spans_for,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_S",
    "Gauge",
    "Histogram",
    "JsonlTracer",
    "MetricsRegistry",
    "RingTracer",
    "Span",
    "TimelineRecorder",
    "Tracer",
    "read_jsonl",
    "reconstruct_chain",
    "spans_for",
]
