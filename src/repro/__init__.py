"""repro — a from-scratch reproduction of Muppet (VLDB 2012).

Muppet implements **MapUpdate**, a MapReduce-style framework for *fast
data*: developers write map and update functions over streams; the system
distributes them over a cluster, managing per-(updater, key) state
("slates") as a first-class citizen backed by a Cassandra-like key-value
store.

Quickstart::

    from repro import Application, Event, Mapper, Updater, ReferenceExecutor

    class Shout(Mapper):
        def map(self, ctx, event):
            ctx.publish("S2", event.key, event.value.upper())

    class Count(Updater):
        def init_slate(self, key):
            return {"count": 0}
        def update(self, ctx, event, slate):
            slate["count"] += 1

    app = Application("demo")
    app.add_stream("S1", external=True)
    app.add_stream("S2")
    app.add_mapper("M1", Shout, subscribes=["S1"], publishes=["S2"])
    app.add_updater("U1", Count, subscribes=["S2"])

    result = ReferenceExecutor(app).run(
        [Event("S1", ts=float(i), key="k", value="hi") for i in range(3)]
    )
    assert result.slate("U1", "k")["count"] == 3

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.core` — the MapUpdate model and reference executor.
* :mod:`repro.cluster` — consistent hash ring, cluster topology.
* :mod:`repro.kvstore` — Cassandra-like LSM key-value store.
* :mod:`repro.slates` — slate codecs, caches, flush policies.
* :mod:`repro.muppet` — the Muppet 1.0 and 2.0 engines, failures,
  queues, throttling, HTTP slate reads, local thread runtime.
* :mod:`repro.sim` — discrete-event cluster simulator.
* :mod:`repro.faults` — chaos fault injection (seeded schedules of
  crashes, recoveries, partitions, slow nodes, kv outages).
* :mod:`repro.baselines` — MapReduce/micro-batch/Storm-style baselines.
* :mod:`repro.workloads` — synthetic firehose/checkin generators.
* :mod:`repro.apps` — the paper's example applications.
"""

from repro.core import (Application, Context, Event, EventCounter, Mapper,
                        Operator, ReferenceExecutor, ReferenceResult, Slate,
                        SlateKey, StreamSpec, Updater, merge_by_timestamp)
from repro.errors import (ConfigurationError, QueueOverflowError, ReproError,
                          SlateError, SlateTooLargeError, StoreError,
                          TimestampError, WorkflowError)

__version__ = "1.0.0"

__all__ = [
    "Application",
    "ConfigurationError",
    "Context",
    "Event",
    "EventCounter",
    "Mapper",
    "Operator",
    "QueueOverflowError",
    "ReferenceExecutor",
    "ReferenceResult",
    "ReproError",
    "Slate",
    "SlateError",
    "SlateKey",
    "SlateTooLargeError",
    "StoreError",
    "StreamSpec",
    "TimestampError",
    "Updater",
    "WorkflowError",
    "merge_by_timestamp",
    "__version__",
]
