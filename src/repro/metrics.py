"""Measurement utilities: latency recorders, throughput, percentiles.

Section 5 reports Muppet's headline numbers — >100 M tweets/day sustained
and end-to-end latency "under 2 seconds". These helpers give every engine
(local threads and simulator alike) a uniform way to record and summarize
those quantities so benchmarks can print paper-versus-measured tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import Dict, Iterable, List, Optional, Sequence


def percentile(samples: Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile of ``samples``.

    Args:
        samples: Any sequence of numbers; need not be sorted.
        fraction: In [0, 1]; e.g. 0.99 for p99.

    Raises:
        ValueError: If ``samples`` is empty or ``fraction`` out of range.
    """
    if not samples:
        raise ValueError("percentile of empty sample set")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction {fraction} outside [0, 1]")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = fraction * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    weight = rank - low
    # low + w*(high-low) is monotone in w and, with the clamp, immune to
    # the one-ULP overshoot of floating-point blending.
    value = ordered[low] + weight * (ordered[high] - ordered[low])
    return min(max(value, ordered[low]), ordered[high])


@dataclass(slots=True)
class LatencySummary:
    """Summary statistics for a set of latency samples (seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    maximum: float

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict form for printing in benchmark tables."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.maximum,
        }


class LatencyRecorder:
    """Accumulates per-event latencies and summarizes them.

    Latency here is the paper's end-to-end notion: time from the source
    event's timestamp to the completion of the last operator invocation it
    caused (or to a chosen sink operator).
    """

    def __init__(self) -> None:
        self._samples: List[float] = []

    def record(self, latency_s: float) -> None:
        """Add one latency sample (seconds)."""
        self._samples.append(latency_s)

    def extend(self, latencies: Iterable[float]) -> None:
        """Add many samples at once."""
        self._samples.extend(latencies)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> List[float]:
        """The raw samples (a direct reference; do not mutate)."""
        return self._samples

    def summary(self) -> LatencySummary:
        """Summarize; raises ValueError when no samples were recorded."""
        if not self._samples:
            raise ValueError("no latency samples recorded")
        return LatencySummary(
            count=len(self._samples),
            mean=sum(self._samples) / len(self._samples),
            p50=percentile(self._samples, 0.50),
            p95=percentile(self._samples, 0.95),
            p99=percentile(self._samples, 0.99),
            maximum=max(self._samples),
        )

    def fill_histogram(self, histogram) -> "LatencyRecorder":
        """Feed every sample into a registry histogram (report-time
        bridge to :class:`repro.obs.Histogram`); returns self."""
        histogram.observe_many(self._samples)
        return self


@dataclass(slots=True)
class RobustnessCounters:
    """Failure-injection and recovery accounting for one simulated run.

    Aggregated into :class:`repro.sim.runtime.SimReport` from the fault
    injector, the master, the slate managers, and the kv-store, so chaos
    tests can assert on one object (and print it byte-identically across
    seeded runs — see ``SimReport.counter_report``).
    """

    #: Machines revived through the master's recovery broadcast.
    recoveries: int = 0
    #: Slates a revived machine's manager refetched from the kv-store.
    rehydrated_slates: int = 0
    #: Slate-manager kv operations retried after a transient StoreError.
    kv_retries: int = 0
    #: Simulated seconds spent in retry exponential backoff.
    kv_backoff_s: float = 0.0
    #: Reads/writes that degraded (fail-open) after exhausting retries.
    fail_open_reads: int = 0
    fail_open_writes: int = 0
    #: Simulated seconds of extra service/network time from gray (slow
    #: node) failures.
    gray_slow_s: float = 0.0
    #: Messages dropped by injected drop rules / lost crossing an
    #: injected network partition.
    dropped_injected: int = 0
    lost_partition: int = 0
    #: Messages delayed by injected delay rules, and the total extra time.
    delayed_injected: int = 0
    injected_delay_s: float = 0.0
    #: Hinted-handoff accounting: hints buffered for down kv nodes,
    #: hints delivered on rejoin, hints evicted by the bounded buffers,
    #: and hints still pending at report time.
    hints_stored: int = 0
    hints_delivered: int = 0
    hints_evicted: int = 0
    hints_pending: int = 0
    #: Effectively-once accounting: replayed events skipped by a slate's
    #: persisted dedup watermark, replayed events that applied (their
    #: effects were lost with the crash), checkpoint-epoch barriers run,
    #: and journal entries pruned at those barriers. All zero unless
    #: ``SimConfig.delivery_semantics == "effectively-once"``.
    replay_deduped: int = 0
    replay_reapplied: int = 0
    checkpoint_epochs: int = 0
    epoch_pruned: int = 0

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict snapshot (insertion-ordered, deterministic)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass(slots=True)
class DataPlaneCounters:
    """Event-coalescing accounting for one simulated run.

    Filled by :class:`repro.sim.runtime.SimRuntime` when data-plane
    batching is on (``SimConfig.batch_max_events > 0``); all-zero
    otherwise. Printed under ``dataplane.*`` in
    ``SimReport.counter_report`` — the batching-determinism tests
    exclude these lines (batching legitimately changes how many
    envelopes fly) while asserting everything else is identical.
    """

    #: Coalesced envelopes shipped (one network message each).
    batches_sent: int = 0
    #: Events carried inside those envelopes.
    batched_events: int = 0
    #: Flushes triggered by the linger timer expiring.
    linger_flushes: int = 0
    #: Flushes triggered by a buffer reaching ``batch_max_events``.
    size_flushes: int = 0
    #: Flushes forced by ring changes or machine failure handling.
    forced_flushes: int = 0
    #: Largest single batch shipped.
    max_batch_events: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict snapshot (insertion-ordered, deterministic)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


def format_ms(seconds: Optional[float], digits: int = 2) -> str:
    """Format a seconds value as milliseconds, or ``"n/a"`` for None.

    Benchmarks report optional quantities (e.g. failure detection time,
    which is ``None`` when no send ever touched the dead machine);
    formatting them unconditionally used to raise ``TypeError``.
    """
    if seconds is None:
        return "n/a"
    return f"{seconds * 1e3:.{digits}f}"


@dataclass(slots=True)
class ThroughputReport:
    """Events processed over a time window, with convenience rates."""

    events: int
    seconds: float

    @property
    def events_per_second(self) -> float:
        """Sustained rate; 0 when the window is empty."""
        if self.seconds <= 0:
            return 0.0
        return self.events / self.seconds

    @property
    def events_per_day(self) -> float:
        """Rate scaled to the paper's per-day reporting unit (§5)."""
        return self.events_per_second * 86_400.0


#: The paper's §5 production workload, in events/second, for benchmark
#: targets: "over 100 millions tweets and 1.5 million checkins per day".
PAPER_TWEETS_PER_SECOND = 100_000_000 / 86_400.0   # ≈ 1157 ev/s
PAPER_CHECKINS_PER_SECOND = 1_500_000 / 86_400.0   # ≈ 17.4 ev/s
PAPER_LATENCY_BOUND_S = 2.0


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Render a simple aligned text table (benchmark output helper)."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)
