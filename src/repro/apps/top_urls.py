"""Top-ten URLs on Twitter — the Section 2 application list.

"Other applications include maintaining the top-ten URLs being passed
around on Twitter." Workflow: S1 (tweets) → M1 (extract URLs; key = URL) →
S2 → U1 (per-URL count; republish the running count) → S3 → U2 (a single
``top`` slate holding the current top-N leaderboard).

U2 is a deliberate single-key design: every count update converges on one
slate, which makes this app the canonical *hotspot* workload for bench E4
(and a natural candidate for Example 6's key splitting).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.core.application import Application
from repro.core.event import Event
from repro.core.operators import Context, Mapper, Updater
from repro.core.slate import Slate

#: The single key all leaderboard updates converge on.
LEADERBOARD_KEY = "top"


class UrlMapper(Mapper):
    """M1: emit one event per URL embedded in a tweet, keyed by the URL."""

    def map(self, ctx: Context, event: Event) -> None:
        urls = self._extract(event.value)
        sid = self.config.get("output_sid", "S2")
        for url in urls:
            ctx.publish(sid, key=url, value=None)

    @staticmethod
    def _extract(value: Any) -> List[str]:
        if isinstance(value, str):
            try:
                value = json.loads(value)
            except ValueError:
                return []
        if not isinstance(value, dict):
            return []
        urls = value.get("urls")
        if not isinstance(urls, list):
            return []
        return [str(u) for u in urls]


class UrlCounter(Updater):
    """U1: per-URL running count; republish the count after each hit.

    Config keys:
        publish_every: Emit to S3 only every k-th hit per URL (damps the
            leaderboard hotspot; default 1 = every hit).
    """

    def init_slate(self, key: str) -> Dict[str, Any]:
        return {"count": 0}

    def update(self, ctx: Context, event: Event, slate: Slate) -> None:
        slate["count"] += 1
        every = int(self.config.get("publish_every", 1))
        if slate["count"] % every == 0:
            ctx.publish(self.config.get("output_sid", "S3"),
                        key=LEADERBOARD_KEY,
                        value=json.dumps([event.key, slate["count"]]))


class TopUrls(Updater):
    """U2: one ``top`` slate holding the current top-N URLs.

    Config keys:
        top_n: Leaderboard size (default 10, per the paper).
    """

    def init_slate(self, key: str) -> Dict[str, Any]:
        return {"counts": {}, "top": []}

    def update(self, ctx: Context, event: Event, slate: Slate) -> None:
        url, count = json.loads(event.value)
        counts = slate["counts"]
        counts[url] = max(int(count), counts.get(url, 0))
        top_n = int(self.config.get("top_n", 10))
        ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        slate["top"] = [[u, c] for u, c in ranked[:top_n]]
        # Keep the tracking dict bounded: drop URLs far below the cut.
        if len(counts) > 4 * top_n and ranked:
            cutoff = ranked[min(len(ranked), 2 * top_n) - 1][1]
            slate["counts"] = {u: c for u, c in counts.items()
                               if c >= cutoff}
        else:
            slate["counts"] = counts


def build_top_urls_app(source_sid: str = "S1", top_n: int = 10,
                       publish_every: int = 1) -> Application:
    """Assemble the top-URLs workflow."""
    app = Application("top-urls")
    app.add_stream(source_sid, external=True, description="Twitter stream")
    app.add_stream("S2", description="URL mentions")
    app.add_stream("S3", description="per-URL running counts")
    app.add_mapper("M1", UrlMapper, subscribes=[source_sid],
                   publishes=["S2"])
    app.add_updater("U1", UrlCounter, subscribes=["S2"], publishes=["S3"],
                    config={"publish_every": publish_every})
    app.add_updater("U2", TopUrls, subscribes=["S3"],
                    config={"top_n": top_n})
    return app.validate()
