"""The paper's applications, as reusable library builders.

Each module assembles one of the workflows from Sections 2-5: retailer
checkin counting (Examples 1/4, Figures 1(b), 3, 4), hot-topic detection
(Examples 2/5, Figure 1(c)), user reputation (Example 3), top-ten URLs and
HTTP request counters (Section 2), and hotspot key splitting (Example 6).
"""

from repro.apps.hot_topics import (HotTopicDetector, MinuteCounter,
                                   TopicMapper, build_hot_topics_app,
                                   minute_of_day, topic_minute_key)
from repro.apps.http_counters import (RequestLogMapper, SectionCounter,
                                      build_http_counters_app,
                                      generate_request_events)
from repro.apps.appendix_a import build_appendix_app
from repro.apps.profiles import (ProfileMapper, UserProfileUpdater,
                                 VenueProfileUpdater, build_profiles_app,
                                 estimate_unique_visitors, peak_hour)
from repro.apps.key_splitting import (PartialCounter,
                                      SplittingRetailerMapper, TotalCounter,
                                      base_key, build_split_app, split_key)
from repro.apps.reputation import (ReputationMapper, ReputationUpdater,
                                   build_reputation_app)
from repro.apps.retailer_count import (RETAILER_PATTERNS, CheckinCounter,
                                       RetailerMapper, build_retailer_app,
                                       match_retailer)
from repro.apps.top_urls import (LEADERBOARD_KEY, TopUrls, UrlCounter,
                                 UrlMapper, build_top_urls_app)

__all__ = [
    "CheckinCounter",
    "ProfileMapper",
    "UserProfileUpdater",
    "VenueProfileUpdater",
    "build_appendix_app",
    "build_profiles_app",
    "estimate_unique_visitors",
    "peak_hour",
    "HotTopicDetector",
    "LEADERBOARD_KEY",
    "MinuteCounter",
    "PartialCounter",
    "RETAILER_PATTERNS",
    "RequestLogMapper",
    "ReputationMapper",
    "ReputationUpdater",
    "RetailerMapper",
    "SectionCounter",
    "SplittingRetailerMapper",
    "TopUrls",
    "TopicMapper",
    "TotalCounter",
    "UrlCounter",
    "UrlMapper",
    "base_key",
    "build_hot_topics_app",
    "build_http_counters_app",
    "build_reputation_app",
    "build_retailer_app",
    "build_split_app",
    "build_top_urls_app",
    "generate_request_events",
    "match_retailer",
    "minute_of_day",
    "split_key",
    "topic_minute_key",
]
