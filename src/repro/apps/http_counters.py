"""Live HTTP request counters — the Section 2 application list.

"... maintaining live counters of the number of HTTP requests made to
various parts of a Web site." Workflow: S1 (access-log lines) → M1 (parse
the request path, key by site section) → S2 → U1 (per-section counters:
total plus a coarse per-minute rate).
"""

from __future__ import annotations

import json
import random
from typing import Any, Dict, Iterator, Optional, Sequence

from repro.core.application import Application
from repro.core.event import Event
from repro.core.operators import Context, Mapper, Updater
from repro.core.slate import Slate

#: Default site layout used by the synthetic log generator.
DEFAULT_SECTIONS = ("home", "search", "product", "cart", "checkout",
                    "account", "api", "static")


class RequestLogMapper(Mapper):
    """M1: parse an access-log record; key by the path's first segment."""

    def map(self, ctx: Context, event: Event) -> None:
        path = self._path(event.value)
        if path is None:
            return
        section = path.strip("/").split("/", 1)[0] or "home"
        ctx.publish(self.config.get("output_sid", "S2"), key=section,
                    value=json.dumps({"path": path}))

    @staticmethod
    def _path(value: Any) -> Optional[str]:
        if isinstance(value, str):
            try:
                value = json.loads(value)
            except ValueError:
                return None
        if isinstance(value, dict):
            path = value.get("path")
            return path if isinstance(path, str) else None
        return None


class SectionCounter(Updater):
    """U1: per-section slate with total count and per-minute buckets."""

    def init_slate(self, key: str) -> Dict[str, Any]:
        return {"total": 0, "current_minute": -1, "minute_count": 0,
                "last_minute_count": 0}

    def update(self, ctx: Context, event: Event, slate: Slate) -> None:
        minute = int(event.ts // 60)
        if minute != slate["current_minute"]:
            slate["last_minute_count"] = (
                slate["minute_count"]
                if slate["current_minute"] >= 0 else 0)
            slate["current_minute"] = minute
            slate["minute_count"] = 0
        slate["total"] += 1
        slate["minute_count"] += 1


def build_http_counters_app(source_sid: str = "S1") -> Application:
    """Assemble the HTTP-counters workflow."""
    app = Application("http-request-counters")
    app.add_stream(source_sid, external=True,
                   description="web access-log stream")
    app.add_stream("S2", description="requests keyed by site section")
    app.add_mapper("M1", RequestLogMapper, subscribes=[source_sid],
                   publishes=["S2"])
    app.add_updater("U1", SectionCounter, subscribes=["S2"])
    return app.validate()


def generate_request_events(
    sid: str = "S1",
    rate_per_s: float = 200.0,
    duration_s: float = 10.0,
    sections: Sequence[str] = DEFAULT_SECTIONS,
    seed: int = 0,
) -> Iterator[Event]:
    """Seeded synthetic access-log stream (sections Zipf-ish by order)."""
    rng = random.Random(seed)
    weights = [1.0 / (i + 1) for i in range(len(sections))]
    interval = 1.0 / rate_per_s
    count = int(rate_per_s * duration_s)
    for i in range(count):
        ts = i * interval
        section = rng.choices(list(sections), weights=weights, k=1)[0]
        path = f"/{section}/item{rng.randrange(1000)}"
        yield Event(sid, ts, key=f"req{i}",
                    value=json.dumps({"path": path}))
