"""Hot-topic detection — Examples 2 and 5, Figure 1(c).

Workflow: S1 (tweets) → M1 (infer topics; key ``"topic|minute"``) → S2 →
U1 (count per topic-minute; after the minute closes, publish the count) →
S3 → U2 (compare against the per-day average for that minute-of-day; emit
hot topics) → S4.

Per the paper:

* M1 keys events by the concatenation of topic and minute-of-day ``m``
  ("if the timestamp is 00:14 then m = 14; if the timestamp is 23:59 then
  m = 1439").
* U1 keeps ``count`` per ``topic|minute`` key and publishes
  ``(topic|minute, count)`` to S3 "after a minute (counting from when it
  sees the first event with key v_m)" — realized via a timer.
* U2 keeps ``total_count`` and ``days`` per key, computes
  ``avg_count = total_count / days`` and flags the topic hot when
  ``count / avg_count`` exceeds a threshold.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.core.application import Application
from repro.core.event import Event
from repro.core.operators import Context, Mapper, Updater
from repro.core.slate import Slate
from repro.core.windows import TumblingWindow

SECONDS_PER_MINUTE = 60.0
SECONDS_PER_DAY = 86_400.0
KEY_SEPARATOR = "|"


def minute_of_day(ts: float) -> int:
    """The paper's ``m``: minute within the day, 0..1439."""
    return int((ts % SECONDS_PER_DAY) // SECONDS_PER_MINUTE)


def topic_minute_key(topic: str, ts: float) -> str:
    """The paper's ``v_m`` key: topic and minute concatenated."""
    return f"{topic}{KEY_SEPARATOR}{minute_of_day(ts)}"


def split_key(key: str) -> Tuple[str, int]:
    """Inverse of :func:`topic_minute_key`."""
    topic, _, minute = key.rpartition(KEY_SEPARATOR)
    return topic, int(minute)


class TopicMapper(Mapper):
    """M1: classify each tweet into topics; emit one event per topic.

    Our "classifier" reads the generator's explicit topic annotations
    when present and otherwise scans the text for known topic words —
    standing in for the paper's production classifier.

    Config keys:
        topics: Vocabulary for text scanning (list of strings).
        output_sid: Defaults to ``"S2"``.
    """

    #: Tweet classification is the most expensive per-event step.
    cost_factor = 2.0

    def map(self, ctx: Context, event: Event) -> None:
        topics = self._classify(event.value)
        sid = self.config.get("output_sid", "S2")
        for topic in topics:
            ctx.publish(sid, key=topic_minute_key(topic, event.ts),
                        value=None)

    def _classify(self, value: Any) -> List[str]:
        if isinstance(value, str):
            try:
                value = json.loads(value)
            except ValueError:
                return []
        if not isinstance(value, dict):
            return []
        annotated = value.get("topics")
        if isinstance(annotated, list) and annotated:
            return [str(t) for t in annotated]
        text = str(value.get("text", "")).lower()
        vocabulary = self.config.get("topics", [])
        return [t for t in vocabulary if t in text]


class MinuteCounter(Updater):
    """U1: count tweets per ``topic|minute``; publish when the minute ends.

    "When U1 first encounters an event with key v_m, it creates a slate
    for this key, and sets count = 0 ... After a minute (counting from
    when it sees the first event with key v_m), U1 publishes an event
    (key = v_m, value = count) to a new stream S3."

    Config keys:
        window_s: Window length (default 60 s).
        output_sid: Defaults to ``"S3"``.
    """

    def __init__(self, config: Optional[Dict[str, Any]] = None,
                 name: str = "") -> None:
        super().__init__(config, name)
        self._window = TumblingWindow(
            "minute", float(self.config.get("window_s",
                                            SECONDS_PER_MINUTE)))

    def init_slate(self, key: str) -> Dict[str, Any]:
        return self._window.init({"count": 0})

    def update(self, ctx: Context, event: Event, slate: Slate) -> None:
        self._window.observe(ctx, event.ts, slate)
        slate["count"] += 1

    def on_timer(self, ctx: Context, key: str, slate: Slate,
                 payload: Any = None) -> None:
        ctx.publish(self.config.get("output_sid", "S3"), key=key,
                    value=slate["count"])
        # Close the window; the next day's events on this key reopen it.
        slate["count"] = 0
        self._window.close(slate)


class HotTopicDetector(Updater):
    """U2: flag ``topic|minute`` pairs whose count beats the daily average.

    "When U2 sees an event (v_m, count), it computes
    count / avg_count_{v_m}. If this ratio exceeds a certain threshold
    then U2 publishes an event with key v_m to a new stream S4." The slate
    holds the two summaries the paper lists: ``total_count`` and ``days``.

    Config keys:
        threshold: Hotness ratio (default 3.0).
        output_sid: Defaults to ``"S4"``.
    """

    def init_slate(self, key: str) -> Dict[str, Any]:
        return {"total_count": 0, "days": 0}

    def update(self, ctx: Context, event: Event, slate: Slate) -> None:
        count = int(event.value or 0)
        threshold = float(self.config.get("threshold", 3.0))
        if slate["days"] > 0:
            avg_count = slate["total_count"] / slate["days"]
            if avg_count > 0 and count / avg_count > threshold:
                ctx.publish(self.config.get("output_sid", "S4"),
                            key=event.key, value=count)
        slate["total_count"] += count
        slate["days"] += 1


class HotTopicSink(Updater):
    """Optional S4 collector: one slate listing every hot (topic, minute).

    Not part of the paper's workflow (its output *is* stream S4); tests
    and examples use this sink to observe S4 without engine plumbing.
    """

    def init_slate(self, key: str) -> Dict[str, Any]:
        return {"alerts": []}

    def update(self, ctx: Context, event: Event, slate: Slate) -> None:
        alert = event.value
        if isinstance(alert, str):
            try:
                alert = json.loads(alert)
            except ValueError:
                pass
        alerts = slate["alerts"]
        alerts.append(alert)
        slate["alerts"] = alerts


def build_hot_topics_app(
    source_sid: str = "S1",
    topics: Optional[List[str]] = None,
    window_s: float = SECONDS_PER_MINUTE,
    threshold: float = 3.0,
    with_sink: bool = True,
) -> Application:
    """Assemble the Figure 1(c) workflow (optionally plus a test sink).

    Args:
        source_sid: External tweet stream.
        topics: Topic vocabulary for the mapper's text fallback.
        window_s: U1's counting window (60 s in the paper; tests shrink
            it).
        threshold: U2's hotness ratio.
        with_sink: Add the ``SINK`` updater collecting S4 alerts under
            the single key ``"alerts"``.
    """
    app = Application("hot-topics")
    app.add_stream(source_sid, external=True, description="Twitter stream")
    app.add_stream("S2", description="topic|minute mentions")
    app.add_stream("S3", description="per-minute topic counts")
    app.add_stream("S4", description="hot (topic, minute) alerts")
    app.add_mapper("M1", TopicMapper, subscribes=[source_sid],
                   publishes=["S2"], config={"topics": topics or []})
    app.add_updater("U1", MinuteCounter, subscribes=["S2"],
                    publishes=["S3"], config={"window_s": window_s})
    app.add_updater("U2", HotTopicDetector, subscribes=["S3"],
                    publishes=["S4"], config={"threshold": threshold})
    if with_sink:
        app.add_stream("S5", description="(unused; sink observes S4)")
        app.add_mapper("MALERT", _AlertRekeyMapper, subscribes=["S4"],
                       publishes=["S5"])
        app.add_updater("SINK", HotTopicSink, subscribes=["S5"])
    app.mark_output("S4")
    return app.validate()


class _AlertRekeyMapper(Mapper):
    """Rekeys S4 alerts onto the single key ``"alerts"`` for the sink."""

    def map(self, ctx: Context, event: Event) -> None:
        ctx.publish("S5", key="alerts",
                    value=json.dumps([event.key, event.value]))
