"""User and venue profile slates — the Section 5 production state.

"It kept over 30 millions slates of user profiles and 4 million slates of
venue profiles." Those were two updaters over the same checkin stream:
one keyed by user, one keyed by venue. This module is that application:

* :class:`UserProfileUpdater` — per-user slate with checkin count, last
  activity time, and the set of venue categories the user frequents
  (bounded, like the "set of user interests ... inferred from the tweets
  seen so far" the paper describes as slate content);
* :class:`VenueProfileUpdater` — per-venue slate with checkin count,
  an approximate distinct-visitor count (a small hash sketch — exact
  sets would violate the keep-slates-small rule at production scale),
  and peak hour-of-day.

The per-updater TTL knob demonstrates the §4.2 active-working-set story:
give the user updater a TTL ("only active Twitter users") and the user
slate population tracks recent activity instead of all history.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.cluster.hashring import stable_hash64
from repro.core.application import Application
from repro.core.event import Event
from repro.core.operators import Context, Mapper, Updater
from repro.core.slate import Slate

#: Sketch registers for the approximate distinct-visitor count. 64
#: single-byte registers keep the slate tiny (§5's size advice).
_SKETCH_REGISTERS = 64
#: Maximum venue-name interests kept per user slate.
_MAX_INTERESTS = 16


class ProfileMapper(Mapper):
    """M1: fan each checkin out under both its user and its venue key.

    Emits to two streams: ``BY_USER`` (key = user) and ``BY_VENUE``
    (key = venue name), each carrying the original checkin payload.
    """

    def map(self, ctx: Context, event: Event) -> None:
        record = self._parse(event.value)
        if record is None:
            return
        user = record.get("user")
        venue = record.get("venue", {})
        venue_name = venue.get("name") if isinstance(venue, dict) else None
        if isinstance(user, str):
            ctx.publish(self.config.get("user_sid", "BY_USER"),
                        key=user, value=event.value)
        if isinstance(venue_name, str):
            ctx.publish(self.config.get("venue_sid", "BY_VENUE"),
                        key=venue_name, value=event.value)

    @staticmethod
    def _parse(value: Any) -> Optional[Dict[str, Any]]:
        if isinstance(value, dict):
            return value
        if isinstance(value, str):
            try:
                parsed = json.loads(value)
            except ValueError:
                return None
            return parsed if isinstance(parsed, dict) else None
        return None


class UserProfileUpdater(Updater):
    """U_user: one profile slate per user.

    Fields: ``checkins``, ``last_seen_ts``, ``interests`` (recent venue
    names, bounded), ``first_seen_ts``.
    """

    def init_slate(self, key: str) -> Dict[str, Any]:
        return {"checkins": 0, "last_seen_ts": 0.0, "first_seen_ts": -1.0,
                "interests": []}

    def update(self, ctx: Context, event: Event, slate: Slate) -> None:
        record = json.loads(event.value)
        slate["checkins"] += 1
        slate["last_seen_ts"] = event.ts
        if slate["first_seen_ts"] < 0:
            slate["first_seen_ts"] = event.ts
        venue = record.get("venue", {})
        name = venue.get("name") if isinstance(venue, dict) else None
        if isinstance(name, str):
            interests: List[str] = slate["interests"]
            if name in interests:
                interests.remove(name)
            interests.append(name)                 # most recent last
            slate["interests"] = interests[-_MAX_INTERESTS:]


class VenueProfileUpdater(Updater):
    """U_venue: one profile slate per venue.

    ``unique_visitors_estimate`` uses a tiny stochastic-averaging sketch:
    each user hashes to one of 64 registers which remembers the maximum
    number of leading zero bits seen — a miniature HyperLogLog, accurate
    to roughly ±15% while costing 64 small ints per slate.
    """

    def init_slate(self, key: str) -> Dict[str, Any]:
        return {"checkins": 0, "sketch": [0] * _SKETCH_REGISTERS,
                "hour_histogram": [0] * 24}

    def update(self, ctx: Context, event: Event, slate: Slate) -> None:
        record = json.loads(event.value)
        slate["checkins"] += 1
        user = str(record.get("user", ""))
        digest = stable_hash64(user)
        register = digest % _SKETCH_REGISTERS
        remainder = digest // _SKETCH_REGISTERS
        rank = 1
        while remainder % 2 == 0 and rank < 50:
            rank += 1
            remainder //= 2
        sketch = slate["sketch"]
        if rank > sketch[register]:
            sketch[register] = rank
            slate["sketch"] = sketch
        hour = int((event.ts % 86_400) // 3600)
        histogram = slate["hour_histogram"]
        histogram[hour] += 1
        slate["hour_histogram"] = histogram


def estimate_unique_visitors(slate_fields: Dict[str, Any]) -> float:
    """Approximate distinct visitors from a venue slate's sketch.

    Standard HyperLogLog estimation over the max-rank registers, with
    the linear-counting correction for small cardinalities.
    """
    import math

    sketch = slate_fields.get("sketch")
    if not sketch:
        return 0.0
    m = len(sketch)
    alpha = 0.7213 / (1.0 + 1.079 / m)  # ≈ 0.709 for m = 64
    harmonic = sum(2.0 ** (-register) for register in sketch)
    estimate = alpha * m * m / harmonic
    zeros = sketch.count(0)
    if estimate <= 2.5 * m and zeros > 0:
        return m * math.log(m / zeros)
    return estimate


def peak_hour(slate_fields: Dict[str, Any]) -> int:
    """The venue's busiest hour of day (0-23)."""
    histogram = slate_fields.get("hour_histogram") or [0]
    return max(range(len(histogram)), key=lambda h: histogram[h])


def build_profiles_app(
    source_sid: str = "S1",
    user_ttl: Optional[float] = None,
    venue_ttl: Optional[float] = None,
) -> Application:
    """Assemble the dual-profile workflow over one checkin stream.

    Args:
        source_sid: External checkin stream.
        user_ttl: Optional TTL for user slates ("only active users",
            §4.2); venues usually live forever (``venue_ttl=None``).
        venue_ttl: Optional TTL for venue slates.
    """
    app = Application("profiles")
    app.add_stream(source_sid, external=True,
                   description="Foursquare checkin stream")
    app.add_stream("BY_USER", description="checkins keyed by user")
    app.add_stream("BY_VENUE", description="checkins keyed by venue")
    app.add_mapper("M1", ProfileMapper, subscribes=[source_sid],
                   publishes=["BY_USER", "BY_VENUE"])
    user_config = ({"slate_ttl": user_ttl} if user_ttl is not None else {})
    venue_config = ({"slate_ttl": venue_ttl}
                    if venue_ttl is not None else {})
    app.add_updater("U_user", UserProfileUpdater, subscribes=["BY_USER"],
                    config=user_config)
    app.add_updater("U_venue", VenueProfileUpdater,
                    subscribes=["BY_VENUE"], config=venue_config)
    return app.validate()
