"""Key splitting for hotspot updaters — Example 6.

"Instead of using just a single updater U, we can use a set of updaters,
each of which counts just a subset of Best Buy events ... we can modify
the map function to replace the single key 'Best Buy' with two keys 'Best
Buy1' and 'Best Buy2' ... we modify the update function so that it
regularly emits the counts of 'Best Buy1' events and 'Best Buy2' events,
respectively, as new events under the key 'Best Buy'. Finally, we write a
new update function that receives the events of key 'Best Buy' to
determine the total counts."

This works because counting is associative and commutative. The invariant
(asserted by tests): the merged totals equal the unsplit totals, for any
split factor and any emit cadence.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Sequence

from repro.core.application import Application
from repro.core.event import Event
from repro.core.operators import Context, Mapper, Updater
from repro.core.slate import Slate
from repro.apps.retailer_count import RetailerMapper

SPLIT_SEPARATOR = "#"


def split_key(base_key: str, index: int) -> str:
    """The i-th sub-key of a hot key (``"Best Buy#1"``)."""
    return f"{base_key}{SPLIT_SEPARATOR}{index}"


def base_key(key: str) -> str:
    """Recover the original key from a split sub-key (idempotent)."""
    base, sep, suffix = key.rpartition(SPLIT_SEPARATOR)
    if sep and suffix.isdigit():
        return base
    return key


class SplittingRetailerMapper(RetailerMapper):
    """M1′: like :class:`RetailerMapper`, but hot keys fan out to
    ``num_splits`` sub-keys (round-robin, deterministic).

    Config keys:
        hot_keys: Retailer names to split (e.g. ``["Best Buy"]``).
        num_splits: Sub-keys per hot key (the paper's example uses 2).
        output_sid: Defaults to ``"S2"``.
    """

    def __init__(self, config: Optional[Dict[str, Any]] = None,
                 name: str = "") -> None:
        super().__init__(config, name)
        self._hot = set(self.config.get("hot_keys", []))
        self._num_splits = max(1, int(self.config.get("num_splits", 2)))
        self._round_robin: Dict[str, int] = {}

    def map(self, ctx: Context, event: Event) -> None:
        venue = self._venue_name(event.value)
        if venue is None:
            return
        retailer = self._match(venue)
        if retailer is None:
            return
        key = retailer
        if retailer in self._hot:
            index = self._round_robin.get(retailer, 0)
            self._round_robin[retailer] = (index + 1) % self._num_splits
            key = split_key(retailer, index)
        ctx.publish(self.config.get("output_sid", "S2"), key=key,
                    value=event.value)

    @staticmethod
    def _match(venue: str) -> Optional[str]:
        from repro.apps.retailer_count import match_retailer

        return match_retailer(venue)


class PartialCounter(Updater):
    """U1′: counts one sub-key; regularly emits the *delta* under the
    original key.

    A flush timer guarantees the tail is reported: the first unreported
    event arms a timer ``flush_interval_s`` ahead; when it fires, any
    remaining delta is emitted. End-of-stream drains therefore merge
    *exactly* the ingested total (the Example 6 invariant).

    Config keys:
        emit_every: Publish the accumulated delta every N events
            (default 10). Smaller = fresher merged totals, more traffic.
        flush_interval_s: Tail-flush timer delay (default 1.0 s).
        output_sid: Defaults to ``"S3"``.
    """

    def init_slate(self, key: str) -> Dict[str, Any]:
        return {"count": 0, "unreported": 0, "flush_armed": False}

    def update(self, ctx: Context, event: Event, slate: Slate) -> None:
        slate["count"] += 1
        slate["unreported"] += 1
        emit_every = max(1, int(self.config.get("emit_every", 10)))
        if slate["unreported"] >= emit_every:
            self._emit(ctx, event.key, slate)
        elif not slate["flush_armed"]:
            slate["flush_armed"] = True
            interval = float(self.config.get("flush_interval_s", 1.0))
            ctx.set_timer(event.ts + interval)

    def on_timer(self, ctx: Context, key: str, slate: Slate,
                 payload: Any = None) -> None:
        slate["flush_armed"] = False
        if slate["unreported"] > 0:
            self._emit(ctx, key, slate)

    def _emit(self, ctx: Context, key: str, slate: Slate) -> None:
        ctx.publish(self.config.get("output_sid", "S3"),
                    key=base_key(key),
                    value=json.dumps({"delta": slate["unreported"],
                                      "from": key}))
        slate["unreported"] = 0


class TotalCounter(Updater):
    """U2′: sums the partial deltas back into one total per retailer."""

    def init_slate(self, key: str) -> Dict[str, Any]:
        return {"count": 0}

    def update(self, ctx: Context, event: Event, slate: Slate) -> None:
        record = json.loads(event.value)
        slate["count"] += int(record["delta"])


def build_split_app(
    hot_keys: Sequence[str] = ("Best Buy",),
    num_splits: int = 2,
    emit_every: int = 10,
    source_sid: str = "S1",
) -> Application:
    """Assemble the Example 6 workflow (split → partial → merge)."""
    app = Application("retailer-counts-split")
    app.add_stream(source_sid, external=True,
                   description="Foursquare checkin stream")
    app.add_stream("S2", description="retailer events (hot keys split)")
    app.add_stream("S3", description="partial-count deltas")
    app.add_mapper("M1", SplittingRetailerMapper, subscribes=[source_sid],
                   publishes=["S2"],
                   config={"hot_keys": list(hot_keys),
                           "num_splits": num_splits})
    app.add_updater("U1", PartialCounter, subscribes=["S2"],
                    publishes=["S3"], config={"emit_every": emit_every})
    app.add_updater("U2", TotalCounter, subscribes=["S3"])
    return app.validate()
