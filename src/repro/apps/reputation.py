"""Twitter user reputation — Example 3.

"The third application maintains a reputation score for each Twitter user
as users tweet. It analyzes each incoming tweet to determine if the tweet
affects the score of any users, then changes those scores ... if a user A
retweets or replies to a user B, then the score of B may change, depending
on the score of A. The output is a real-time data structure of
<user, score> pairs."

The interesting constraint is that B's score change *depends on A's
score*, but slates are strictly per-key: the updater for B cannot read A's
slate. The MapUpdate-idiomatic solution (and the one we implement) is a
two-hop flow through the updater itself:

* M1 turns each tweet into an *activity* event keyed by the author A
  (carrying who A referenced).
* U1 on an activity event updates A's own score and — if A referenced B —
  **publishes an endorsement event keyed by B carrying A's current
  score** onto S3.
* U1 also subscribes to S3: on an endorsement it adjusts B's score using
  the attached ``from_score``.

U1 therefore subscribes to two streams and publishes into one of them — a
cycle through the workflow graph, which Section 3 explicitly allows (and
which the output-timestamp rule keeps well-defined).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.core.application import Application
from repro.core.event import Event
from repro.core.operators import Context, Mapper, Updater
from repro.core.slate import Slate

#: Score increment for simply tweeting.
ACTIVITY_BOOST = 0.05
#: Fraction of the endorser's score transferred by a retweet.
RETWEET_WEIGHT = 0.10
#: Fraction transferred by a reply.
REPLY_WEIGHT = 0.04
#: Starting score for a fresh user.
INITIAL_SCORE = 1.0


class ReputationMapper(Mapper):
    """M1: tweet → activity event keyed by the author.

    The value records whether the tweet endorses another user (retweet or
    reply) and whom.
    """

    cost_factor = 1.2

    def map(self, ctx: Context, event: Event) -> None:
        tweet = self._parse(event.value)
        if tweet is None:
            return
        author = str(tweet.get("user", event.key))
        activity: Dict[str, Any] = {"type": "activity"}
        if "retweet_of" in tweet:
            activity["endorses"] = str(tweet["retweet_of"])
            activity["kind"] = "retweet"
        elif "reply_to" in tweet:
            activity["endorses"] = str(tweet["reply_to"])
            activity["kind"] = "reply"
        ctx.publish(self.config.get("output_sid", "S2"), key=author,
                    value=json.dumps(activity))

    @staticmethod
    def _parse(value: Any) -> Optional[Dict[str, Any]]:
        if isinstance(value, dict):
            return value
        if isinstance(value, str):
            try:
                parsed = json.loads(value)
            except ValueError:
                return None
            return parsed if isinstance(parsed, dict) else None
        return None


class ReputationUpdater(Updater):
    """U1: per-user score slate; activity and endorsement handling.

    Slate fields: ``score`` (the reputation), ``tweets`` (activity
    count), ``endorsements_received``.
    """

    def init_slate(self, key: str) -> Dict[str, Any]:
        return {"score": INITIAL_SCORE, "tweets": 0,
                "endorsements_received": 0}

    def update(self, ctx: Context, event: Event, slate: Slate) -> None:
        record = json.loads(event.value) if isinstance(event.value, str) \
            else dict(event.value or {})
        kind = record.get("type")
        if kind == "activity":
            slate["score"] = slate["score"] + ACTIVITY_BOOST
            slate["tweets"] += 1
            endorsee = record.get("endorses")
            if endorsee and endorsee != event.key:
                weight = (RETWEET_WEIGHT if record.get("kind") == "retweet"
                          else REPLY_WEIGHT)
                ctx.publish(self.config.get("endorse_sid", "S3"),
                            key=str(endorsee),
                            value=json.dumps({
                                "type": "endorsement",
                                "from": event.key,
                                "from_score": slate["score"],
                                "weight": weight,
                            }))
        elif kind == "endorsement":
            transferred = (float(record.get("from_score", 0.0))
                           * float(record.get("weight", 0.0)))
            slate["score"] = slate["score"] + transferred
            slate["endorsements_received"] += 1


def build_reputation_app(source_sid: str = "S1") -> Application:
    """Assemble the reputation workflow (with its S3 self-loop)."""
    app = Application("user-reputation")
    app.add_stream(source_sid, external=True, description="Twitter stream")
    app.add_stream("S2", description="author activity events")
    app.add_stream("S3", description="endorsement events (self-loop)")
    app.add_mapper("M1", ReputationMapper, subscribes=[source_sid],
                   publishes=["S2"])
    app.add_updater("U1", ReputationUpdater, subscribes=["S2", "S3"],
                    publishes=["S3"])
    return app.validate()
