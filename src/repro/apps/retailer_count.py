"""Retailer checkin counting — Examples 1 and 4, Figures 1(b), 3, and 4.

The application "monitors the Foursquare-checkin stream to count the number
of checkins by retailer". Workflow (Figure 1(b)): external stream S1 →
map M1 (identify retailer) → stream S2 → update U1 (count per retailer).
The output is the set of slates maintained by U1.

:class:`RetailerMapper` is the Python rendering of Figure 3's Java code —
including the paper's exact regexes for Walmart and Sam's Club — extended
with the other retailers the examples name. :class:`CheckinCounter` mirrors
Figure 4's ``Counter`` updater.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, Optional, Pattern, Sequence, Tuple

from repro.core.application import Application
from repro.core.event import Event
from repro.core.operators import Context, Mapper, Updater
from repro.core.slate import Slate

#: (canonical name, venue-name pattern). The first two patterns are
#: verbatim from Figure 3.
RETAILER_PATTERNS: Sequence[Tuple[str, Pattern[str]]] = (
    ("Walmart", re.compile(r"(?i)\s*wal.?mart(?!.*sam).*")),
    ("Sam's Club", re.compile(r"(?i)\s*sam.?s\s*club\s*.*")),
    ("Best Buy", re.compile(r"(?i)\s*best\s*buy.*")),
    ("JCPenney", re.compile(r"(?i)\s*j\.?\s*c\.?\s*penney.*")),
    ("Target", re.compile(r"(?i)\s*(super)?target\b.*")),
)


def match_retailer(venue_name: str) -> Optional[str]:
    """Canonical retailer for a venue name, or None if unrecognized."""
    for name, pattern in RETAILER_PATTERNS:
        if pattern.match(venue_name):
            return name
    return None


class RetailerMapper(Mapper):
    """M1: inspect each checkin; emit the retailer (if any) to S2.

    Figure 3's ``RetailerMapper``: parse the checkin JSON, extract the
    venue name, match it against retailer patterns, and
    ``submitter.publish("S_2", retailer, event)`` on a hit.

    Config keys:
        output_sid: Stream to publish hits to (default ``"S2"``).
    """

    #: Checkin parsing + several regex matches — noticeably more work
    #: than a trivial map (simulator service-time hint).
    cost_factor = 1.5

    def map(self, ctx: Context, event: Event) -> None:
        venue = self._venue_name(event.value)
        if venue is None:
            return
        retailer = match_retailer(venue)
        if retailer is not None:
            ctx.publish(self.config.get("output_sid", "S2"),
                        key=retailer, value=event.value)

    @staticmethod
    def _venue_name(value: Any) -> Optional[str]:
        """Extract the venue name from a checkin payload (JSON or dict)."""
        if isinstance(value, str):
            try:
                value = json.loads(value)
            except ValueError:
                return None
        if not isinstance(value, dict):
            return None
        venue = value.get("venue")
        if isinstance(venue, dict):
            name = venue.get("name")
            return name if isinstance(name, str) else None
        return None


class CheckinCounter(Updater):
    """U1: one slate per retailer with a single ``count`` field.

    Figure 4's ``Counter``: read the current count from the slate (0 when
    the slate is fresh), increment, write back. "For each retailer U1
    maintains a slate with a count variable initially set to 0."
    """

    def init_slate(self, key: str) -> Dict[str, Any]:
        return {"count": 0}

    def update(self, ctx: Context, event: Event, slate: Slate) -> None:
        slate["count"] += 1


def build_retailer_app(
    source_sid: str = "S1",
    mapper_name: str = "M1",
    updater_name: str = "U1",
    slate_ttl: Optional[float] = None,
) -> Application:
    """Assemble the Figure 1(b) workflow.

    Args:
        source_sid: The external checkin stream.
        mapper_name / updater_name: Function names (the paper names its
            functions; names matter because slates are addressed by them).
        slate_ttl: Optional TTL for the count slates (Section 4.2).

    Returns:
        A validated application whose output is U1's slates.
    """
    app = Application("retailer-checkin-counts")
    app.add_stream(source_sid, external=True,
                   description="Foursquare checkin stream")
    app.add_stream("S2", description="recognized-retailer checkins")
    app.add_mapper(mapper_name, RetailerMapper, subscribes=[source_sid],
                   publishes=["S2"])
    config = {"slate_ttl": slate_ttl} if slate_ttl is not None else {}
    app.add_updater(updater_name, CheckinCounter, subscribes=["S2"],
                    config=config)
    return app.validate()
