"""Figures 3 and 4, ported line for line onto the byte-level API.

The paper's appendix shows ``RetailerMapper`` (Figure 3) and ``Counter``
(Figure 4) in Java. This module is the closest Python rendering: the
same regexes (including the curly apostrophe in ``Sam’s Club``), the
same publish-the-original-event behaviour, the same parse-int-from-slate
counter with its ``NumberFormatException`` fallback.
"""

from __future__ import annotations

import json
import re
from typing import Optional

from repro.core.application import Application
from repro.core.binary import (BinaryMapper, BinaryUpdater,
                               PerformerUtilities)

#: Figure 3's patterns, verbatim: ``(?i)\s*wal.*mart.*`` and
#: ``(?i)\s*sam.*s\s*club\s*``.
WALMART_PATTERN = re.compile(r"(?i)\s*wal.*mart.*")
SAMSCLUB_PATTERN = re.compile(r"(?i)\s*sam.*s\s*club\s*")


class RetailerMapper(BinaryMapper):
    """Figure 3: match the venue name; publish to ``S_2`` on a hit.

    The Java original stubs ``getVenue`` ("actual checkin parsing would
    go here"); we parse the checkin JSON for real, which is the only
    functional difference.
    """

    def map_bytes(self, submitter: PerformerUtilities, stream: str,
                  key: bytes, event: bytes) -> None:
        checkin = event.decode("utf-8", errors="replace")
        venue = self._get_venue(checkin)
        retailer: Optional[str] = None
        if WALMART_PATTERN.match(venue):
            retailer = "Walmart"
        elif SAMSCLUB_PATTERN.match(venue):
            retailer = "Sam's Club"
        if retailer is not None:
            submitter.publish("S_2", retailer.encode("utf-8"), event)

    @staticmethod
    def _get_venue(checkin: str) -> str:
        """Figure 3's ``getVenue`` — real parsing instead of the stub."""
        try:
            record = json.loads(checkin)
        except ValueError:
            return ""
        venue = record.get("venue")
        if isinstance(venue, dict) and isinstance(venue.get("name"), str):
            return venue["name"]
        return ""


class Counter(BinaryUpdater):
    """Figure 4: parse the count from the slate bytes, increment,
    ``replaceSlate`` — including the catch-NumberFormatException
    fallback to zero."""

    def update_bytes(self, submitter: PerformerUtilities, stream: str,
                     key: bytes, event: bytes,
                     slate: Optional[bytes]) -> None:
        count = 0
        try:
            if slate is not None:
                count = int(slate.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            count = 0
        count += 1
        submitter.replaceSlate(str(count).encode("utf-8"))


def build_appendix_app(source_sid: str = "S1") -> Application:
    """The Figure 1(b) workflow wired from the Appendix A classes.

    Note the appendix publishes to stream ``"S_2"`` (with an
    underscore), so that is the internal stream name here.
    """
    app = Application("appendix-a")
    app.add_stream(source_sid, external=True,
                   description="Foursquare checkin stream")
    app.add_stream("S_2", description="retailer checkins (Appendix A)")
    app.add_mapper("M1", RetailerMapper, subscribes=[source_sid],
                   publishes=["S_2"])
    app.add_updater("U1", Counter, subscribes=["S_2"])
    return app.validate()
