"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``validate`` — load an application config file, print the workflow.
* ``generate`` — write a synthetic tweet/checkin trace file.
* ``run`` — run an application over a trace on the local thread
  runtime; print counters and (optionally) dump an updater's slates.
* ``simulate`` — run an application over a trace on the simulated
  cluster; print the performance report as JSON.
* ``campaign`` — declarative parameter sweeps with committed artifacts
  (``run``/``render``/``check``/``list``; see ``repro.campaign``).

Examples::

    python -m repro generate --kind checkins --rate 500 --duration 10 \\
        --out /tmp/checkins.jsonl
    python -m repro run --app examples/configs/retailer.json \\
        --trace /tmp/checkins.jsonl --dump U1
    python -m repro simulate --app examples/configs/retailer.json \\
        --trace /tmp/checkins.jsonl --machines 8 --engine muppet2
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.core.configfile import load_application
from repro.errors import ReproError


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Muppet/MapUpdate reproduction command line")
    sub = parser.add_subparsers(dest="command", required=True)

    validate = sub.add_parser("validate",
                              help="check an application config file")
    validate.add_argument("--app", required=True,
                          help="application config (JSON)")

    generate = sub.add_parser("generate",
                              help="write a synthetic event trace")
    generate.add_argument("--kind", choices=["tweets", "checkins"],
                          required=True)
    generate.add_argument("--rate", type=float, default=100.0,
                          help="events per second")
    generate.add_argument("--duration", type=float, default=10.0,
                          help="trace length in seconds")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--sid", default="S1",
                          help="stream id for the events")
    generate.add_argument("--out", required=True, help="output JSONL path")

    run = sub.add_parser("run", help="run on the local thread runtime")
    run.add_argument("--app", required=True)
    run.add_argument("--trace", required=True)
    run.add_argument("--threads", type=int, default=4,
                     help="thread-pool size (muppet2) or workers per "
                          "function (muppet1)")
    run.add_argument("--engine", choices=["muppet1", "muppet2"],
                     default="muppet2",
                     help="muppet2 = thread pool + central cache; "
                          "muppet1 = worker-per-function + conductor "
                          "pipes")
    run.add_argument("--dump", metavar="UPDATER",
                     help="print this updater's slates as JSON")

    simulate = sub.add_parser("simulate",
                              help="run on the simulated cluster")
    simulate.add_argument("--app", required=True)
    simulate.add_argument("--trace", required=True)
    simulate.add_argument("--machines", type=int, default=4)
    simulate.add_argument("--cores", type=int, default=4)
    simulate.add_argument("--engine", choices=["muppet1", "muppet2"],
                          default="muppet2")
    simulate.add_argument("--delivery",
                          choices=["at-most-once", "at-least-once",
                                   "effectively-once"],
                          default="at-most-once",
                          help="delivery semantics (default: the paper's "
                               "at-most-once)")
    simulate.add_argument("--replay-horizon", type=float, default=None,
                          metavar="SECONDS",
                          help="at-least-once replay horizon (implies "
                               "--delivery at-least-once)")
    simulate.add_argument("--checkpoint-epoch", type=float, default=1.0,
                          metavar="SECONDS",
                          help="effectively-once checkpoint barrier "
                               "period (default: 1.0)")
    simulate.add_argument("--duration", type=float, default=None,
                          help="simulated seconds (default: trace span "
                               "+ 10)")
    simulate.add_argument("--trace-out", metavar="PATH", default=None,
                          help="write a JSONL span trace of the run "
                               "(source/dispatch/execute/slate/kv spans "
                               "with (origin, oseq) provenance)")
    simulate.add_argument("--metrics-out", metavar="PATH", default=None,
                          help="write the full metrics-registry snapshot "
                               "as JSON")
    simulate.add_argument("--timeline", action="store_true",
                          help="sample per-machine/per-updater "
                               "timeseries and include them in the "
                               "report JSON")

    analyze = sub.add_parser(
        "analyze",
        help="static lint, race detection, trace invariant checking")
    tool = analyze.add_subparsers(dest="tool", required=True)

    lint = tool.add_parser("lint",
                           help="run the MUP### determinism/concurrency "
                                "rules over source paths")
    lint.add_argument("paths", nargs="*", default=["src/repro"],
                      help="files or directories (default: src/repro)")
    lint.add_argument("--select", metavar="CODES", default=None,
                      help="comma-separated rule codes to run "
                           "(e.g. MUP001,MUP003)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule table and exit")

    races = tool.add_parser("races",
                            help="lockset race + lock-order-cycle "
                                 "detection over an instrumented "
                                 "LocalMuppet smoke run")
    races.add_argument("--events", type=int, default=2000,
                       help="events to ingest (default: 2000)")
    races.add_argument("--threads", type=int, default=4,
                       help="worker threads (default: 4)")
    races.add_argument("--keys", type=int, default=16,
                       help="distinct keys (default: 16)")

    invariants = tool.add_parser(
        "invariants",
        help="replay a span trace and check FIFO/watermark/two-choice/"
             "ring-ownership (and, opt-in, shed-accounting) invariants")
    source = invariants.add_mutually_exclusive_group(required=True)
    source.add_argument("--trace", metavar="PATH",
                        help="JSONL span trace to check")
    source.add_argument("--e6d", action="store_true",
                        help="run the traced E6d chaos scenario and "
                             "check its trace")
    source.add_argument("--e22", action="store_true",
                        help="run the traced E22 overload scenario "
                             "(adaptive thinning at 5x) and check its "
                             "trace, including shed accounting")
    source.add_argument("--e24", action="store_true",
                        help="run the traced E24 live-migration "
                             "scenario (retire m001 through the "
                             "incremental handoff) and check its "
                             "trace, including the migration "
                             "invariant")
    invariants.add_argument("--checks", metavar="NAMES", default=None,
                            help="comma-separated subset (fifo, "
                                 "watermarks, two_choice, "
                                 "ring_ownership, shed_accounting, "
                                 "migration); default: all structural "
                                 "checks, plus shed_accounting for "
                                 "--e22 and migration for --e24 "
                                 "traces")
    invariants.add_argument("--overload", type=float, default=5.0,
                            help="E22 overload multiple (default: 5.0)")

    from repro.analysis.mc.cli import add_mc_parser

    add_mc_parser(tool)

    from repro.campaign.cli import add_campaign_parser

    add_campaign_parser(sub)
    return parser


def _cmd_validate(args: argparse.Namespace) -> int:
    app = load_application(args.app)
    print(f"application {app.name!r}: OK")
    print(f"  streams:   {', '.join(app.streams.sids())}")
    for spec in app.operators():
        arrow = " -> ".join(filter(None, [
            "+".join(spec.subscribes),
            spec.name,
            "+".join(spec.publishes) or None,
        ]))
        print(f"  {spec.kind:6s} {arrow}")
    print(f"  cyclic:    {app.has_cycle()}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.workloads.checkins import CheckinGenerator
    from repro.workloads.traceio import write_events
    from repro.workloads.tweets import TweetGenerator

    if args.kind == "tweets":
        generator = TweetGenerator(sid=args.sid, rate_per_s=args.rate,
                                   seed=args.seed)
    else:
        generator = CheckinGenerator(sid=args.sid, rate_per_s=args.rate,
                                     seed=args.seed)
    count = write_events(args.out, generator.events(args.duration))
    print(f"wrote {count} {args.kind} events to {args.out}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.workloads.traceio import read_events

    app = load_application(args.app)
    if args.engine == "muppet1":
        from repro.muppet.local1 import Local1Config, LocalMuppet1

        factory = LocalMuppet1(
            app, Local1Config(workers_per_function=args.threads))
    else:
        from repro.muppet.local import LocalConfig, LocalMuppet

        factory = LocalMuppet(app,
                              LocalConfig(num_threads=args.threads))
    with factory as runtime:
        accepted = runtime.ingest_many(read_events(args.trace))
        drained = runtime.drain()
        counters = runtime.counters.snapshot()
        dumped = (runtime.read_slates_of(args.dump)
                  if args.dump else None)
    print(f"engine={args.engine}; ingested {accepted} events; "
          f"drained={drained}")
    print(json.dumps(counters, indent=2))
    if runtime.latency.samples:
        summary = runtime.latency.summary()
        print(f"latency: p50={summary.p50 * 1e3:.2f} ms  "
              f"p99={summary.p99 * 1e3:.2f} ms")
    if dumped is not None:
        print(json.dumps({"updater": args.dump, "slates": dumped},
                         indent=2, sort_keys=True))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.cluster import ClusterSpec
    from repro.sim import SimConfig, SimRuntime, from_trace
    from repro.workloads.traceio import read_events

    app = load_application(args.app)
    events = list(read_events(args.trace))
    if not events:
        print("trace is empty", file=sys.stderr)
        return 1
    sids = {event.sid for event in events}
    if len(sids) != 1:
        print(f"trace mixes streams {sorted(sids)}; one sid per trace",
              file=sys.stderr)
        return 1
    duration = args.duration
    if duration is None:
        duration = events[-1].ts + 10.0
    tracer = None
    if args.trace_out is not None:
        from repro.obs import JsonlTracer

        tracer = JsonlTracer(args.trace_out)
    runtime = SimRuntime(
        app, ClusterSpec.uniform(args.machines, cores=args.cores),
        SimConfig(engine=args.engine,
                  delivery_semantics=args.delivery,
                  replay_horizon_s=args.replay_horizon,
                  checkpoint_epoch_s=args.checkpoint_epoch,
                  trace=tracer is not None,
                  timeline=args.timeline),
        [from_trace(events[0].sid, events)],
        tracer=tracer)
    report = runtime.run(duration)
    if tracer is not None:
        tracer.close()
        print(f"wrote {tracer.written} spans to {args.trace_out}",
              file=sys.stderr)
    if args.metrics_out is not None:
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            handle.write(runtime.metrics.to_json())
        print(f"wrote metrics snapshot to {args.metrics_out}",
              file=sys.stderr)
    payload = {
        "engine": report.engine,
        "delivery": runtime.config.delivery_semantics,
        "machines": args.machines,
        "events": {
            "published": report.counters.published,
            "processed": report.counters.processed,
            "lost": report.counters.lost_total(),
        },
        "throughput_events_per_s": round(report.events_per_second(), 1),
        "latency_ms": (None if report.latency is None else {
            "p50": round(report.latency.p50 * 1e3, 3),
            "p95": round(report.latency.p95 * 1e3, 3),
            "p99": round(report.latency.p99 * 1e3, 3),
        }),
        "memory_mb_per_machine": round(report.memory_mb_per_machine, 1),
        "replay": {
            "recorded": report.replay.recorded,
            "replayed": report.replay.replayed,
            "deduped": report.replay.deduped,
            "checkpoint_epochs": report.robustness.checkpoint_epochs,
        },
    }
    if args.timeline:
        payload["timeline"] = report.timeline()
    print(json.dumps(payload, indent=2))
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    if args.tool == "mc":
        from repro.analysis.mc.cli import dispatch

        return dispatch(args)

    if args.tool == "lint":
        from repro.analysis.lint import lint_paths, rule_table

        if args.list_rules:
            for code, name, description in rule_table():
                print(f"{code}  {name}: {description}")
            return 0
        select = (None if args.select is None
                  else [c.strip() for c in args.select.split(",")])
        report = lint_paths(args.paths, select=select)
        for finding in report.findings:
            print(finding.format())
        print(f"{report.files_checked} files, {report.rules_run} rules, "
              f"{len(report.findings)} findings", file=sys.stderr)
        return 1 if report.findings else 0

    if args.tool == "races":
        from repro.analysis.races import race_smoke_run

        monitor = race_smoke_run(events=args.events, threads=args.threads,
                                 keys=args.keys)
        print(monitor.report())
        return 1 if (monitor.races() or monitor.ordering_cycles()) else 0

    from repro.analysis.invariants import check_trace

    checks = (None if args.checks is None
              else [c.strip() for c in args.checks.split(",")])
    if args.e6d:
        from repro.analysis.scenarios import e6d_chaos_trace

        trace: object = e6d_chaos_trace()
        label = "E6d chaos trace"
    elif args.e22:
        from repro.analysis.scenarios import e22_shedding_trace

        trace = e22_shedding_trace(overload=args.overload)
        label = f"E22 overload trace ({args.overload}x)"
        if checks is None:
            # Fault-free and drained, so the opt-in shed-accounting
            # check is sound here on top of the structural four.
            checks = ["fifo", "watermarks", "two_choice",
                      "ring_ownership", "shed_accounting"]
    elif args.e24:
        from repro.analysis.scenarios import e24_migration_trace

        trace = e24_migration_trace()
        label = "E24 live-migration trace"
        if checks is None:
            # The trace contains a full handoff, so the opt-in
            # migration check is meaningful on top of the structural
            # four.
            checks = ["fifo", "watermarks", "two_choice",
                      "ring_ownership", "migration"]
    else:
        trace = args.trace
        label = args.trace
    violations = check_trace(trace, checks=checks)
    for violation in violations:
        print(violation.format())
    print(f"{label}: {len(violations)} violations", file=sys.stderr)
    return 1 if violations else 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.campaign.cli import dispatch

    return dispatch(args)


_COMMANDS = {
    "validate": _cmd_validate,
    "generate": _cmd_generate,
    "run": _cmd_run,
    "simulate": _cmd_simulate,
    "analyze": _cmd_analyze,
    "campaign": _cmd_campaign,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
