"""LocalMuppet: a real-thread, single-machine Muppet 2.0 runtime.

Where :mod:`repro.sim` reproduces cluster-scale behaviour under a virtual
clock, this module is Muppet 2.0 on one actual machine, with actual
threads — "we start up many threads of execution in a dedicated thread
pool per machine. Each thread in this thread pool is now a worker, capable
of running any map or update function" (Section 4.5). It powers the
runnable examples and the wall-clock pytest benchmarks.

Faithful details:

* one shared operator instance per function ("each map and update function
  is constructed only once and shared by all threads");
* one central slate cache/manager, with per-slate locks so that the up to
  two threads the dispatcher may send one key to never corrupt a slate;
* primary/secondary two-choice dispatch with queue locking;
* bounded queues with drop / divert / block-the-source overflow handling;
* a background I/O thread that periodically flushes dirty slates to the
  key-value store;
* timer support for windowed applications (hot topics, Example 5).
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.application import Application
from repro.core.event import Event, EventCounter
from repro.core.operators import Context, Mapper, Operator, TimerRequest, Updater
from repro.core.slate import Slate, SlateKey
from repro.errors import (ConfigurationError, EngineStoppedError, StoreError,
                          WorkflowError)
from repro.kvstore.api import ConsistencyLevel
from repro.kvstore.cluster import ReplicatedKVStore
from repro.metrics import LatencyRecorder
from repro.muppet.dispatch import TwoChoiceDispatcher
from repro.muppet.queues import BoundedQueue, OverflowPolicy
from repro.obs import MetricsRegistry
from repro.shedding.thinning import Thinner, ThinningPolicy
from repro.slates.manager import FlushPolicy, SlateManager


@dataclass
class LocalConfig:
    """Knobs for the local thread runtime."""

    num_threads: int = 4
    queue_capacity: int = 10_000
    overflow: OverflowPolicy = field(default_factory=OverflowPolicy.drop)
    dispatch_factor: float = 2.0
    cache_slates: int = 100_000
    flush_policy: FlushPolicy = field(
        default_factory=lambda: FlushPolicy.every(0.5))
    consistency: ConsistencyLevel = ConsistencyLevel.ONE
    kv_nodes: int = 1
    kv_replication: int = 1
    flusher_period_s: float = 0.1
    record_latency: bool = True
    max_slate_bytes: Optional[int] = None
    #: How long a throttled source sleeps between retries when its
    #: target queue is full (the block-the-source overflow policy).
    throttle_poll_s: float = 0.001
    #: Probabilistic thinning of thinnable updaters under queue
    #: pressure (see :mod:`repro.shedding`); ``None`` disables.
    thinning: Optional[ThinningPolicy] = None
    #: Seed for the thinning RNG.
    thin_seed: int = 0
    #: Thinning engages while the worst queue's depth fraction is at or
    #: above this threshold.
    thin_queue_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.num_threads < 1:
            raise ConfigurationError("num_threads must be >= 1")
        if self.throttle_poll_s <= 0:
            raise ConfigurationError("throttle_poll_s must be positive")
        if not 0.0 < self.thin_queue_fraction <= 1.0:
            raise ConfigurationError(
                "thin_queue_fraction must be in (0, 1], got "
                f"{self.thin_queue_fraction!r}")


class _WorkItem:
    """One queued delivery: an event (or timer) for one function."""

    __slots__ = ("event", "dest_fn", "birth", "is_timer", "timer_payload")

    def __init__(self, event: Event, dest_fn: str, birth: float,
                 is_timer: bool = False, timer_payload: Any = None) -> None:
        self.event = event
        self.dest_fn = dest_fn
        self.birth = birth
        self.is_timer = is_timer
        self.timer_payload = timer_payload


class LocalMuppet:
    """Run one MapUpdate application on local threads.

    Typical use::

        runtime = LocalMuppet(app, LocalConfig(num_threads=4))
        runtime.start()
        for event in events:
            runtime.ingest(event)
        runtime.drain()
        counts = runtime.read_slate("U1", "walmart")
        runtime.stop()

    Or as a context manager (start/stop automatic)::

        with LocalMuppet(app) as runtime:
            ...
    """

    def __init__(self, app: Application,
                 config: Optional[LocalConfig] = None,
                 store: Optional[ReplicatedKVStore] = None) -> None:
        app.validate()
        self.app = app
        self.config = config or LocalConfig()
        cfg = self.config
        self.store = store if store is not None else ReplicatedKVStore(
            node_names=[f"kv{i}" for i in range(cfg.kv_nodes)],
            replication_factor=cfg.kv_replication,
            clock=time.monotonic,  # noqa: MUP001 -- threaded engine: real kv timestamps/TTLs by design
        )
        self.manager = SlateManager(
            store=self.store,
            cache_capacity=cfg.cache_slates,
            flush_policy=cfg.flush_policy,
            clock=time.monotonic,  # noqa: MUP001 -- threaded engine: real flush intervals by design
            consistency=cfg.consistency,
            max_slate_bytes=cfg.max_slate_bytes,
        )
        self.counters = EventCounter()
        self.latency = LatencyRecorder()
        self.dispatcher = TwoChoiceDispatcher(cfg.num_threads,
                                              cfg.dispatch_factor)
        self._instances: Dict[str, Operator] = {
            spec.name: spec.instantiate() for spec in app.operators()
        }
        self._queues: List[BoundedQueue[_WorkItem]] = [
            BoundedQueue(cfg.queue_capacity) for _ in range(cfg.num_threads)
        ]
        self._processing: List[Optional[Tuple[str, str]]] = (
            [None] * cfg.num_threads)
        self._dispatch_lock = threading.Lock()
        self._work_available = threading.Condition(self._dispatch_lock)
        self._manager_lock = threading.Lock()
        self._slate_locks: Dict[SlateKey, threading.Lock] = {}
        self._slate_locks_guard = threading.Lock()
        self._latency_lock = threading.Lock()
        self._counter_lock = threading.Lock()
        #: Thinning state (None when disabled). The thinner's RNG and
        #: decision counters are not atomic, so draws serialize on a
        #: dedicated lock (leaf: taken with no other lock held).
        self._thinner = (Thinner(cfg.thinning, seed=cfg.thin_seed)
                         if cfg.thinning is not None else None)
        self._thinnable = {s.name for s in app.thinnable_updaters()}
        self._thin_lock = threading.Lock()
        self._inflight = 0
        self._idle = threading.Condition(threading.Lock())
        self._timers: List[Tuple[float, int, TimerRequest, float]] = []
        self._timer_seq = itertools.count()
        self._timer_cond = threading.Condition()
        #: Event-time watermark: the max source timestamp ingested so far.
        #: Timers fire when the watermark passes their ``at_ts``.
        self._watermark = float("-inf")
        self._threads: List[threading.Thread] = []
        self._running = False
        self._stopped = False
        #: Operator invocations that raised; the event is logged as failed
        #: and the worker moves on (user code must not kill the engine).
        self.operator_errors = 0
        self.last_error: Optional[BaseException] = None
        self.metrics = MetricsRegistry()
        self._register_metrics()

    def _register_metrics(self) -> None:
        """Expose the engine's live stats objects through one registry.

        Everything here is a lazy view sampled at snapshot time; workers
        keep mutating their existing counters with zero added cost.
        """
        reg = self.metrics
        reg.register_group("counters", self.counters.snapshot)
        reg.register_view("dispatch", self.dispatcher.stats)
        reg.register_view("slates", self.manager.stats)
        reg.register_group("queues", lambda: {
            "depth": sum(len(q) for q in self._queues),
            "peak": max((q.stats.peak_depth for q in self._queues),
                        default=0),
            "rejected": sum(q.stats.rejected for q in self._queues),
        })
        reg.register_group("kv", lambda: {
            f"{name}.{key}": value
            for name, stats in self.store.stats_by_node().items()
            for key, value in stats.items()
        })
        reg.register_group("errors", lambda: {
            "operator_errors": self.operator_errors,
        })

    def metrics_snapshot(self) -> Dict[str, Any]:
        """One flat, sorted name->value reading of every registered stat."""
        return self.metrics.snapshot()

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> "LocalMuppet":
        """Spin up worker, timer, and background-flush threads."""
        if self._running:
            return self
        if self._stopped:
            raise EngineStoppedError("LocalMuppet cannot be restarted")
        self._running = True
        for i in range(self.config.num_threads):
            thread = threading.Thread(target=self._worker_loop, args=(i,),
                                      name=f"muppet-worker-{i}", daemon=True)
            thread.start()
            self._threads.append(thread)
        flusher = threading.Thread(target=self._flusher_loop,
                                   name="muppet-flusher", daemon=True)
        flusher.start()
        self._threads.append(flusher)
        timer = threading.Thread(target=self._timer_loop,
                                 name="muppet-timer", daemon=True)
        timer.start()
        self._threads.append(timer)
        return self

    def stop(self) -> None:
        """Stop all threads and flush remaining dirty slates."""
        if not self._running:
            return
        self._running = False
        self._stopped = True
        with self._work_available:
            self._work_available.notify_all()
        with self._timer_cond:
            self._timer_cond.notify_all()
        for thread in self._threads:
            thread.join(timeout=5.0)
        with self._manager_lock:
            self.manager.flush_all_dirty()

    def __enter__(self) -> "LocalMuppet":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- ingestion --------------------------------------------------------------
    def ingest(self, event: Event, block: bool = True,
               timeout: float = 30.0) -> bool:
        """Feed one external event (the M0 role, Section 4.1).

        Args:
            event: Must target an external stream of the application.
            block: With the ``throttle`` overflow policy, wait for queue
                space (source throttling); otherwise full queues follow
                the drop/divert policy immediately.
            timeout: Max seconds to wait when blocking.

        Returns:
            True if the event entered the system (fully or diverted);
            False if it was dropped.
        """
        if not self._running:
            raise EngineStoppedError("runtime is not running")
        spec = self.app.streams.spec(event.sid)
        if not spec.external:
            raise WorkflowError(
                f"ingest targets external streams only, got {event.sid!r}"
            )
        stamped = self.app.streams.stamp(event)
        with self._counter_lock:
            self.counters.published += 1
        with self._timer_cond:
            if stamped.ts > self._watermark:
                self._watermark = stamped.ts
                self._timer_cond.notify_all()
        birth = time.monotonic()  # noqa: MUP001 -- wall-clock latency birthstamp (threaded engine)
        ok = True
        for sub in self.app.subscribers_of(stamped.sid):
            item = _WorkItem(stamped, sub.name, birth)
            ok = self._dispatch(item, from_source=block,
                                timeout=timeout) and ok
        return ok

    def ingest_many(self, events, block: bool = True) -> int:
        """Feed a sequence of events; returns how many were accepted."""
        accepted = 0
        for event in events:
            if self.ingest(event, block=block):
                accepted += 1
        return accepted

    # -- dispatch -----------------------------------------------------------------
    def _dispatch(self, item: _WorkItem, from_source: bool = False,
                  timeout: float = 30.0, allow_divert: bool = True) -> bool:
        deadline = time.monotonic() + timeout  # noqa: MUP001 -- real throttling deadline (threaded engine)
        while True:
            with self._dispatch_lock:
                lengths = [len(q) for q in self._queues]
                index = self.dispatcher.choose(
                    item.event.key, item.dest_fn, lengths, self._processing)
                if self._queues[index].offer(item):
                    self._inflight_add(1)
                    self._work_available.notify_all()
                    return True
            # Queue full: apply the overflow policy (Section 4.3).
            policy = self.config.overflow
            if policy.kind == "drop" or not allow_divert:
                with self._counter_lock:
                    self.counters.dropped_overflow += 1
                return False
            if policy.kind == "divert":
                return self._divert(item)
            # throttle: block the source until space frees up.
            if not from_source or time.monotonic() >= deadline:  # noqa: MUP001 -- real throttling deadline (threaded engine)
                with self._counter_lock:
                    self.counters.dropped_overflow += 1
                return False
            with self._counter_lock:
                self.counters.throttled += 1
            time.sleep(self.config.throttle_poll_s)  # noqa: MUP001 -- source backpressure needs real waiting (threaded engine)

    def _divert(self, item: _WorkItem) -> bool:
        sid = self.config.overflow.overflow_sid
        assert sid is not None
        with self._counter_lock:
            self.counters.diverted_overflow_stream += 1
        # Pin the original replay-stable (origin, oseq) across the
        # re-stamp: for a source event, provenance falls back to
        # (sid, seq), which stamping onto the overflow stream would
        # otherwise rewrite — the diverted copy must keep one identity.
        origin, oseq = item.event.provenance()
        diverted = self.app.streams.stamp(item.event.with_stream(sid))
        diverted = diverted.with_provenance(origin, oseq)
        delivered = False
        for sub in self.app.subscribers_of(sid):
            # A diverted event that overflows again is dropped — degraded
            # service must not recurse into further diversion.
            delivered = self._dispatch(
                _WorkItem(diverted, sub.name, item.birth),
                allow_divert=False) or delivered
        return delivered

    def _inflight_add(self, delta: int) -> None:
        with self._idle:
            self._inflight += delta
            if self._inflight == 0:
                self._idle.notify_all()

    def drain(self, timeout: float = 60.0, flush_timers: bool = True) -> bool:
        """Block until every queued/in-flight event has been processed.

        With ``flush_timers`` (the default), any timers still pending once
        the queues empty are fired in timestamp order — end-of-stream
        semantics, so windowed applications (hot topics) emit their final
        windows when a bounded run finishes.
        """
        deadline = time.monotonic() + timeout  # noqa: MUP001 -- real drain deadline (threaded engine)
        while True:
            if not self._wait_idle(deadline):
                return False
            if not flush_timers:
                return True
            with self._timer_cond:
                if not self._timers:
                    return True
                _, __, timer, birth = heapq.heappop(self._timers)
            self._fire_timer(timer, birth)

    def _wait_idle(self, deadline: float) -> bool:
        with self._idle:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()  # noqa: MUP001 -- real drain deadline (threaded engine)
                if remaining <= 0:
                    return False
                self._idle.wait(min(remaining, 0.1))
        return True

    # -- workers ----------------------------------------------------------------
    def _worker_loop(self, index: int) -> None:
        queue = self._queues[index]
        while True:
            with self._work_available:
                item = queue.poll()
                while item is None:
                    if not self._running:
                        return
                    self._work_available.wait(0.1)
                    item = queue.poll()
                self._processing[index] = (item.event.key, item.dest_fn)
            try:
                self._process(item)
            except Exception as exc:
                # A failing map/update costs one event, not the worker.
                # last_error shares the counter lock so a status() reader
                # never sees the count bumped without its exception.
                with self._counter_lock:
                    self.operator_errors += 1
                    self.last_error = exc
            finally:
                with self._dispatch_lock:
                    self._processing[index] = None
                self._inflight_add(-1)

    def _process(self, item: _WorkItem) -> None:
        spec = self.app.operator(item.dest_fn)
        instance = self._instances[spec.name]
        event = item.event
        ctx = Context(spec.name, event.ts, spec.publishes, event.key)
        if spec.kind == "map":
            assert isinstance(instance, Mapper)
            instance.map(ctx, event)
        else:
            assert isinstance(instance, Updater)
            weight = 1.0
            if (self._thinner is not None and not item.is_timer
                    and spec.name in self._thinnable
                    and self._queue_pressure()
                    >= self.config.thin_queue_fraction):
                with self._thin_lock:
                    keep, weight = self._thinner.decide(event.key)
                if not keep:
                    # Thinned: the slate read and update are skipped;
                    # kept siblings apply with weight 1/p, keeping the
                    # counters unbiased (see repro.shedding.thinning).
                    with self._counter_lock:
                        self.counters.thinned += 1
                        self.counters.processed += 1
                    return
            slate_lock = self._slate_lock(SlateKey(spec.name, event.key))
            with slate_lock:
                with self._manager_lock:
                    slate = self.manager.get(instance, event.key)
                if item.is_timer:
                    instance.on_timer(ctx, event.key, slate,
                                      item.timer_payload)
                elif weight != 1.0:
                    instance.update_weighted(ctx, event, slate, weight)
                else:
                    instance.update(ctx, event, slate)
                slate.touch(event.ts)
                with self._manager_lock:
                    self.manager.note_update(slate)
            if self.config.record_latency and not item.is_timer:
                with self._latency_lock:
                    self.latency.record(time.monotonic() - item.birth)  # noqa: MUP001 -- wall-clock latency measurement (threaded engine)
        with self._counter_lock:
            self.counters.processed += 1
        for out in ctx.emitted:
            stamped = self.app.streams.stamp(out, from_operator=True)
            with self._counter_lock:
                self.counters.published += 1
            for sub in self.app.subscribers_of(stamped.sid):
                self._dispatch(_WorkItem(stamped, sub.name, item.birth))
        for timer in ctx.timers:
            self._schedule_timer(timer, item.birth)

    def _queue_pressure(self) -> float:
        """Worst queue depth fraction right now (thinning signal)."""
        cap = self.config.queue_capacity or 1
        with self._dispatch_lock:
            worst = max((len(q) for q in self._queues), default=0)
        return worst / cap

    def _slate_lock(self, slate_key: SlateKey) -> threading.Lock:
        with self._slate_locks_guard:
            lock = self._slate_locks.get(slate_key)
            if lock is None:
                lock = threading.Lock()
                self._slate_locks[slate_key] = lock
            return lock

    # -- timers -------------------------------------------------------------------
    def _schedule_timer(self, timer: TimerRequest, birth: float) -> None:
        """Register an event-time timer (fires when the watermark — the
        max ingested source timestamp — passes its ``at_ts``)."""
        with self._timer_cond:
            heapq.heappush(self._timers,
                           (timer.at_ts, next(self._timer_seq), timer, birth))
            self._timer_cond.notify_all()

    def _fire_timer(self, timer: TimerRequest, birth: float) -> None:
        timer_event = Event(sid=f"!timer:{timer.updater}",
                            ts=timer.at_ts, key=timer.key)
        item = _WorkItem(timer_event, timer.updater, birth,
                         is_timer=True, timer_payload=timer.payload)
        self._dispatch(item)

    def _timer_loop(self) -> None:
        while True:
            fired: Optional[Tuple[TimerRequest, float]] = None
            with self._timer_cond:
                if not self._running:
                    return
                if self._timers and self._timers[0][0] <= self._watermark:
                    _, __, timer, birth = heapq.heappop(self._timers)
                    fired = (timer, birth)
                else:
                    self._timer_cond.wait(0.05)
            if fired is not None:
                self._fire_timer(*fired)

    # -- background flush ---------------------------------------------------------
    def _flusher_loop(self) -> None:
        """The Muppet 2.0 background kv-store I/O thread (Section 4.5).

        Each slate is encoded under its own lock (then the manager
        lock, the canonical order) so a worker running ``update()`` on
        the same slate can never mutate its fields mid-encode — the
        manager lock alone does not cover field mutation, which happens
        under per-slate locks in :meth:`_process`. Keys are flushed in
        sorted order so the kv write sequence is key-deterministic.
        """
        while self._running:
            time.sleep(self.config.flusher_period_s)  # noqa: MUP001 -- real I/O pacing (threaded engine)
            with self._manager_lock:
                if not self.manager.due():
                    continue
                self.manager.mark_interval_flushed()
                dirty = self.manager.dirty_keys()
            dirty.sort(key=lambda sk: (sk.updater, sk.key))
            for slate_key in dirty:
                with self._slate_lock(slate_key):
                    with self._manager_lock:
                        self.manager.flush_one(slate_key)

    # -- reads -------------------------------------------------------------------
    def read_slate(self, updater: str, key: str) -> Optional[Dict[str, Any]]:
        """Read a slate's current contents from the cache (fresh), else
        the store — the Section 4.4 slate-fetch semantics.

        Snapshots the slate under its lock so a concurrent ``update()``
        can never be observed mid-mutation.
        """
        slate_key = SlateKey(updater, key)
        with self._slate_lock(slate_key):
            with self._manager_lock:
                slate = self.manager.cache.peek(slate_key)
                if slate is not None:
                    return slate.as_dict()
        try:
            result = self.store.read(key, updater)
        except StoreError:
            return None
        if result.value is None:
            return None
        return self.manager.codec.decode(result.value)

    def read_slates_of(self, updater: str) -> Dict[str, Dict[str, Any]]:
        """All cached slates of one updater, in sorted key order."""
        with self._manager_lock:
            keys = [slate_key for slate_key in self.manager.cache.resident()
                    if slate_key.updater == updater]
        keys.sort(key=lambda sk: sk.key)
        found: Dict[str, Dict[str, Any]] = {}
        for slate_key in keys:
            with self._slate_lock(slate_key):
                with self._manager_lock:
                    slate = self.manager.cache.peek(slate_key)
                    if slate is not None:
                        found[slate_key.key] = slate.as_dict()
        return found

    def status(self) -> Dict[str, Any]:
        """Basic status: queue depths and counters (Section 4.5's HTTP
        status endpoint exposes "the event count of the largest event
        queues")."""
        with self._dispatch_lock:
            depths = [len(q) for q in self._queues]
        with self._counter_lock:
            counters = self.counters.snapshot()
        return {
            "queues": depths,
            "largest_queue": max(depths) if depths else 0,
            "counters": counters,
            "threads": self.config.num_threads,
            "running": self._running,
        }
