"""LocalMuppet1: a real-thread Muppet **1.0** runtime (Section 4.5).

Where :class:`~repro.muppet.local.LocalMuppet` is the 2.0 thread-pool
design, this runtime reproduces the 1.0 architecture on one machine, for
wall-clock comparison (bench E3c):

* each worker is bound to **one** map or update function (a thread
  standing in for the conductor/task-processor process pair);
* every event round-trips through a real framed
  :class:`~repro.muppet.conductor.Conductor` pipe — the event in, the
  slate in and back for updaters, the outputs back — so the §4.5 IPC
  waste is paid in actual serialization work;
* each worker owns a **private** slate manager (the fragmented caches);
* routing hashes ``<key, destination function>`` to the single owning
  worker — no two-choice, no shared cache.

The public surface mirrors :class:`LocalMuppet` (``ingest`` / ``drain``
/ ``read_slate`` / ``stop``) so tests and benches can swap engines.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.cluster.hashring import HashRing, route_key
from repro.core.application import Application
from repro.core.event import Event, EventCounter
from repro.core.operators import Context, Mapper, Operator, Updater
from repro.core.slate import SlateKey
from repro.errors import (ConfigurationError, EngineStoppedError,
                          WorkflowError)
from repro.kvstore.cluster import ReplicatedKVStore
from repro.metrics import LatencyRecorder
from repro.muppet.conductor import Conductor, PipeStats, TaskProcessor
from repro.muppet.queues import BoundedQueue
from repro.slates.manager import FlushPolicy, SlateManager


@dataclass
class Local1Config:
    """Knobs for the 1.0-style runtime."""

    workers_per_function: int = 2
    queue_capacity: int = 10_000
    cache_slates_total: int = 100_000
    flush_policy: FlushPolicy = field(
        default_factory=lambda: FlushPolicy.every(0.5))
    kv_nodes: int = 1
    kv_replication: int = 1
    flusher_period_s: float = 0.1
    record_latency: bool = True
    #: How long senders/workers sleep between queue polls (the 1.0
    #: design busy-waits instead of using a shared condition).
    poll_interval_s: float = 0.0005

    def __post_init__(self) -> None:
        if self.workers_per_function < 1:
            raise ConfigurationError("workers_per_function must be >= 1")
        if self.poll_interval_s <= 0:
            raise ConfigurationError("poll_interval_s must be positive")


class _Worker1:
    """One 1.0 worker: a bound function, a queue, a private cache, and a
    conductor pipe to "its" task processor."""

    def __init__(self, wid: str, spec_name: str, kind: str,
                 operator: Operator, queue_capacity: int,
                 manager: SlateManager, publishes: Tuple[str, ...]) -> None:
        self.wid = wid
        self.function = spec_name
        self.kind = kind
        self.operator = operator
        self.queue: BoundedQueue = BoundedQueue(queue_capacity)
        self.manager = manager
        self.publishes = publishes
        self.conductor = Conductor(TaskProcessor(self._run_operator))
        self._pending_ctx: Optional[Context] = None

    def _run_operator(self, event_dict: Dict[str, Any],
                      slate_dict: Optional[Dict[str, Any]]):
        """The task-processor side: decode, run user code, encode back."""
        event = Event(event_dict["sid"], event_dict["ts"],
                      event_dict["key"], event_dict["value"])
        ctx = Context(self.function, event.ts, self.publishes, event.key)
        if self.kind == "map":
            assert isinstance(self.operator, Mapper)
            self.operator.map(ctx, event)
            new_slate = None
        else:
            assert isinstance(self.operator, Updater)
            from repro.core.slate import Slate

            slate = Slate(SlateKey(self.function, event.key),
                          slate_dict
                          or self.operator.init_slate(event.key),
                          ttl=self.operator.slate_ttl,
                          created_ts=event.ts)
            if event_dict.get("__timer__"):
                self.operator.on_timer(ctx, event.key, slate,
                                       event_dict.get("__payload__"))
            else:
                self.operator.update(ctx, event, slate)
            new_slate = slate.as_dict()
        outputs = [{"sid": e.sid, "ts": e.ts, "key": e.key,
                    "value": e.value} for e in ctx.emitted]
        self._pending_ctx = ctx
        return outputs, new_slate


class LocalMuppet1:
    """Run one MapUpdate application 1.0-style on local threads."""

    def __init__(self, app: Application,
                 config: Optional[Local1Config] = None,
                 store: Optional[ReplicatedKVStore] = None) -> None:
        app.validate()
        self.app = app
        self.config = config or Local1Config()
        cfg = self.config
        self.store = store if store is not None else ReplicatedKVStore(
            node_names=[f"kv{i}" for i in range(cfg.kv_nodes)],
            replication_factor=cfg.kv_replication,
            clock=time.monotonic,  # noqa: MUP001 -- threaded 1.0 engine is wall-clock by design
        )
        self.counters = EventCounter()
        self.latency = LatencyRecorder()
        self._counter_lock = threading.Lock()
        self._latency_lock = threading.Lock()
        self._inflight = 0
        self._idle = threading.Condition(threading.Lock())
        self._running = False
        self._stopped = False
        self._threads: List[threading.Thread] = []
        # Event-time timers (watermark-driven, like LocalMuppet).
        import itertools as _itertools

        self._timers: List[Tuple[float, int, Any, float]] = []
        self._timer_seq = _itertools.count()
        self._timer_cond = threading.Condition()
        self._watermark = float("-inf")

        specs = app.operators()
        per_worker_cache = max(
            1, cfg.cache_slates_total
            // max(1, len(specs) * cfg.workers_per_function))
        self._workers: Dict[str, _Worker1] = {}
        self._rings: Dict[str, HashRing[str]] = {}
        for spec in specs:
            ring: HashRing[str] = HashRing()
            for index in range(cfg.workers_per_function):
                wid = f"{spec.name}#{index}"
                # Each 1.0 worker loads its own operator copy.
                worker = _Worker1(
                    wid=wid, spec_name=spec.name, kind=spec.kind,
                    operator=spec.instantiate(),
                    queue_capacity=cfg.queue_capacity,
                    manager=SlateManager(
                        self.store, cache_capacity=per_worker_cache,
                        flush_policy=cfg.flush_policy,
                        clock=time.monotonic),  # noqa: MUP001 -- threaded 1.0 engine is wall-clock by design
                    publishes=spec.publishes)
                self._workers[wid] = worker
                ring.add(wid)
            self._rings[spec.name] = ring

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "LocalMuppet1":
        """Spin up one thread per worker plus the background flusher."""
        if self._running:
            return self
        if self._stopped:
            raise EngineStoppedError("LocalMuppet1 cannot be restarted")
        self._running = True
        for worker in self._workers.values():
            thread = threading.Thread(target=self._worker_loop,
                                      args=(worker,),
                                      name=f"muppet1-{worker.wid}",
                                      daemon=True)
            thread.start()
            self._threads.append(thread)
        flusher = threading.Thread(target=self._flusher_loop,
                                   name="muppet1-flusher", daemon=True)
        flusher.start()
        self._threads.append(flusher)
        timer = threading.Thread(target=self._timer_loop,
                                 name="muppet1-timer", daemon=True)
        timer.start()
        self._threads.append(timer)
        return self

    def stop(self) -> None:
        """Stop workers and flush every private cache."""
        if not self._running:
            return
        self._running = False
        self._stopped = True
        for thread in self._threads:
            thread.join(timeout=5.0)
        for worker in self._workers.values():
            worker.manager.flush_all_dirty()

    def __enter__(self) -> "LocalMuppet1":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- data path -----------------------------------------------------------
    def ingest(self, event: Event) -> bool:
        """Feed one external event (blocking when queues are full)."""
        if not self._running:
            raise EngineStoppedError("runtime is not running")
        spec = self.app.streams.spec(event.sid)
        if not spec.external:
            raise WorkflowError("ingest targets external streams only")
        stamped = self.app.streams.stamp(event)
        with self._counter_lock:
            self.counters.published += 1
        with self._timer_cond:
            if stamped.ts > self._watermark:
                self._watermark = stamped.ts
                self._timer_cond.notify_all()
        birth = time.monotonic()  # noqa: MUP001 -- real ingest timestamp for latency measurement
        ok = True
        for sub in self.app.subscribers_of(stamped.sid):
            ok = self._route(stamped, sub.name, birth) and ok
        return ok

    def ingest_many(self, events) -> int:
        """Feed many events; returns the number accepted."""
        return sum(1 for event in events if self.ingest(event))

    def _route(self, event: Event, function: str, birth: float,
               is_timer: bool = False, payload: Any = None) -> bool:
        """Hash <key, function> to the one owning worker (Section 4.1)."""
        wid = self._rings[function].lookup(route_key(event.key, function))
        worker = self._workers[wid]
        deadline = time.monotonic() + 30.0  # noqa: MUP001 -- real backpressure deadline (threaded engine)
        while True:
            if worker.queue.offer((event, birth, is_timer, payload)):
                self._inflight_add(1)
                return True
            if time.monotonic() > deadline:  # noqa: MUP001 -- real backpressure deadline (threaded engine)
                with self._counter_lock:
                    self.counters.dropped_overflow += 1
                return False
            # 1.0-style backpressure: sender waits.
            time.sleep(self.config.poll_interval_s)  # noqa: MUP001 -- real I/O pacing (threaded engine)

    def _inflight_add(self, delta: int) -> None:
        with self._idle:
            self._inflight += delta
            if self._inflight == 0:
                self._idle.notify_all()

    def drain(self, timeout: float = 60.0, flush_timers: bool = True
              ) -> bool:
        """Wait until all queued/in-flight events are processed; with
        ``flush_timers`` (default), pending timers fire in timestamp
        order once the queues empty (end-of-stream semantics)."""
        import heapq

        deadline = time.monotonic() + timeout  # noqa: MUP001 -- real drain deadline (threaded engine)
        while True:
            if not self._wait_idle(deadline):
                return False
            if not flush_timers:
                return True
            with self._timer_cond:
                if not self._timers:
                    return True
                _, __, timer, birth = heapq.heappop(self._timers)
            self._fire_timer(timer, birth)

    def _wait_idle(self, deadline: float) -> bool:
        with self._idle:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()  # noqa: MUP001 -- real drain deadline (threaded engine)
                if remaining <= 0:
                    return False
                self._idle.wait(min(remaining, 0.1))
        return True

    def _worker_loop(self, worker: _Worker1) -> None:
        while True:
            item = worker.queue.poll()
            if item is None:
                if not self._running:
                    return
                time.sleep(self.config.poll_interval_s)  # noqa: MUP001 -- real queue-poll pacing (threaded engine)
                continue
            try:
                self._process(worker, *item)
            except Exception:
                with self._counter_lock:
                    self.counters.lost_failure += 1
            finally:
                self._inflight_add(-1)

    def _process(self, worker: _Worker1, event: Event, birth: float,
                 is_timer: bool = False, payload: Any = None) -> None:
        """The conductor's job: slate fetch, pipe round-trip, routing."""
        slate_dict: Optional[Dict[str, Any]] = None
        slate = None
        if worker.kind == "update":
            assert isinstance(worker.operator, Updater)
            slate = worker.manager.get(worker.operator, event.key)
            slate_dict = slate.as_dict()
        flags = ({"__timer__": True, "__payload__": payload}
                 if is_timer else None)
        outputs, new_slate = worker.conductor.process_event(
            event, slate_dict, flags=flags)
        if worker.kind == "update" and new_slate is not None:
            assert slate is not None
            slate.replace(new_slate)
            slate.touch(event.ts)
            worker.manager.note_update(slate)
            if self.config.record_latency and not is_timer:
                with self._latency_lock:
                    self.latency.record(time.monotonic() - birth)  # noqa: MUP001 -- real end-to-end latency sample
        with self._counter_lock:
            self.counters.processed += 1
        for output in outputs:
            out_event = self.app.streams.stamp(
                Event(output["sid"], output["ts"], output["key"],
                      output["value"]), from_operator=True)
            with self._counter_lock:
                self.counters.published += 1
            for sub in self.app.subscribers_of(out_event.sid):
                self._route(out_event, sub.name, birth)
        pending = worker._pending_ctx
        if pending is not None:
            for timer in pending.timers:
                self._schedule_timer(timer, birth)
            pending.timers.clear()

    # -- timers --------------------------------------------------------------
    def _schedule_timer(self, timer, birth: float) -> None:
        import heapq

        with self._timer_cond:
            heapq.heappush(self._timers,
                           (timer.at_ts, next(self._timer_seq), timer,
                            birth))
            self._timer_cond.notify_all()

    def _fire_timer(self, timer, birth: float) -> None:
        timer_event = Event(sid=f"!timer:{timer.updater}",
                            ts=timer.at_ts, key=timer.key)
        self._route(timer_event, timer.updater, birth, is_timer=True,
                    payload=timer.payload)

    def _timer_loop(self) -> None:
        import heapq

        while True:
            fired = None
            with self._timer_cond:
                if not self._running:
                    return
                if self._timers and self._timers[0][0] <= self._watermark:
                    _, __, timer, birth = heapq.heappop(self._timers)
                    fired = (timer, birth)
                else:
                    self._timer_cond.wait(0.05)
            if fired is not None:
                self._fire_timer(*fired)

    def _flusher_loop(self) -> None:
        while self._running:
            time.sleep(self.config.flusher_period_s)  # noqa: MUP001 -- real I/O pacing (threaded engine)
            for _, worker in sorted(self._workers.items()):
                worker.manager.flush_due()

    # -- reads --------------------------------------------------------------
    def read_slate(self, updater: str, key: str
                   ) -> Optional[Dict[str, Any]]:
        """Read a slate from its owning worker's cache, else the store."""
        wid = self._rings[updater].lookup(route_key(key, updater))
        worker = self._workers[wid]
        slate = worker.manager.cache.peek(SlateKey(updater, key))
        if slate is not None:
            return slate.as_dict()
        try:
            result = self.store.read(key, updater)
        except Exception:
            return None
        if result.value is None:
            return None
        return worker.manager.codec.decode(result.value)

    def read_slates_of(self, updater: str) -> Dict[str, Dict[str, Any]]:
        """All cached slates of one updater across its workers."""
        found: Dict[str, Dict[str, Any]] = {}
        for _, worker in sorted(self._workers.items()):
            if worker.function != updater:
                continue
            for slate_key in worker.manager.cache.resident():
                slate = worker.manager.cache.peek(slate_key)
                if slate is not None:
                    found[slate_key.key] = slate.as_dict()
        return found

    def ipc_stats(self) -> PipeStats:
        """Aggregate conductor-pipe traffic (the §4.5 waste, measured)."""
        total = PipeStats()
        for worker in self._workers.values():
            stats = worker.conductor.stats
            total.frames_to_task += stats.frames_to_task
            total.bytes_to_task += stats.bytes_to_task
            total.frames_to_conductor += stats.frames_to_conductor
            total.bytes_to_conductor += stats.bytes_to_conductor
        return total
