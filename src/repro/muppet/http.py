"""HTTP slate reads (Section 4.4) over a :class:`LocalMuppet` runtime.

"Muppet provides a small HTTP server on each node for slate fetches. The
URI of a slate fetch includes the name of the updater and the key of the
slate to uniquely identify a slate. The fetch retrieves the slate from
Muppet's slate cache ... rather than from the durable key-value store to
ensure an up-to-date reply."

Endpoints:

* ``GET /slate/<updater>/<key>`` — the live slate (cache-first), JSON.
* ``GET /slates/<updater>`` — all cached slates of an updater.
* ``GET /bulk/<updater>/<key>`` — the *store* copy, bypassing the cache;
  exists so bench E13 can demonstrate why cache-first reads matter (the
  store copy lags by up to one flush interval).
* ``GET /status`` — queue depths and counters, like Muppet 2.0's status
  endpoint ("the event count of the largest event queues", Section 4.5).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional, Tuple
from urllib.parse import unquote

from repro.muppet.local import LocalMuppet


class _SlateRequestHandler(BaseHTTPRequestHandler):
    """Routes slate-fetch URIs to the runtime. One instance per request."""

    #: Injected by :class:`SlateHTTPServer` at server construction.
    runtime: LocalMuppet

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        try:
            status, payload = self._route()
        except Exception as exc:  # pragma: no cover - defensive
            status, payload = 500, {"error": str(exc)}
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _route(self) -> Tuple[int, Any]:
        parts = [unquote(p) for p in self.path.strip("/").split("/") if p]
        if parts == ["status"]:
            return 200, self.runtime.status()
        if len(parts) == 3 and parts[0] == "slate":
            updater, key = parts[1], parts[2]
            slate = self.runtime.read_slate(updater, key)
            if slate is None:
                return 404, {"error": f"no slate for {updater}/{key}"}
            return 200, {"updater": updater, "key": key, "slate": slate}
        if len(parts) == 2 and parts[0] == "slates":
            return 200, {"updater": parts[1],
                         "slates": self.runtime.read_slates_of(parts[1])}
        if len(parts) == 3 and parts[0] == "bulk":
            updater, key = parts[1], parts[2]
            value = self._store_read(updater, key)
            if value is None:
                return 404, {"error": "no stored slate for "
                                      f"{updater}/{key}"}
            return 200, {"updater": updater, "key": key, "slate": value,
                         "source": "store"}
        return 404, {"error": f"unknown path {self.path!r}"}

    def _store_read(self, updater: str, key: str) -> Optional[dict]:
        try:
            result = self.runtime.store.read(key, updater)
        except Exception:
            return None
        if result.value is None:
            return None
        return self.runtime.manager.codec.decode(result.value)

    def log_message(self, fmt: str, *args: Any) -> None:
        """Silence per-request stderr logging."""


class SlateHTTPServer:
    """A background HTTP server exposing one runtime's slates.

    Usage::

        server = SlateHTTPServer(runtime, port=0)  # 0 = ephemeral port
        server.start()
        url = f"http://127.0.0.1:{server.port}/slate/U1/walmart"
        ...
        server.stop()
    """

    def __init__(self, runtime: LocalMuppet, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        handler = type("BoundHandler", (_SlateRequestHandler,),
                       {"runtime": runtime})
        self._server = ThreadingHTTPServer((host, port), handler)
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ephemeral port 0)."""
        return self._server.server_address[1]

    @property
    def host(self) -> str:
        """The bound host address."""
        return self._server.server_address[0]

    def start(self) -> "SlateHTTPServer":
        """Serve requests on a daemon thread."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        name="muppet-http", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down and join its thread."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "SlateHTTPServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
