"""The Muppet system: engines, queues, dispatch, failures, HTTP reads.

The cluster engines (Muppet 1.0 worker processes, Muppet 2.0 thread
pools) live in :mod:`repro.sim.runtime`, which runs them on a simulated
cluster; :class:`LocalMuppet` here is the real-thread single-machine
Muppet 2.0 runtime used by examples and wall-clock benchmarks.

Section 5's "ongoing extensions" are implemented as opt-in modules:
:mod:`repro.muppet.replay` (event replay after failures),
:mod:`repro.muppet.placement` (locality-aware operator placement),
:mod:`repro.muppet.sideeffects` (bulk slate logging and the shared-log
contention study), and elastic membership via
``SimRuntime.schedule_add_machine``.
"""

from repro.muppet.dispatch import (DispatchStats, SingleChoiceDispatcher,
                                   TwoChoiceDispatcher)
from repro.muppet.http import SlateHTTPServer
from repro.muppet.conductor import (Conductor, IPCAccountant,
                                    TaskProcessor)
from repro.muppet.local import LocalConfig, LocalMuppet
from repro.muppet.local1 import Local1Config, LocalMuppet1
from repro.muppet.master import Master, MasterStats
from repro.muppet.placement import (FlowRecord, PlacementCost,
                                    TrafficMatrix, evaluate_placement,
                                    greedy_placement, hash_placement)
from repro.muppet.queues import (BoundedQueue, OverflowPolicy, QueueStats,
                                 SourceThrottle)
from repro.muppet.replay import ReplayJournal, ReplayStats
from repro.muppet.sideeffects import (PerWorkerLogger, SharedLogger,
                                      SlateLogSink)

__all__ = [
    "BoundedQueue",
    "DispatchStats",
    "FlowRecord",
    "Conductor",
    "IPCAccountant",
    "Local1Config",
    "LocalConfig",
    "LocalMuppet",
    "LocalMuppet1",
    "Master",
    "TaskProcessor",
    "MasterStats",
    "OverflowPolicy",
    "PerWorkerLogger",
    "PlacementCost",
    "QueueStats",
    "ReplayJournal",
    "ReplayStats",
    "SharedLogger",
    "SingleChoiceDispatcher",
    "SlateHTTPServer",
    "SlateLogSink",
    "SourceThrottle",
    "TrafficMatrix",
    "TwoChoiceDispatcher",
    "evaluate_placement",
    "greedy_placement",
    "hash_placement",
]
