"""Placement of mappers and updaters — the Section 5 exploration.

"Currently the placement of mappers and updaters in Muppet is in effect
decided by the hashing function ... We are exploring how to place mappers
and updaters so that they are close to their data in a way that reduces
network traffic."

The paper explains why this is nontrivial: the best placement depends on
the *contents* of the stream (which retailers are popular), popularity
drifts, and multi-stage flows couple placements ("assignments that reduce
network traffic for the input ... of one function may increase the
network traffic coming in or out another").

This module implements the exploration as a first-class tool:

* :class:`TrafficMatrix` — measured event flow between (producer
  machine, key, destination function) triples, as collected from a run
  or a trace;
* :func:`hash_placement` — the production baseline: keys placed by the
  ring, ignoring traffic;
* :func:`greedy_placement` — a locality-aware heuristic that assigns
  each (function, key) slot to the machine that already produces most of
  its input, subject to per-machine load caps;
* :func:`evaluate_placement` — bytes crossing the network under a given
  placement, so the two can be compared (bench E14).

The drift caveat is reproduced too: a placement optimized on yesterday's
traffic can *lose* to hashing when popularity shifts (see the bench).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.cluster.hashring import HashRing, route_key
from repro.errors import ConfigurationError

#: A placement target: (destination function, event key) → machine name.
Slot = Tuple[str, str]
Placement = Dict[Slot, str]


@dataclass
class FlowRecord:
    """One observed flow: events of ``key`` for ``function`` produced on
    ``producer_machine``, totaling ``bytes_sent``."""

    producer_machine: str
    function: str
    key: str
    events: int
    bytes_sent: int


class TrafficMatrix:
    """Aggregated event traffic, the input to placement decisions.

    Populated either from :meth:`record` calls (engines can hook their
    send path) or from a trace via :meth:`from_flows`.
    """

    def __init__(self) -> None:
        # slot -> producer machine -> bytes
        self._flows: Dict[Slot, Dict[str, int]] = defaultdict(
            lambda: defaultdict(int))
        self._events: Dict[Slot, int] = defaultdict(int)

    def record(self, producer_machine: str, function: str, key: str,
               size_bytes: int) -> None:
        """Account one event sent toward (function, key)."""
        slot = (function, key)
        self._flows[slot][producer_machine] += size_bytes
        self._events[slot] += 1

    @classmethod
    def from_flows(cls, flows: Iterable[FlowRecord]) -> "TrafficMatrix":
        """Build a matrix from pre-aggregated flow records."""
        matrix = cls()
        for flow in flows:
            slot = (flow.function, flow.key)
            matrix._flows[slot][flow.producer_machine] += flow.bytes_sent
            matrix._events[slot] += flow.events
        return matrix

    def slots(self) -> List[Slot]:
        """All observed (function, key) slots, sorted for determinism."""
        return sorted(self._flows)

    def bytes_into(self, slot: Slot) -> int:
        """Total bytes flowing into one slot."""
        return sum(self._flows[slot].values())

    def producers_of(self, slot: Slot) -> Dict[str, int]:
        """Bytes into ``slot`` per producer machine."""
        return dict(self._flows[slot])

    def total_bytes(self) -> int:
        """All traffic in the matrix."""
        return sum(self.bytes_into(slot) for slot in self._flows)


def hash_placement(matrix: TrafficMatrix,
                   machines: List[str]) -> Placement:
    """The production baseline: the consistent-hash ring decides.

    This is content-oblivious — exactly what the paper says Muppet does
    today ("in effect decided by the hashing function").
    """
    if not machines:
        raise ConfigurationError("need at least one machine")
    ring: HashRing[str] = HashRing(machines)
    return {
        (function, key): ring.lookup(route_key(key, function))
        for function, key in matrix.slots()
    }


def greedy_placement(matrix: TrafficMatrix, machines: List[str],
                     max_load_fraction: float = 0.5) -> Placement:
    """Locality-aware greedy placement.

    Processes slots heaviest-first; each goes to the machine producing
    the most of its input, unless that machine already carries more than
    ``max_load_fraction`` of total traffic (a crude balance guard — the
    paper's hotspot lesson applies to placement as well: all-local would
    put the popular retailers on the checkin-ingest machine and melt it).

    Args:
        matrix: Observed traffic.
        machines: Candidate machines.
        max_load_fraction: Cap on any one machine's share of total
            placed traffic.

    Returns:
        A placement mapping each slot to a machine.
    """
    if not machines:
        raise ConfigurationError("need at least one machine")
    if not 0.0 < max_load_fraction <= 1.0:
        raise ConfigurationError("max_load_fraction must be in (0, 1]")
    total = max(1, matrix.total_bytes())
    budget = max_load_fraction * total
    load: Dict[str, int] = {machine: 0 for machine in machines}
    ring: HashRing[str] = HashRing(machines)
    placement: Placement = {}

    heaviest_first = sorted(matrix.slots(),
                            key=lambda slot: -matrix.bytes_into(slot))
    for slot in heaviest_first:
        weight = matrix.bytes_into(slot)
        producers = matrix.producers_of(slot)
        candidates = sorted(producers, key=lambda m: -producers[m])
        chosen: Optional[str] = None
        for machine in candidates:
            if machine in load and load[machine] + weight <= budget:
                chosen = machine
                break
        if chosen is None:
            # Fall back to the least-loaded machine (or the ring when
            # all else is equal) to preserve balance.
            chosen = min(machines, key=lambda m: (load[m], m))
            if load[chosen] + weight > budget:
                chosen = ring.lookup(route_key(slot[1], slot[0]))
        placement[slot] = chosen
        load[chosen] += weight
    return placement


@dataclass(frozen=True)
class PlacementCost:
    """Network cost of a placement against a traffic matrix."""

    cross_machine_bytes: int
    local_bytes: int
    max_machine_share: float

    @property
    def total_bytes(self) -> int:
        """All accounted traffic."""
        return self.cross_machine_bytes + self.local_bytes

    @property
    def locality(self) -> float:
        """Fraction of bytes that stayed machine-local."""
        if self.total_bytes == 0:
            return 0.0
        return self.local_bytes / self.total_bytes


def evaluate_placement(matrix: TrafficMatrix,
                       placement: Placement) -> PlacementCost:
    """Bytes that cross the network under ``placement``.

    An event is free when its producer machine equals the machine its
    (function, key) slot is placed on; otherwise it pays its size on the
    wire — the quantity the paper wants to reduce.
    """
    cross = 0
    local = 0
    per_machine: Dict[str, int] = defaultdict(int)
    for slot, machine in placement.items():
        for producer, size_bytes in matrix.producers_of(slot).items():
            per_machine[machine] += size_bytes
            if producer == machine:
                local += size_bytes
            else:
                cross += size_bytes
    total = max(1, cross + local)
    max_share = max(per_machine.values(), default=0) / total
    return PlacementCost(cross_machine_bytes=cross, local_bytes=local,
                         max_machine_share=max_share)
