"""The Muppet master: failure bookkeeping only (Sections 4.1, 4.3).

Unlike MapReduce, the master is *not* on the data path — "Muppet lets the
workers pass events directly to one another without going through any
master. (The master in Muppet is used for handling failures.)" A worker
that cannot contact a peer reports the peer's machine to the master; the
master broadcasts the failure to all workers, which update their local
failed-machine lists so the shared hash ring routes around the dead
machine from then on.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Callable, Dict, List, Optional, Set

from repro.errors import ConfigurationError

#: Callback invoked on every worker when the master broadcasts a failure.
FailureListener = Callable[[str], None]

#: Callback invoked on every worker when the master broadcasts a recovery.
RecoveryListener = Callable[[str], None]


@dataclass(slots=True)
class MasterStats:
    """Failure- and recovery-handling counters."""

    reports_received: int = 0
    broadcasts_sent: int = 0
    duplicate_reports: int = 0
    recovery_reports: int = 0
    recovery_broadcasts: int = 0
    duplicate_recovery_reports: int = 0
    #: Checkpoint-epoch barriers coordinated (effectively-once delivery).
    checkpoint_epochs: int = 0
    #: Live-migration ledger activity (elastic scaling).
    migrations_started: int = 0
    migrations_completed: int = 0
    migrations_aborted: int = 0
    migration_phase_records: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Field snapshot; registered as a metrics-registry group."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


class Master:
    """Receives failure reports and broadcasts them to the cluster.

    The master is deliberately tiny: its only state is the set of machines
    known dead. Detection is the *workers'* job — they notice failures on
    send, which the paper argues beats MapReduce-style periodic pings
    because "a worker is frequently contacted" at streaming rates.
    """

    def __init__(self) -> None:
        self._failed: Set[str] = set()
        self._listeners: List[FailureListener] = []
        self._recovery_listeners: List[RecoveryListener] = []
        self.stats = MasterStats()
        #: Durable live-migration ledger: epoch -> phase record. The
        #: coordinator journals every phase transition here *before*
        #: acting on it, so a master crash mid-migration resumes from
        #: the last recorded phase instead of losing the handoff.
        self._migrations: Dict[int, Dict[str, str]] = {}

    def subscribe(self, listener: FailureListener) -> None:
        """Register a worker/machine callback for failure broadcasts."""
        self._listeners.append(listener)

    def subscribe_recovery(self, listener: RecoveryListener) -> None:
        """Register a worker/machine callback for recovery broadcasts."""
        self._recovery_listeners.append(listener)

    def report_failure(self, machine: str) -> bool:
        """A worker reports that ``machine`` is unreachable.

        Returns True if this was news (a broadcast went out); False for
        duplicate reports, which are absorbed without re-broadcasting.
        """
        self.stats.reports_received += 1
        if machine in self._failed:
            self.stats.duplicate_reports += 1
            return False
        self._failed.add(machine)
        self.stats.broadcasts_sent += 1
        for listener in list(self._listeners):
            listener(machine)
        return True

    def report_recovery(self, machine: str) -> bool:
        """A revived machine reports itself back in service.

        Symmetric to :meth:`report_failure`: if the machine was known
        dead, the master clears it and broadcasts the recovery so every
        worker re-admits it to the shared hash ring. Returns True when a
        broadcast went out; False when the machine was not known dead
        (e.g. it crashed and revived before any sender noticed).
        """
        self.stats.recovery_reports += 1
        if machine not in self._failed:
            self.stats.duplicate_recovery_reports += 1
            return False
        self._failed.discard(machine)
        self.stats.recovery_broadcasts += 1
        for listener in list(self._recovery_listeners):
            listener(machine)
        return True

    def coordinate_epoch(self) -> int:
        """Count one checkpoint-epoch barrier; returns the epoch number.

        Effectively-once delivery periodically flushes every dirty slate
        behind a coordinated barrier and then prunes the replay
        journals. The master is the natural coordinator — it is already
        the control plane for every other cluster-wide transition
        (failure and recovery broadcasts) and stays off the data path.
        """
        self.stats.checkpoint_epochs += 1
        return self.stats.checkpoint_epochs

    # -- live-migration ledger (elastic scaling) ---------------------------
    def begin_migration(self, kind: str, machine: str) -> int:
        """Open a migration epoch in the ledger; returns its id.

        Migration epochs are master-scoped and monotone — the identity
        that makes every later phase record idempotent (recording the
        same (epoch, phase) twice is a no-op resume, not a new step).
        """
        if kind not in ("join", "retire"):
            raise ConfigurationError(
                f"migration kind must be 'join' or 'retire', got {kind!r}")
        self.stats.migrations_started += 1
        epoch = self.stats.migrations_started
        self._migrations[epoch] = {"kind": kind, "machine": machine,
                                   "phase": "plan"}
        return epoch

    def record_migration_phase(self, epoch: int, phase: str) -> None:
        """Journal a phase transition for an open migration epoch.

        Idempotent: re-recording the current phase (a resumed re-drive
        after a master crash) changes nothing but the counter.
        """
        record = self._migrations.get(epoch)
        if record is None or "outcome" in record:
            return
        record["phase"] = phase
        self.stats.migration_phase_records += 1

    def complete_migration(self, epoch: int) -> None:
        """Close a migration epoch as completed."""
        record = self._migrations.get(epoch)
        if record is None or "outcome" in record:
            return
        record["outcome"] = "completed"
        self.stats.migrations_completed += 1

    def abort_migration(self, epoch: int, reason: str) -> None:
        """Close a migration epoch as aborted (donor still owns keys)."""
        record = self._migrations.get(epoch)
        if record is None or "outcome" in record:
            return
        record["outcome"] = "aborted"
        record["reason"] = reason
        self.stats.migrations_aborted += 1

    def migration_phase(self, epoch: int) -> Optional[str]:
        """Last journaled phase for ``epoch`` (resume point), or None."""
        record = self._migrations.get(epoch)
        return None if record is None else record.get("phase")

    def failed_machines(self) -> Set[str]:
        """Machines currently known dead."""
        return set(self._failed)

    def forget(self, machine: str) -> None:
        """Clear a machine's failed status silently (operator override;
        prefer :meth:`report_recovery`, which notifies the cluster)."""
        self._failed.discard(machine)
