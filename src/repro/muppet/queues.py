"""Bounded event queues and overflow policies (Sections 4.1, 4.3).

Each worker "has its own queue for input events", held in memory. Queues
are bounded: "if the queue of B is full (i.e., its size has reached a
pre-specified limit), B will decline to accept the event. In this case A
has to invoke a queue overflow mechanism." The mechanism may

1. **drop** the incoming events (logged as lost),
2. **divert** them to a designated *overflow stream* whose recipients run
   degraded/cheaper processing, or
3. **throttle** — slow the pace of consuming the application's input
   streams (source throttling, Section 5; throttling *inside* the workflow
   risks the 10,000-events deadlock the paper describes, so only sources
   are throttled).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, fields
from typing import Deque, Dict, Generic, Iterator, List, Optional, TypeVar

from repro.errors import ConfigurationError, QueueOverflowError

T = TypeVar("T")


@dataclass(slots=True)
class QueueStats:
    """Counters for one bounded queue."""

    offered: int = 0
    accepted: int = 0
    rejected: int = 0
    peak_depth: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Field snapshot; registered as a metrics-registry view."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


class BoundedQueue(Generic[T]):
    """A FIFO with a hard size limit; full queues decline new items.

    Args:
        max_size: The "pre-specified limit" on queue length; ``None``
            means unbounded (used by the reference executor only).
    """

    def __init__(self, max_size: Optional[int] = 10_000) -> None:
        if max_size is not None and max_size < 1:
            raise ConfigurationError(f"max_size must be >= 1, got {max_size}")
        self.max_size = max_size
        self._items: Deque[T] = deque()
        self.stats = QueueStats()

    def offer(self, item: T) -> bool:
        """Try to enqueue; returns False when the queue declines (full)."""
        self.stats.offered += 1
        if self.max_size is not None and len(self._items) >= self.max_size:
            self.stats.rejected += 1
            return False
        self._items.append(item)
        self.stats.accepted += 1
        if len(self._items) > self.stats.peak_depth:
            self.stats.peak_depth = len(self._items)
        return True

    def put(self, item: T) -> None:
        """Enqueue strictly: raise instead of declining.

        The engines use :meth:`offer` and route declines through an
        :class:`OverflowPolicy`; ``put`` is for callers with *no*
        overflow mechanism — the reference executor's ingestion staging,
        tooling, tests — where a full queue is a hard error.

        Raises:
            QueueOverflowError: The queue is at capacity; the item was
                not enqueued (stats count it as rejected).
        """
        if not self.offer(item):
            raise QueueOverflowError(
                f"queue full at max_size={self.max_size}; strict put() "
                "has no overflow policy to fall back on")

    def poll(self) -> Optional[T]:
        """Dequeue the next item, or None when empty."""
        if not self._items:
            return None
        return self._items.popleft()

    def peek(self) -> Optional[T]:
        """The next item without removing it, or None."""
        return self._items[0] if self._items else None

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    @property
    def full(self) -> bool:
        """True when at capacity."""
        return self.max_size is not None and len(self._items) >= self.max_size

    def drain(self) -> List[T]:
        """Remove and return everything (machine-failure accounting:
        "all events in its queue are also lost", Section 4.3)."""
        items = list(self._items)
        self._items.clear()
        return items


@dataclass(frozen=True)
class OverflowPolicy:
    """What a sender does when the destination queue declines an event.

    Attributes:
        kind: ``"drop"``, ``"divert"``, or ``"throttle"``.
        overflow_sid: Target stream for the ``"divert"`` kind — connected
            to operators implementing "slightly degraded service".
    """

    kind: str = "drop"
    overflow_sid: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in ("drop", "divert", "throttle"):
            raise ConfigurationError(
                f"unknown overflow policy {self.kind!r}; "
                "use drop, divert, or throttle"
            )
        if self.kind == "divert" and not self.overflow_sid:
            raise ConfigurationError(
                "divert policy requires an overflow_sid"
            )

    @classmethod
    def drop(cls) -> "OverflowPolicy":
        """Drop and log — the paper's first option."""
        return cls(kind="drop")

    @classmethod
    def divert(cls, overflow_sid: str) -> "OverflowPolicy":
        """Send to a degraded-service overflow stream."""
        return cls(kind="divert", overflow_sid=overflow_sid)

    @classmethod
    def throttle(cls) -> "OverflowPolicy":
        """Slow the sources until the hotspot catches up (Section 5)."""
        return cls(kind="throttle")


class SourceThrottle:
    """Hysteresis controller for source throttling (Section 5).

    "When Muppet detects a hotspot, it can slow down the pace at which it
    consumes events from its input streams ... to allow until the hotspot
    updater has a chance to catch up." Throttling anywhere else can
    deadlock (the 10,000-events example), so only sources consult this.

    Args:
        high_watermark: Max queue depth (fraction of capacity) that pauses
            the sources.
        low_watermark: Depth fraction below which sources resume.
    """

    def __init__(self, high_watermark: float = 0.9,
                 low_watermark: float = 0.5) -> None:
        if not 0.0 < low_watermark < high_watermark <= 1.0:
            raise ConfigurationError(
                f"need 0 < low ({low_watermark}) < high ({high_watermark}) "
                "<= 1"
            )
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.paused = False
        self.pause_count = 0
        self.paused_time_s = 0.0
        self._paused_since: Optional[float] = None

    def observe(self, depth_fraction: float, now: float) -> bool:
        """Update state from the worst queue-depth fraction; returns
        True while sources should hold off."""
        if not self.paused and depth_fraction >= self.high_watermark:
            self.pause(now)
        elif self.paused and depth_fraction <= self.low_watermark:
            self.resume(now)
        return self.paused

    def pause(self, now: float) -> None:
        """Pause the sources now (idempotent).

        The watermark path goes through :meth:`observe`; the adaptive
        backpressure controller drives the throttle tier through
        ``pause``/``resume`` directly, sharing the same accounting.
        """
        if not self.paused:
            self.paused = True
            self.pause_count += 1
            self._paused_since = now

    def resume(self, now: float) -> None:
        """Resume the sources now (idempotent)."""
        if self.paused:
            self.paused = False
            if self._paused_since is not None:
                self.paused_time_s += now - self._paused_since
                self._paused_since = None

    def duty_cycle(self, now: float) -> float:
        """Fraction of ``[0, now]`` the sources spent paused.

        Includes any still-open pause interval; 0.0 before time starts.
        """
        if now <= 0.0:
            return 0.0
        paused = self.paused_time_s
        if self.paused and self._paused_since is not None:
            paused += now - self._paused_since
        return min(1.0, paused / now)

    def finish(self, now: float) -> None:
        """Close any open pause interval at end of run (accounting)."""
        if self.paused and self._paused_since is not None:
            self.paused_time_s += now - self._paused_since
            self._paused_since = None
