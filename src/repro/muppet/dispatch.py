"""Muppet 2.0's primary/secondary queue dispatch (Section 4.5).

"When an event arrives at the machine, it is hashed by event key and
destination updater function into a primary event queue and a secondary
event queue. If the thread for either queue is already processing this
event key for this update function, then the event is placed in the
corresponding queue. Otherwise, the event is placed in the primary queue
unless the secondary queue is significantly shorter, in which case the
event is placed in the secondary queue instead."

Benefits reproduced here and measured by bench E4: at most two queues are
locked per dispatch; events of one (key, updater) never scatter past two
threads (slate contention ≤ 2); hot primaries can spill to the secondary.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Optional, Sequence, Tuple

from repro.cluster.hashring import MEMO_MAX_ENTRIES, stable_hash64
from repro.errors import ConfigurationError

#: The work item identity the dispatcher reasons about.
KeyFn = Tuple[str, str]  # (event key, destination function)


@dataclass(slots=True)
class DispatchStats:
    """Counters proving the Section 4.5 claims."""

    dispatched: int = 0
    to_primary: int = 0
    to_secondary: int = 0
    affinity_hits: int = 0       # routed to the thread already on this key
    spills: int = 0              # secondary chosen because primary was long
    queue_locks: int = 0         # ≤ 2 per dispatch, by construction
    memo_hits: int = 0           # candidate pairs served from the memo
    memo_misses: int = 0         # candidate pairs that cost two hashes

    def as_dict(self) -> Dict[str, int]:
        """Field snapshot; summed across dispatchers by the registry."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


class TwoChoiceDispatcher:
    """Chooses between a primary and a secondary thread queue.

    Args:
        num_threads: Worker threads on the machine.
        significant_factor: The secondary is chosen when
            ``primary_len >= significant_factor * (secondary_len + 1)`` —
            our concrete reading of "significantly shorter".
        memoize: Cache the (primary, secondary) pair per (key, function)
            — on by default; the ablation knob for the perf gate and the
            determinism tests.
    """

    def __init__(self, num_threads: int,
                 significant_factor: float = 2.0,
                 memoize: bool = True) -> None:
        if num_threads < 1:
            raise ConfigurationError("num_threads must be >= 1")
        if significant_factor < 1.0:
            raise ConfigurationError("significant_factor must be >= 1.0")
        self.num_threads = num_threads
        self.significant_factor = significant_factor
        self.stats = DispatchStats()
        self._memoize = memoize
        self._memo: Dict[KeyFn, Tuple[int, int]] = {}

    def reset(self) -> None:
        """Forget memoized placements. Called when the machine retires
        from the ring so a later re-admission starts with a cold
        dispatcher, indistinguishable from a freshly built machine."""
        self._memo.clear()

    def candidates(self, key: str, function: str) -> Tuple[int, int]:
        """The (primary, secondary) thread indexes for a (key, function).

        Both are stable hashes; with one thread they coincide, otherwise
        they are guaranteed distinct. The pair is pure in (key, function)
        and thread count, so it is memoized: repeat keys skip both blake2b
        digests (bounded table, wholesale clear when full).
        """
        if self.num_threads == 1:
            return 0, 0
        if self._memoize:
            memo_key = (key, function)
            pair = self._memo.get(memo_key)
            if pair is not None:
                self.stats.memo_hits += 1
                return pair
        primary = stable_hash64(f"p\x00{function}\x00{key}") % self.num_threads
        secondary = stable_hash64(f"s\x00{function}\x00{key}") % self.num_threads
        if secondary == primary:
            secondary = (secondary + 1) % self.num_threads
        if self._memoize:
            self.stats.memo_misses += 1
            if len(self._memo) >= MEMO_MAX_ENTRIES:
                self._memo.clear()
            self._memo[memo_key] = (primary, secondary)
        return primary, secondary

    def choose(
        self,
        key: str,
        function: str,
        queue_lengths: Sequence[int],
        processing: Sequence[Optional[KeyFn]],
    ) -> int:
        """Pick the destination thread index for one incoming event.

        Args:
            key: Event key.
            function: Destination map/update function name.
            queue_lengths: Current length of each thread's queue.
            processing: The (key, function) each thread is executing right
                now, or None when idle.

        Returns:
            The chosen thread index (always the primary or the secondary).
        """
        primary, secondary = self.candidates(key, function)
        self.stats.dispatched += 1
        self.stats.queue_locks += 1 if primary == secondary else 2

        item: KeyFn = (key, function)
        if processing[primary] == item:
            self.stats.to_primary += 1
            self.stats.affinity_hits += 1
            return primary
        if primary != secondary and processing[secondary] == item:
            self.stats.to_secondary += 1
            self.stats.affinity_hits += 1
            return secondary

        if (primary != secondary
                and queue_lengths[primary]
                >= self.significant_factor * (queue_lengths[secondary] + 1)):
            self.stats.to_secondary += 1
            self.stats.spills += 1
            return secondary
        self.stats.to_primary += 1
        return primary

    def choose_workers(self, key: str, function: str, workers: Sequence):  # hot-path
        """Pick the destination worker for one incoming event.

        The fast-path twin of :meth:`choose`: instead of the caller
        materializing full ``queue_lengths``/``processing`` lists (one
        allocation and O(threads) attribute chases per event), only the
        two candidate workers are inspected directly. ``workers`` must
        expose ``queue`` (sized) and ``current``. Decisions and stats
        updates are identical to :meth:`choose` by construction — the
        determinism tests assert the equivalence.
        """
        primary, secondary = self.candidates(key, function)
        stats = self.stats
        stats.dispatched += 1
        if primary == secondary:
            stats.queue_locks += 1
            worker = workers[primary]
            if worker.current == (key, function):
                stats.affinity_hits += 1
            stats.to_primary += 1
            return worker
        stats.queue_locks += 2
        item = (key, function)
        first = workers[primary]
        if first.current == item:
            stats.to_primary += 1
            stats.affinity_hits += 1
            return first
        second = workers[secondary]
        if second.current == item:
            stats.to_secondary += 1
            stats.affinity_hits += 1
            return second
        if len(first.queue) >= self.significant_factor * (len(second.queue) + 1):
            stats.to_secondary += 1
            stats.spills += 1
            return second
        stats.to_primary += 1
        return first


class SingleChoiceDispatcher:
    """Muppet 1.0 routing on one machine: a key maps to exactly one worker.

    "Only one worker can process events of the same key for a particular
    update function, ensuring no slate contention" — but also creating the
    hotspot problem that motivated the two-choice design. Kept as the
    explicit baseline for bench E4.
    """

    def __init__(self, num_threads: int, memoize: bool = True) -> None:
        if num_threads < 1:
            raise ConfigurationError("num_threads must be >= 1")
        self.num_threads = num_threads
        self.stats = DispatchStats()
        self._memoize = memoize
        self._memo: Dict[KeyFn, int] = {}

    def reset(self) -> None:
        """Forget memoized placements (see TwoChoiceDispatcher.reset)."""
        self._memo.clear()

    def choose(
        self,
        key: str,
        function: str,
        queue_lengths: Sequence[int],
        processing: Sequence[Optional[KeyFn]],
    ) -> int:
        """The unique thread owning (key, function)."""
        self.stats.dispatched += 1
        self.stats.queue_locks += 1
        self.stats.to_primary += 1
        if self._memoize:
            memo_key = (key, function)
            thread = self._memo.get(memo_key)
            if thread is not None:
                self.stats.memo_hits += 1
                return thread
        thread = stable_hash64(f"p\x00{function}\x00{key}") % self.num_threads
        if self._memoize:
            self.stats.memo_misses += 1
            if len(self._memo) >= MEMO_MAX_ENTRIES:
                self._memo.clear()
            self._memo[memo_key] = thread
        return thread

    def choose_workers(self, key: str, function: str, workers: Sequence):  # hot-path
        """Fast-path twin of :meth:`choose` (see TwoChoiceDispatcher):
        returns the owning worker directly, stats identical."""
        return workers[self.choose(key, function, (), ())]
