"""Event replay — the paper's named future work (Section 4.3).

"The event that failed to reach B is lost (and logged as lost) ...
Currently, low latency is far more important ... Developing a replay
capability to recover the lost events is a subject of future work."

This module implements that capability as an opt-in extension: senders
journal recently sent events per destination machine; when the master
broadcasts a machine failure, journal entries destined for the dead
machine within a time horizon are re-sent through the (now rerouted)
ring.

Semantics become **at-least-once** for the horizon window: events that
the dead machine had already processed may be replayed and processed
again, so counting applications can over-count by up to the horizon's
in-flight volume. Without replay, Muppet's native semantics are
at-most-once (bounded loss). Bench E6 quantifies both sides.

A third mode builds on this journal: **effectively-once** delivery
(``SimConfig.delivery_semantics``) keeps the journal *un*-horizoned
(``horizon_s=None``) and instead prunes it at coordinated checkpoint
epochs, after every dirty slate — including its per-upstream dedup
watermarks — has been flushed. Replayed events whose sequence ids fall
at or below a slate's persisted watermark are skipped (counted in
:attr:`ReplayStats.deduped`), so replays become idempotent and counting
applications recover exact totals. Bench E6e compares all three modes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError


@dataclass(slots=True)
class ReplayStats:
    """Journal accounting."""

    recorded: int = 0
    pruned: int = 0
    replayed: int = 0
    #: Replayed events skipped by a slate's dedup watermark
    #: (effectively-once delivery only; 0 otherwise).
    deduped: int = 0
    #: Entries re-addressed to a new destination at migration cutover
    #: (live slate handoff; 0 otherwise).
    readdressed: int = 0


class ReplayJournal:
    """A bounded journal of sent events.

    Args:
        horizon_s: How far back replay reaches. Should cover failure
            *detection* time plus queueing delay on the dead machine;
            longer horizons recover more but duplicate more. ``None``
            disables time-based pruning entirely — the effectively-once
            mode, where the runtime prunes at checkpoint epochs via
            :meth:`prune_before` instead.
        max_entries: Hard memory bound; oldest entries drop first. Under
            effectively-once this bound should comfortably exceed one
            epoch of sends: an evicted entry can no longer be replayed,
            which degrades exactness back to at-most-once for it.
    """

    def __init__(self, horizon_s: Optional[float] = 0.25,
                 max_entries: int = 200_000) -> None:
        if horizon_s is not None and horizon_s <= 0:
            raise ConfigurationError(
                "horizon_s must be positive (or None for epoch-pruned "
                "journals)")
        if max_entries < 1:
            raise ConfigurationError("max_entries must be >= 1")
        self.horizon_s = horizon_s
        self.max_entries = max_entries
        #: (sent_at, destination machine, payload) in send order.
        self._entries: Deque[Tuple[float, str, Any]] = deque()
        #: Migration holds: token -> earliest timestamp that must stay
        #: replayable. While any hold is active, pruning (horizon- or
        #: epoch-based) cannot advance past the oldest held timestamp.
        self._holds: Dict[str, float] = {}
        self.stats = ReplayStats()

    @classmethod
    def epoch_pruned(cls, max_entries: int = 200_000) -> "ReplayJournal":
        """A journal with no time horizon, pruned only at checkpoint
        epochs (the effectively-once configuration)."""
        return cls(horizon_s=None, max_entries=max_entries)

    def record(self, dest_machine: str, payload: Any, now: float) -> None:
        """Journal one sent event."""
        self._prune(now)
        if len(self._entries) >= self.max_entries:
            self._entries.popleft()
            self.stats.pruned += 1
        self._entries.append((now, dest_machine, payload))
        self.stats.recorded += 1

    def _prune(self, now: float) -> None:
        if self.horizon_s is None:
            return
        cutoff = self._clamp_to_holds(now - self.horizon_s)
        while self._entries and self._entries[0][0] < cutoff:
            self._entries.popleft()
            self.stats.pruned += 1

    def _clamp_to_holds(self, cutoff: float) -> float:
        """Cap a prune cutoff at the oldest active migration hold."""
        if self._holds:
            cutoff = min(cutoff, min(self._holds.values()))
        return cutoff

    # -- migration holds (elastic scaling) --------------------------------
    def hold(self, token: str, since_ts: float) -> None:
        """Pin entries recorded at or after ``since_ts`` against pruning.

        Taken at migration plan time and released after the receiver's
        ack. Between cutover and that ack, the freshest state of every
        handed-off slate lives only in the receiver's cache, so the
        journaled updates covering it must outlive any checkpoint-epoch
        prune that fires mid-migration — otherwise a receiver crash in
        that window would lose updates the donor had already applied
        (the prune-too-early window). Re-holding an existing token
        keeps the earlier timestamp.
        """
        existing = self._holds.get(token)
        if existing is None or since_ts < existing:
            self._holds[token] = since_ts

    def release(self, token: str) -> None:
        """Drop a migration hold; idempotent for unknown tokens."""
        self._holds.pop(token, None)

    def readdress(self, resolve: Callable[[str, Any], Optional[str]]) -> int:
        """Rewrite entry destinations at migration cutover.

        ``resolve(dest_machine, payload)`` returns the new destination
        for an entry, or ``None`` to leave it unchanged. The cutover
        passes a ring-lookup closure, so journaled events whose keys
        just changed owner replay to the *new* owner: a later crash of
        that receiver replays exactly the updates whose effects rode the
        migrated blobs, and the blobs' dedup watermarks make re-applying
        them idempotent. Returns the number of entries rewritten.
        """
        changed = 0
        rewritten: Deque[Tuple[float, str, Any]] = deque()
        for sent_at, machine, payload in self._entries:
            new_dest = resolve(machine, payload)
            if new_dest is not None and new_dest != machine:
                rewritten.append((sent_at, new_dest, payload))
                changed += 1
            else:
                rewritten.append((sent_at, machine, payload))
        self._entries = rewritten
        self.stats.readdressed += changed
        return changed

    def prune_before(self, cutoff: float) -> int:
        """Drop every entry recorded strictly before ``cutoff``.

        The checkpoint-epoch hook: once a coordinated flush barrier has
        persisted every slate (and its watermarks), entries old enough
        that their effects are certainly covered by that barrier can be
        forgotten — this is what bounds journal memory without a time
        horizon. Returns the number of entries dropped.

        Migration-aware: the cutoff is clamped to the oldest active
        :meth:`hold`, so checkpoint epochs that complete while a handoff
        is in flight retain every entry the handoff may still need.
        """
        cutoff = self._clamp_to_holds(cutoff)
        dropped = 0
        while self._entries and self._entries[0][0] < cutoff:
            self._entries.popleft()
            dropped += 1
        self.stats.pruned += dropped
        return dropped

    def take_for(self, dest_machine: str, now: float) -> List[Any]:
        """Remove and return journaled payloads sent to ``dest_machine``
        within the horizon (oldest first)."""
        self._prune(now)
        kept: Deque[Tuple[float, str, Any]] = deque()
        replayable: List[Any] = []
        for sent_at, machine, payload in self._entries:
            if machine == dest_machine:
                replayable.append(payload)
            else:
                kept.append((sent_at, machine, payload))
        self._entries = kept
        self.stats.replayed += len(replayable)
        return replayable

    def __len__(self) -> int:
        return len(self._entries)
