"""The Muppet 1.0 worker pair: Perl conductor + JVM task processor (§4.5).

"Each worker was implemented as two tightly coupled processes: a Perl
process called a conductor, and a process running the JVM called a task
processor. The conductor is in charge of all 'Muppet logistics,'
including retrieving the next event from its queue of incoming events;
sending the event (together with a slate, if necessary) to the JVM task
processor; receiving the output events (and a modified slate if
applicable) from the JVM task processor; hashing the output events to
their appropriate destinations; enqueueing the events at their
destination workers' queues."

This module makes the pair concrete: a framed message protocol between
the two "processes" (length-prefixed JSON frames over an in-memory pipe),
with every byte crossing the boundary counted. The simulator's Muppet 1.0
engine uses :class:`IPCAccountant` to charge a byte-accurate
serialization cost per event — which is how the §4.5 complaint "Passing
data between processes ... can be computationally wasteful" becomes
measurable (bench E3).
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.event import Event
from repro.errors import ConfigurationError, ReproError

#: Frame header: 4-byte big-endian payload length.
_HEADER = struct.Struct(">I")


class FramingError(ReproError):
    """A malformed frame crossed the conductor/task-processor pipe."""


def encode_frame(message: Dict[str, Any]) -> bytes:
    """Length-prefix one JSON message, as the pipe protocol requires."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    return _HEADER.pack(len(payload)) + payload


def decode_frames(buffer: bytes) -> Tuple[List[Dict[str, Any]], bytes]:
    """Split a byte buffer into complete frames plus the unparsed tail."""
    messages: List[Dict[str, Any]] = []
    offset = 0
    while len(buffer) - offset >= _HEADER.size:
        (length,) = _HEADER.unpack_from(buffer, offset)
        start = offset + _HEADER.size
        if len(buffer) - start < length:
            break
        try:
            messages.append(json.loads(buffer[start:start + length]))
        except ValueError as exc:
            raise FramingError(f"corrupt frame at offset {offset}: "
                               f"{exc}") from exc
        offset = start + length
    return messages, buffer[offset:]


@dataclass
class PipeStats:
    """Bytes and frames crossing the process boundary, per direction."""

    frames_to_task: int = 0
    bytes_to_task: int = 0
    frames_to_conductor: int = 0
    bytes_to_conductor: int = 0

    @property
    def total_bytes(self) -> int:
        """All IPC traffic for this worker pair."""
        return self.bytes_to_task + self.bytes_to_conductor


class TaskProcessor:
    """The JVM side: runs the operator on a decoded request frame.

    "The JVM task processor's sole task is to run the map or update code
    to process the event passed to it by the conductor, then send the
    output events back to the conductor."
    """

    def __init__(self, run_operator) -> None:
        """``run_operator(event_dict, slate_dict_or_None) ->
        (output_event_dicts, new_slate_dict_or_None)``."""
        self._run_operator = run_operator

    def handle(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Process one request frame; return the response frame body."""
        outputs, new_slate = self._run_operator(request["event"],
                                                request.get("slate"))
        response: Dict[str, Any] = {"outputs": outputs}
        if new_slate is not None:
            response["slate"] = new_slate
        return response


class Conductor:
    """The Perl side: frames requests, parses responses, counts bytes.

    One :class:`Conductor` + one :class:`TaskProcessor` = one Muppet 1.0
    worker. The conductor serializes the event (and the slate, for
    updaters) across the pipe and deserializes the outputs (and modified
    slate) coming back — the double-serialization Muppet 2.0 eliminated.
    """

    def __init__(self, task: TaskProcessor) -> None:
        self._task = task
        self.stats = PipeStats()
        self._inbound = b""

    def process_event(
        self,
        event: Event,
        slate: Optional[Dict[str, Any]] = None,
        flags: Optional[Dict[str, Any]] = None,
    ) -> Tuple[List[Dict[str, Any]], Optional[Dict[str, Any]]]:
        """Round-trip one event through the task processor.

        Args:
            event: The event to process.
            slate: Current slate contents for updaters.
            flags: Extra request fields merged into the event frame
                (e.g. timer markers).

        Returns ``(output event dicts, modified slate or None)``.
        """
        event_body: Dict[str, Any] = {"sid": event.sid, "ts": event.ts,
                                      "key": event.key,
                                      "value": event.value}
        if flags:
            event_body.update(flags)
        request: Dict[str, Any] = {"event": event_body}
        if slate is not None:
            request["slate"] = slate
        frame = encode_frame(request)
        self.stats.frames_to_task += 1
        self.stats.bytes_to_task += len(frame)

        # The "pipe": decode on the far side, run, encode the response.
        decoded, rest = decode_frames(frame)
        if rest or len(decoded) != 1:
            raise FramingError("request did not decode to one frame")
        response_body = self._task.handle(decoded[0])
        response = encode_frame(response_body)
        self.stats.frames_to_conductor += 1
        self.stats.bytes_to_conductor += len(response)

        messages, self._inbound = decode_frames(self._inbound + response)
        if len(messages) != 1:
            raise FramingError("response did not decode to one frame")
        body = messages[0]
        return body.get("outputs", []), body.get("slate")


@dataclass(frozen=True)
class IPCAccountant:
    """Byte-accurate IPC cost model for the simulator's 1.0 engine.

    Cost per event = ``fixed_s`` (process wakeups, syscalls) plus
    ``per_byte_s`` times the frame bytes both ways: the event in, the
    slate in and back (updaters), the outputs back.
    """

    fixed_s: float = 120e-6
    per_byte_s: float = 4e-9

    def __post_init__(self) -> None:
        if self.fixed_s < 0 or self.per_byte_s < 0:
            raise ConfigurationError("IPC costs must be >= 0")

    def cost(self, event_bytes: int, slate_bytes: int = 0,
             output_bytes: int = 0) -> float:
        """Seconds of IPC work for one invocation."""
        crossing = event_bytes + 2 * slate_bytes + output_bytes + 48
        return self.fixed_s + self.per_byte_s * crossing
