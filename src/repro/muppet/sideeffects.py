"""Side effects from map/update functions (Section 5).

Two pieces of Section 5 operational experience, as library support:

1. **Bulk slate dumps** — "we have advised bulk-dump users to log the
   relevant slate data that they wish to process in bulk later as a part
   of the applications' update functions. This approach allows users to
   write less than the entire slate ... and provides steady-state write
   behavior ... These writes can be streamed ... into HDFS, for example,
   if further processing in Hadoop is desired."
   :class:`SlateLogSink` is that append-only stream: updaters call
   ``sink.log(key, record)`` from ``update``; consumers read partitioned
   append files later.

2. **Shared-logger contention** — "asking mappers and updaters to write
   to a common log can introduce lock contention for the common logger,
   thereby dramatically slowing down the workers."
   :class:`SharedLogger` (one lock for everybody) and
   :class:`PerWorkerLogger` (a lock-free log per worker, merged on read)
   let bench E16 measure exactly that slowdown on real threads.
"""

from __future__ import annotations

import io
import json
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional

from repro.errors import ConfigurationError


class SlateLogSink:
    """Append-only, partitioned log for steady-state slate dumps.

    Records are JSON lines of ``{"ts", "updater", "key", "data"}``,
    partitioned by updater (one file/buffer per updater, like per-table
    HDFS directories). Thread-safe; writes are buffered per partition so
    the I/O pattern is steady-state sequential append — the behaviour
    the paper prefers over bulk HTTP scans.

    Args:
        directory: Where partitions are persisted; ``None`` keeps them
            in memory (tests, simulation).
    """

    def __init__(self, directory: Optional[Path] = None) -> None:
        self._directory = Path(directory) if directory else None
        if self._directory is not None:
            self._directory.mkdir(parents=True, exist_ok=True)
        self._buffers: Dict[str, io.StringIO] = {}
        self._lock = threading.Lock()
        self.records_written = 0

    def log(self, updater: str, key: str, data: Any,
            ts: float = 0.0) -> None:
        """Append one record from inside an update function.

        ``data`` is typically a *subset* of the slate ("less than the
        entire slate"), chosen by the application.
        """
        line = json.dumps({"ts": ts, "updater": updater, "key": key,
                           "data": data}, separators=(",", ":"))
        with self._lock:
            buffer = self._buffers.get(updater)
            if buffer is None:
                buffer = io.StringIO()
                self._buffers[updater] = buffer
            buffer.write(line)
            buffer.write("\n")
            self.records_written += 1

    def flush(self) -> List[Path]:
        """Persist all partitions (no-op paths in memory mode)."""
        written: List[Path] = []
        if self._directory is None:
            return written
        with self._lock:
            for updater, buffer in sorted(self._buffers.items()):
                path = self._directory / f"{updater}.jsonl"
                with path.open("a", encoding="utf-8") as handle:
                    handle.write(buffer.getvalue())
                buffer.seek(0)
                buffer.truncate()
                written.append(path)
        return written

    def read(self, updater: str) -> Iterator[Dict[str, Any]]:
        """Read a partition back (memory + any persisted file)."""
        if self._directory is not None:
            path = self._directory / f"{updater}.jsonl"
            if path.exists():
                with path.open("r", encoding="utf-8") as handle:
                    for line in handle:
                        if line.strip():
                            yield json.loads(line)
        with self._lock:
            buffer = self._buffers.get(updater)
            content = buffer.getvalue() if buffer else ""
        for line in content.splitlines():
            if line.strip():
                yield json.loads(line)


@dataclass
class LoggerStats:
    """Contention accounting for the logger comparison."""

    records: int = 0
    lock_wait_s: float = 0.0


class SharedLogger:
    """One log, one lock — the anti-pattern the paper warns about.

    ``write_cost_s`` simulates the formatting/IO time spent *inside* the
    critical section, which is what makes the contention bite.
    """

    def __init__(self, write_cost_s: float = 20e-6) -> None:
        if write_cost_s < 0:
            raise ConfigurationError("write_cost_s must be >= 0")
        self._lock = threading.Lock()
        self._lines: List[str] = []
        self._write_cost_s = write_cost_s
        self.stats = LoggerStats()

    def log(self, line: str) -> None:
        """Append under the shared lock (measures wait time)."""
        start = time.perf_counter()  # noqa: MUP001 -- measures real lock contention (the point of this class)
        with self._lock:
            waited = time.perf_counter() - start  # noqa: MUP001 -- measures real lock contention (the point of this class)
            if self._write_cost_s:
                time.sleep(self._write_cost_s)  # noqa: MUP001 -- simulates real IO cost inside the critical section
            self._lines.append(line)
            self.stats.records += 1
            self.stats.lock_wait_s += waited

    def lines(self) -> List[str]:
        """All logged lines."""
        with self._lock:
            return list(self._lines)


class PerWorkerLogger:
    """One private log per worker; merged on read — contention-free."""

    def __init__(self, workers: int, write_cost_s: float = 20e-6) -> None:
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        self._logs: List[List[str]] = [[] for _ in range(workers)]
        self._write_cost_s = write_cost_s
        self.stats = LoggerStats()
        self._stats_lock = threading.Lock()

    def log(self, worker_index: int, line: str) -> None:
        """Append to the worker's private log (no shared lock)."""
        if self._write_cost_s:
            time.sleep(self._write_cost_s)  # noqa: MUP001 -- simulates real IO cost (contention comparison bench)
        self._logs[worker_index].append(line)
        with self._stats_lock:
            self.stats.records += 1

    def lines(self) -> List[str]:
        """All lines, merged across workers."""
        merged: List[str] = []
        for log in self._logs:
            merged.extend(log)
        return merged
