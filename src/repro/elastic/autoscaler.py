"""Autoscaler policy: planful cluster growth/shrink under load.

Muppet's hash ring reacts to *failures* (Section 4.3: route around a
dead machine, re-admit it behind a flush barrier), but the paper's
production deployments were resized by hand. ROADMAP item 3 asks for the
missing half: a policy that watches the same health signals the overload
controller already smooths — worst queue fraction, p99-over-budget,
dirty backlog — and *planfully* adds or removes machines at runtime.

The policy mirrors :class:`repro.shedding.controller.BackpressureController`:
EWMA-smoothed signals, immediate escalation (scale up the moment
pressure crosses the threshold), and deliberate de-escalation (scale
down only after the calm signal has held for ``hold_s`` and any
cooldown from the previous decision has expired). The asymmetry is the
point — adding capacity late costs latency, removing it early costs a
thrash of migrations.

The autoscaler only *decides*; the runtime executes decisions through
the live-migration protocol in :mod:`repro.elastic.migration` (or the
legacy flush-barrier join when migration is not configured).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Optional

from repro.errors import ConfigurationError
from repro.obs.registry import Ewma


@dataclass(frozen=True)
class AutoscalerConfig:
    """Tuning knobs for the elastic scaling policy.

    Attributes:
        min_machines: Never shrink below this many live machines.
        max_machines: Never grow above this many live machines.
        check_period_s: How often the runtime samples the signals.
        ewma_alpha: Smoothing factor for the worst-queue-fraction EWMA
            (same role as the shedding controller's alpha).
        scale_up_queue: Smoothed worst queue fraction at or above which
            the cluster grows.
        scale_down_queue: Smoothed worst queue fraction at or below
            which the cluster is a shrink candidate; must sit strictly
            below ``scale_up_queue`` (hysteresis band).
        p99_budget_s: Optional p99 end-to-end latency budget; exceeding
            it escalates to grow even when queues look shallow. Shrink
            additionally requires p99 at or under half the budget.
        dirty_backlog_high: Optional per-machine dirty-slate backlog
            that escalates to grow (flush pressure).
        cooldown_s: Minimum time between two scaling decisions.
        hold_s: How long the calm signal must hold before a shrink.
        grow_step: Machines added per scale-up decision.
        shrink_step: Machines retired per scale-down decision.
        cores: Worker cores for machines the autoscaler adds.
    """

    min_machines: int = 2
    max_machines: int = 16
    check_period_s: float = 0.25
    ewma_alpha: float = 0.4
    scale_up_queue: float = 0.60
    scale_down_queue: float = 0.15
    p99_budget_s: Optional[float] = None
    dirty_backlog_high: Optional[int] = None
    cooldown_s: float = 1.0
    hold_s: float = 1.0
    grow_step: int = 1
    shrink_step: int = 1
    cores: int = 4

    def __post_init__(self) -> None:
        if self.min_machines < 1:
            raise ConfigurationError(
                f"min_machines must be >= 1, got {self.min_machines!r}")
        if self.max_machines < self.min_machines:
            raise ConfigurationError(
                f"max_machines ({self.max_machines!r}) must be >= "
                f"min_machines ({self.min_machines!r})")
        if self.check_period_s <= 0:
            raise ConfigurationError(
                "check_period_s must be positive, got "
                f"{self.check_period_s!r}")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ConfigurationError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha!r}")
        if not 0.0 < self.scale_up_queue <= 1.0:
            raise ConfigurationError(
                "scale_up_queue must be in (0, 1], got "
                f"{self.scale_up_queue!r}")
        if not 0.0 <= self.scale_down_queue < self.scale_up_queue:
            raise ConfigurationError(
                f"scale_down_queue ({self.scale_down_queue!r}) must be "
                f">= 0 and strictly below scale_up_queue "
                f"({self.scale_up_queue!r}) — the hysteresis band is "
                "what prevents grow/shrink flapping")
        if self.p99_budget_s is not None and self.p99_budget_s <= 0:
            raise ConfigurationError(
                f"p99_budget_s must be positive, got {self.p99_budget_s!r}")
        if (self.dirty_backlog_high is not None
                and self.dirty_backlog_high <= 0):
            raise ConfigurationError(
                "dirty_backlog_high must be positive, got "
                f"{self.dirty_backlog_high!r}")
        if self.cooldown_s < 0:
            raise ConfigurationError(
                f"cooldown_s must be >= 0, got {self.cooldown_s!r}")
        if self.hold_s < 0:
            raise ConfigurationError(
                f"hold_s must be >= 0, got {self.hold_s!r}")
        if self.grow_step < 1:
            raise ConfigurationError(
                f"grow_step must be >= 1, got {self.grow_step!r}")
        if self.shrink_step < 1:
            raise ConfigurationError(
                f"shrink_step must be >= 1, got {self.shrink_step!r}")
        if self.cores < 1:
            raise ConfigurationError(
                f"cores must be >= 1, got {self.cores!r}")


@dataclass(slots=True)
class AutoscalerCounters:
    """Decision accounting, registered under the ``elastic`` family."""

    observations: int = 0
    scale_ups: int = 0
    scale_downs: int = 0
    blocked_cooldown: int = 0
    blocked_bounds: int = 0
    blocked_migration: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Field snapshot for the metrics registry."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass(frozen=True)
class ScaleDecision:
    """One autoscaler verdict: grow or shrink by ``count`` machines."""

    direction: str  # "grow" | "shrink"
    count: int


class Autoscaler:
    """EWMA-smoothed scale-up/scale-down state machine.

    Pure policy: :meth:`observe` folds one sample of the cluster health
    signals and returns a :class:`ScaleDecision` when action is due, or
    ``None``. The caller (the sim runtime's autoscaler tick) is
    responsible for victim selection and for actually executing the
    membership change.
    """

    def __init__(self, config: AutoscalerConfig) -> None:
        self.config = config
        self.counters = AutoscalerCounters()
        self._queue_ewma = Ewma("elastic.queue_ewma", config.ewma_alpha)
        #: Start of the current uninterrupted calm stretch, or None.
        self._calm_since: Optional[float] = None
        self._cooldown_until = 0.0

    @property
    def smoothed_queue(self) -> float:
        """Current EWMA of the worst queue fraction (observability)."""
        return self._queue_ewma.value

    def observe(
        self,
        now: float,
        *,
        worst_queue_fraction: float,
        p99_s: Optional[float],
        dirty_backlog: int,
        live_machines: int,
    ) -> Optional[ScaleDecision]:
        """Fold one sample; return a decision when one is due.

        Escalation is immediate (modulo cooldown and the max bound);
        de-escalation waits out ``hold_s`` of continuous calm first.
        A sample in the hysteresis band resets the calm clock.
        """
        cfg = self.config
        self.counters.observations += 1
        smoothed = self._queue_ewma.observe(worst_queue_fraction)

        over = smoothed >= cfg.scale_up_queue
        if (cfg.p99_budget_s is not None and p99_s is not None
                and p99_s > cfg.p99_budget_s):
            over = True
        if (cfg.dirty_backlog_high is not None
                and dirty_backlog > cfg.dirty_backlog_high):
            over = True

        if over:
            self._calm_since = None
            if now < self._cooldown_until:
                self.counters.blocked_cooldown += 1
                return None
            if live_machines >= cfg.max_machines:
                self.counters.blocked_bounds += 1
                return None
            self._cooldown_until = now + cfg.cooldown_s
            self.counters.scale_ups += 1
            count = min(cfg.grow_step, cfg.max_machines - live_machines)
            return ScaleDecision("grow", count)

        calm = smoothed <= cfg.scale_down_queue
        if calm and cfg.p99_budget_s is not None and p99_s is not None:
            calm = p99_s <= cfg.p99_budget_s * 0.5
        if calm and cfg.dirty_backlog_high is not None:
            calm = dirty_backlog <= cfg.dirty_backlog_high // 2
        if not calm:
            self._calm_since = None
            return None

        if self._calm_since is None:
            self._calm_since = now
            return None
        if now - self._calm_since < cfg.hold_s:
            return None
        if now < self._cooldown_until:
            self.counters.blocked_cooldown += 1
            return None
        if live_machines <= cfg.min_machines:
            self.counters.blocked_bounds += 1
            return None
        self._cooldown_until = now + cfg.cooldown_s
        self._calm_since = None
        self.counters.scale_downs += 1
        count = min(cfg.shrink_step, live_machines - cfg.min_machines)
        return ScaleDecision("shrink", count)
