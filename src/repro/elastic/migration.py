"""Crash-safe live slate migration: incremental handoff between owners.

The paper re-admits a recovered machine behind a cluster-wide flush
barrier (Section 4.3): every dirty slate is flushed, the ring flips, and
the new owner re-reads its slates from the key-value store. That is a
*full rehydration* — correct, but it moves every byte through the store
twice and stalls the flush path. This module implements the incremental
alternative for planned membership changes (elastic scale-up/down):

1. **snapshot** — the donor streams the encoded blobs of every resident
   slate that will change owner, while still owning the keys. Events
   keep flowing; nothing stops.
2. **delta_stream** — slates that changed since their last export
   (detected by the slate's monotone ``version`` counter, the same
   counter that drives encode-once caching) are re-streamed in rounds
   until the changed set is small or the round budget is spent.
3. **cutover** — at a single simulated instant the donor exports the
   final deltas, the receiver installs every staged blob (dirty, so it
   flushes on its own schedule), the hash ring flips, queued and
   journaled events re-address to the new owner, and the donor drops
   its copies. Atomic by construction in a discrete-event simulator:
   no event is delivered between these steps.
4. **ack** — the receiver flushes the imported slates so the store
   catches up with the handed-off state, then acks the master.
5. **release** — the master marks the migration complete and the
   replay-journal hold (taken at plan time) is released.

Crash safety: every phase is idempotent and resumable. A donor or
receiver crash before cutover *aborts* the migration — the donor still
owns every key, staged blobs are discarded, and the ordinary failure
machinery (exclusion + journal replay) handles the dead machine. A
crash after cutover is *completed* by the ordinary machinery: dedup
watermarks travelled inside the migrated blobs, journal entries for
moved keys were re-addressed to the receiver at cutover, and the
journal hold keeps them replayable until the receiver's ack — so
replay-after-crash neither loses nor duplicates updates under
effectively-once delivery. A master crash merely pauses coordination:
the phase ledger survives, and the current phase re-drives after
``master_resume_s``.

The coordinator drives the protocol against the sim runtime through a
narrow set of runtime hooks (see ``SimRuntime``); it owns no engine
state of its own beyond the in-flight migration.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.core.slate import SlateKey
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.faults.schedule import FaultEvent

#: The migration phases, in protocol order. Fault triggers
#: (``FaultSchedule.at_migration``) and the master's ledger use exactly
#: these names.
MIGRATION_PHASES: Tuple[str, ...] = (
    "snapshot", "delta_stream", "cutover", "ack", "release")

#: Crash targets a migration-phase fault trigger may name.
MIGRATION_TARGETS: Tuple[str, ...] = ("donor", "receiver", "master")

#: Nominal wire size of a control message (ack, phase record).
_CONTROL_MSG_BYTES = 64


@dataclass(frozen=True)
class MigrationConfig:
    """Tuning knobs for the live-handoff protocol.

    Attributes:
        max_delta_rounds: Delta-stream rounds before forcing cutover.
        delta_threshold: Cut over once a round re-exports at most this
            many changed slates.
        delta_round_s: Minimum spacing between delta rounds.
        master_resume_s: How long coordination pauses after a master
            crash before re-driving the current phase from the ledger.
        full_rehydration: Ablation knob (bench E24): replace the
            incremental handoff with the legacy flush-barrier + lazy
            kv rehydration, keeping the same phase ledger so the two
            strategies are comparable run-for-run.
    """

    max_delta_rounds: int = 3
    delta_threshold: int = 8
    delta_round_s: float = 0.05
    master_resume_s: float = 0.25
    full_rehydration: bool = False

    def __post_init__(self) -> None:
        if self.max_delta_rounds < 1:
            raise ConfigurationError(
                "max_delta_rounds must be >= 1, got "
                f"{self.max_delta_rounds!r}")
        if self.delta_threshold < 0:
            raise ConfigurationError(
                "delta_threshold must be >= 0, got "
                f"{self.delta_threshold!r}")
        if self.delta_round_s <= 0:
            raise ConfigurationError(
                f"delta_round_s must be positive, got "
                f"{self.delta_round_s!r}")
        if self.master_resume_s <= 0:
            raise ConfigurationError(
                "master_resume_s must be positive, got "
                f"{self.master_resume_s!r}")


@dataclass(slots=True)
class MigrationCounters:
    """Handoff accounting, registered under the ``elastic`` family."""

    started: int = 0
    completed: int = 0
    aborted: int = 0
    resumed: int = 0
    snapshot_slates: int = 0
    snapshot_bytes: int = 0
    delta_rounds: int = 0
    delta_slates: int = 0
    delta_bytes: int = 0
    cutover_slates: int = 0
    cutover_bytes: int = 0
    handoff_slates: int = 0
    journal_readdressed: int = 0
    full_barrier_slates: int = 0
    #: Network bytes the full-rehydration ablation moved for the moving
    #: set: one barrier write per kv replica plus the receiver's cold
    #: first-touch read, per slate.
    full_barrier_bytes: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Field snapshot for the metrics registry."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @property
    def incremental_bytes(self) -> int:
        """Total bytes streamed donor→receiver by incremental handoffs."""
        return self.snapshot_bytes + self.delta_bytes + self.cutover_bytes


@dataclass(slots=True)
class _Staged:
    """One exported slate blob staged at the receiver, pre-install."""

    blob: bytes
    ttl: Optional[float]
    last_update_ts: float


@dataclass
class HandoffStream:
    """One donor→receiver changelog within a migration."""

    donor: str
    receiver: str
    keys: List[SlateKey]
    exported_versions: Dict[SlateKey, int] = field(default_factory=dict)
    staged: Dict[SlateKey, _Staged] = field(default_factory=dict)


@dataclass
class MigrationState:
    """One in-flight membership change and its handoff streams."""

    epoch: int
    kind: str            # "join" | "retire"
    machine: str         # the joining or retiring machine
    phase: str
    streams: List[HandoffStream]
    token: str           # replay-journal hold token
    rounds: int = 0
    final_bytes: int = 0

    def donors(self) -> List[str]:
        """Distinct donor machines, sorted (deterministic)."""
        return sorted({s.donor for s in self.streams})

    def receivers(self) -> List[str]:
        """Distinct receiver machines, sorted (deterministic)."""
        return sorted({s.receiver for s in self.streams})


class MigrationCoordinator:
    """Drives the five-phase handoff protocol on the sim runtime.

    One migration is in flight at a time; concurrent requests queue in
    the runtime. The coordinator is the *master's* logic — phase
    transitions are journaled in the master's migration ledger, and a
    simulated master crash pauses (never corrupts) the protocol.
    """

    def __init__(self, runtime: Any, config: MigrationConfig,
                 triggers: Optional[List["FaultEvent"]] = None) -> None:
        self.rt = runtime
        self.config = config
        self.counters = MigrationCounters()
        self.active: Optional[MigrationState] = None
        #: Deterministic one-shot crash triggers (FaultSchedule DSL).
        self._triggers: List["FaultEvent"] = list(triggers or [])
        self._consumed: set = set()
        self._master_down_until = 0.0

    # -- planning ----------------------------------------------------------
    def begin(self, kind: str, machine: str) -> bool:
        """Plan and start a migration; False if one is already active.

        For ``kind="join"`` the machine must already be constructed
        (alive, probes registered) but not yet a ring member; for
        ``kind="retire"`` it must be a live ring member.
        """
        if self.active is not None:
            return False
        now = self.rt.sim.now()
        streams = self._plan_streams(kind, machine)
        epoch = self.rt.master.begin_migration(kind, machine)
        token = f"migration-{epoch}"
        journal = self.rt.replay_journal
        if journal is not None:
            # Migration-aware pruning: entries recorded from here on
            # may need replay until the receiver's ack (the handed-off
            # state is durable only in the receiver's cache between
            # cutover and ack), so checkpoint-epoch pruning must not
            # outrun an in-flight handoff.
            journal.hold(token, now)
        mig = MigrationState(epoch=epoch, kind=kind, machine=machine,
                             phase="plan", streams=streams, token=token)
        self.active = mig
        self.counters.started += 1
        self._span(now, phase="plan", mig=mig,
                   slates=sum(len(s.keys) for s in mig.streams))
        self.rt.sim.schedule_in(0.0, lambda _sim: self._phase_snapshot(mig))
        return True

    def _plan_streams(self, kind: str, machine: str) -> List[HandoffStream]:
        """Compute which resident slates change owner, per donor→receiver.

        Only *resident* slates stream: a non-resident slate's freshest
        state already lives in the key-value store, so its new owner
        rehydrates it on first touch exactly like any cache miss (the
        dedup watermarks ride the stored blob). Dirty slates are always
        resident, so nothing unflushed can be missed.
        """
        rt = self.rt
        if kind == "join":
            shadow = rt._machine_ring.preview(add=(machine,))
        else:
            shadow = rt._machine_ring.preview(remove=(machine,))
        by_pair: Dict[Tuple[str, str], List[SlateKey]] = {}
        for donor_name in sorted(rt.machines):
            donor = rt.machines[donor_name]
            if not donor.alive or getattr(donor, "retired", False):
                continue
            if kind == "retire" and donor_name != machine:
                continue
            mgr = rt._central_manager(donor_name)
            if mgr is None:
                continue
            for slate_key in mgr.cache.resident():
                rk = rt.route_key_of(slate_key)
                if rt._machine_ring.lookup(rk) != donor_name:
                    continue  # stale orphan copy; the owner's copy moves
                new_owner = shadow.lookup(rk)
                if new_owner is None or new_owner == donor_name:
                    continue
                by_pair.setdefault((donor_name, new_owner),
                                   []).append(slate_key)
        return [HandoffStream(donor=d, receiver=r, keys=sorted(keys))
                for (d, r), keys in sorted(by_pair.items())]

    # -- phase plumbing ----------------------------------------------------
    def _span(self, now: float, *, phase: str, mig: MigrationState,
              **extra: Any) -> None:
        tracer = self.rt.tracer
        if tracer is not None:
            # "kind" is the span kind itself; the join/retire direction
            # travels as "scale".
            tracer.emit(now, "migration", phase=phase, epoch=mig.epoch,
                        scale=mig.kind, machine=mig.machine, **extra)

    def _take_trigger(self, phase: str) -> Optional["FaultEvent"]:
        for idx, trigger in enumerate(self._triggers):
            if idx in self._consumed:
                continue
            if trigger.phase == phase:
                self._consumed.add(idx)
                return trigger
        return None

    def _enter(self, mig: MigrationState, phase: str,
               reenter_action: Any) -> bool:
        """Common phase preamble: triggers, master ledger, liveness.

        Returns True when the phase body should run now; False when the
        migration aborted or the phase was re-scheduled (master down).
        """
        rt = self.rt
        now = rt.sim.now()
        mig.phase = phase
        trigger = self._take_trigger(phase)
        if trigger is not None:
            self._fire_trigger(mig, trigger)
        if now < self._master_down_until:
            # The coordinator *is* master logic: with the master down,
            # this transition cannot be journaled, so the whole phase
            # re-drives from the ledger once the master is back. Every
            # phase body is idempotent, which is what makes the re-drive
            # safe from any point.
            delay = self._master_down_until - now
            self.counters.resumed += 1
            self._span(now, phase=phase, mig=mig, paused=True)
            rt.sim.schedule_in(delay, reenter_action)
            return False
        rt.master.record_migration_phase(mig.epoch, phase)
        if phase in ("snapshot", "delta_stream", "cutover"):
            dead = [name for name in mig.donors() + mig.receivers()
                    if not rt.machines[name].alive]
            if mig.kind == "join" and not rt.machines[mig.machine].alive:
                dead.append(mig.machine)
            if dead:
                self._abort(mig, reason=f"dead:{','.join(sorted(set(dead)))}")
                return False
        return True

    def _fire_trigger(self, mig: MigrationState,
                      trigger: "FaultEvent") -> None:
        rt = self.rt
        now = rt.sim.now()
        target = trigger.target or "donor"
        if target == "master":
            self._master_down_until = max(
                self._master_down_until,
                now + self.config.master_resume_s)
            return
        if trigger.machine is not None:
            victim = trigger.machine
        elif target == "receiver":
            receivers = mig.receivers() or [mig.machine]
            victim = receivers[0]
        else:
            donors = mig.donors() or [mig.machine]
            victim = donors[0]
        if rt.machines[victim].alive:
            rt._kill_machine_now(victim)

    def _abort(self, mig: MigrationState, reason: str) -> None:
        """Abandon a pre-cutover migration; the donor still owns all keys.

        Staged blobs never became authoritative, so dropping them loses
        nothing; any crashed participant is handled by the ordinary
        failure machinery (exclusion + journal replay).
        """
        rt = self.rt
        now = rt.sim.now()
        for stream in mig.streams:
            stream.staged.clear()
        journal = rt.replay_journal
        if journal is not None:
            journal.release(mig.token)
        rt.master.abort_migration(mig.epoch, reason)
        self.counters.aborted += 1
        self._span(now, phase="abort", mig=mig, reason=reason)
        self.active = None
        rt._migration_finished(mig, completed=False)

    def _transfer_delay(self, nbytes: int) -> float:
        network = self.rt.cluster.network
        return network.transfer_time(max(nbytes, _CONTROL_MSG_BYTES),
                                     same_machine=False)

    # -- phases ------------------------------------------------------------
    def _phase_snapshot(self, mig: MigrationState) -> None:
        rt = self.rt
        if not self._enter(mig, "snapshot",
                           lambda _sim: self._phase_snapshot(mig)):
            return
        now = rt.sim.now()
        if self.config.full_rehydration:
            # Ablation: no streaming; cut over behind a flush barrier.
            rt.sim.schedule_in(0.0, lambda _sim: self._phase_cutover(mig))
            return
        total = 0
        for stream in mig.streams:
            moved, nbytes = self._export_changed(stream, full=True)
            total += nbytes
            self.counters.snapshot_slates += moved
            self.counters.snapshot_bytes += nbytes
            self._span(now, phase="snapshot", mig=mig, donor=stream.donor,
                       receiver=stream.receiver, slates=moved, bytes=nbytes)
        delay = self._transfer_delay(total)
        rt.sim.schedule_in(delay, lambda _sim: self._phase_delta(mig))

    def _phase_delta(self, mig: MigrationState) -> None:
        rt = self.rt
        if not self._enter(mig, "delta_stream",
                           lambda _sim: self._phase_delta(mig)):
            return
        now = rt.sim.now()
        mig.rounds += 1
        self.counters.delta_rounds += 1
        changed = 0
        total = 0
        for stream in mig.streams:
            moved, nbytes = self._export_changed(stream, full=False)
            changed += moved
            total += nbytes
            self.counters.delta_slates += moved
            self.counters.delta_bytes += nbytes
            if moved:
                self._span(now, phase="delta_stream", mig=mig,
                           donor=stream.donor, receiver=stream.receiver,
                           slates=moved, bytes=nbytes, round=mig.rounds)
        delay = max(self._transfer_delay(total), self.config.delta_round_s)
        if (changed <= self.config.delta_threshold
                or mig.rounds >= self.config.max_delta_rounds):
            rt.sim.schedule_in(delay, lambda _sim: self._phase_cutover(mig))
        else:
            rt.sim.schedule_in(delay, lambda _sim: self._phase_delta(mig))

    def _export_changed(self, stream: HandoffStream,
                        full: bool) -> Tuple[int, int]:
        """Export (re-)changed slates from the donor into the stage.

        ``full=True`` exports everything resident; otherwise only slates
        whose version moved past the last export. Slates evicted since
        planning are skipped — the store already holds their freshest
        flushed state and the receiver rehydrates them lazily.
        """
        mgr = self.rt._central_manager(stream.donor)
        moved = 0
        nbytes = 0
        if mgr is None:
            return 0, 0
        for slate_key in stream.keys:
            slate = mgr.cache.peek(slate_key)
            if slate is None:
                continue
            version = slate.version
            if not full and stream.exported_versions.get(slate_key) == version:
                continue
            blob = slate.encoded_with(mgr.codec)
            stream.staged[slate_key] = _Staged(
                blob=blob, ttl=slate.ttl,
                last_update_ts=slate.last_update_ts)
            stream.exported_versions[slate_key] = version
            moved += 1
            nbytes += len(blob)
        return moved, nbytes

    def _phase_cutover(self, mig: MigrationState) -> None:
        """The atomic flip: final deltas, install, re-ring, re-address.

        Everything here happens at one simulated instant — no event can
        be delivered mid-cutover, which is what makes the phase
        all-or-nothing without a stop-the-world pause before it. The
        byte cost of the final delta is charged to the ack delay.
        """
        rt = self.rt
        if not self._enter(mig, "cutover",
                           lambda _sim: self._phase_cutover(mig)):
            return
        now = rt.sim.now()
        rt._flush_all_batches()
        if self.config.full_rehydration:
            moved = self._full_rehydration_cutover(mig)
            final_bytes = 0
        else:
            final_bytes = 0
            for stream in mig.streams:
                changed, nbytes = self._export_changed(stream, full=False)
                final_bytes += nbytes
                self.counters.cutover_slates += changed
                self.counters.cutover_bytes += nbytes
            moved = self._install_and_drop(mig)
        mig.final_bytes = final_bytes
        rt._apply_migration_ring_change(mig)
        for stream in mig.streams:
            self._emit_handoffs(now, mig, stream)
        rt._reroute_queued_after_ring_change()
        self._span(now, phase="cutover", mig=mig, slates=moved,
                   bytes=final_bytes)
        delay = self._transfer_delay(final_bytes)
        rt.sim.schedule_in(delay, lambda _sim: self._phase_ack(mig))

    def _install_and_drop(self, mig: MigrationState) -> int:
        """Install staged blobs at receivers; drop the donor's copies.

        Imported slates land *dirty*: the receiver's ordinary flush
        machinery persists them (the explicit catch-up happens at ack),
        and the dedup watermarks inside each blob arm the receiver
        against replays of updates the donor already applied.
        """
        rt = self.rt
        now = rt.sim.now()
        moved = 0
        for stream in mig.streams:
            receiver_mgr = rt._central_manager(stream.receiver)
            donor_mgr = rt._central_manager(stream.donor)
            for slate_key in stream.keys:
                staged = stream.staged.get(slate_key)
                if staged is not None and receiver_mgr is not None:
                    receiver_mgr.import_blob(
                        slate_key, staged.blob, ttl=staged.ttl,
                        last_update_ts=staged.last_update_ts, now=now)
                    moved += 1
                if donor_mgr is not None:
                    donor_mgr.drop(slate_key)
            stream.staged.clear()
        self.counters.handoff_slates += moved
        return moved

    def _full_rehydration_cutover(self, mig: MigrationState) -> int:
        """Ablation cutover: cluster-wide flush barrier, drop, lazy reads.

        This is the paper's Section 4.3 re-admission strategy applied to
        a planned change: every dirty slate in the cluster flushes, the
        donor drops its (now clean) moving copies, and the receiver
        pays a cold kv read per slate on first touch. The network bytes
        the strategy moves for the moving set are counted so bench E24
        can compare them against the incremental stream: each barrier
        write fans out to every kv replica, and the receiver's cold
        read adds one more transfer — against the incremental handoff's
        single donor→receiver copy per (version of a) slate.
        """
        rt = self.rt
        rt._rebalance_flush()
        replicas = getattr(rt.store, "replication_factor", 1)
        moved = 0
        for stream in mig.streams:
            donor_mgr = rt._central_manager(stream.donor)
            if donor_mgr is None:
                continue
            for slate_key in stream.keys:
                slate = donor_mgr.cache.peek(slate_key)
                if slate is None:
                    continue
                nbytes = len(slate.encoded_with(donor_mgr.codec))
                self.counters.full_barrier_bytes += nbytes * (replicas + 1)
                self.counters.full_barrier_slates += 1
                donor_mgr.drop(slate_key)
                moved += 1
            stream.staged.clear()
        return moved

    def _emit_handoffs(self, now: float, mig: MigrationState,
                       stream: HandoffStream) -> None:
        """Per-slate ownership-transfer spans, emitted *after* the
        ``ring_change`` span so the invariant checker's new ring epoch
        sees them as its opening ownership facts."""
        tracer = self.rt.tracer
        if tracer is None:
            return
        for slate_key in stream.keys:
            tracer.emit(now, "handoff", updater=slate_key.updater,
                        key=slate_key.key, src=stream.donor,
                        machine=stream.receiver, epoch=mig.epoch)

    def _phase_ack(self, mig: MigrationState) -> None:
        rt = self.rt
        if not self._enter(mig, "ack", lambda _sim: self._phase_ack(mig)):
            return
        now = rt.sim.now()
        for receiver in mig.receivers():
            machine = rt.machines[receiver]
            if not machine.alive:
                # Receiver died between cutover and ack: declare it to
                # the master *now* so exclusion + journal replay (the
                # entries are still under this migration's hold) heal
                # the handed-off keys deterministically.
                rt._declare_machine_failed(receiver)
                continue
            mgr = rt._central_manager(receiver)
            if mgr is not None:
                mgr.flush_all_dirty()
        self._span(now, phase="ack", mig=mig)
        delay = self._transfer_delay(_CONTROL_MSG_BYTES)
        rt.sim.schedule_in(delay, lambda _sim: self._phase_release(mig))

    def _phase_release(self, mig: MigrationState) -> None:
        rt = self.rt
        if not self._enter(mig, "release",
                           lambda _sim: self._phase_release(mig)):
            return
        now = rt.sim.now()
        journal = rt.replay_journal
        if journal is not None:
            journal.release(mig.token)
        rt.master.complete_migration(mig.epoch)
        self.counters.completed += 1
        self._span(now, phase="release", mig=mig)
        self.active = None
        rt._migration_finished(mig, completed=True)
