"""Elastic scaling: autoscaler policy + crash-safe live slate migration.

ROADMAP item 3. The autoscaler watches the overload controller's
signals (worst queue fraction, p99-over-budget, dirty backlog) and
grows or shrinks the cluster at runtime; membership changes hand slates
to their new owners through the incremental, crash-safe migration
protocol in :mod:`repro.elastic.migration` instead of the legacy
flush-barrier + full-rehydration path.
"""

from repro.elastic.autoscaler import (Autoscaler, AutoscalerConfig,
                                      AutoscalerCounters, ScaleDecision)
from repro.elastic.migration import (MIGRATION_PHASES, MIGRATION_TARGETS,
                                     MigrationConfig, MigrationCoordinator,
                                     MigrationCounters, MigrationState)

__all__ = [
    "Autoscaler",
    "AutoscalerConfig",
    "AutoscalerCounters",
    "MIGRATION_PHASES",
    "MIGRATION_TARGETS",
    "MigrationConfig",
    "MigrationCoordinator",
    "MigrationCounters",
    "MigrationState",
    "ScaleDecision",
]
