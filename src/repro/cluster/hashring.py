"""Consistent hash ring — event routing and kv-store partitioning.

Section 4.1: "give all workers the same hash function to map <event key,
destination map/update function> to workers ... any worker can instantly
calculate which worker the event hashes to". Section 4.3: routing is
"technically accomplished using a hash ring", and when a machine fails,
"since all workers use the same hash ring, from then on all events with the
same key will be routed to worker C instead of the (now failed) worker B".

The ring hashes members to many virtual points on a 64-bit circle; a lookup
hashes the routing key and walks clockwise to the first live member. Members
can be *excluded* (marked failed) without rebuilding, which is exactly the
paper's failover: the next point on the ring takes over the failed member's
arc. The same structure partitions rows across kv-store nodes, where
``preference_list`` yields the N distinct replica holders.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Generic, Hashable, Iterable, List, Set, Tuple, TypeVar

from repro.errors import ConfigurationError, WorkerFailedError

M = TypeVar("M", bound=Hashable)

#: Bound on each ring's routing memo tables. Key spaces larger than this
#: (e.g. per-user keys under heavy load) flush the memo wholesale when it
#: fills — amortized O(1) and deterministic, unlike per-entry eviction.
MEMO_MAX_ENTRIES = 65_536


def stable_hash64(data: str) -> int:
    """A process-stable 64-bit hash (Python's ``hash`` is salted per run).

    All workers must compute identical placements across runs and across
    (simulated) machines, so we use blake2b rather than ``hash()``.
    """
    digest = hashlib.blake2b(data.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing(Generic[M]):
    """A consistent hash ring over hashable members.

    Routing lookups are memoized: the per-event hot path hashes each
    distinct routing key once (blake2b) and then serves placements from a
    bounded memo table, invalidated wholesale on any membership or
    exclusion change — the memoized and unmemoized rings are
    indistinguishable through every join/fail/revive sequence (the
    determinism tests assert exactly this).

    Args:
        members: Initial ring members (e.g. worker IDs or node names).
        replicas: Virtual points per member. More points smooth the load
            distribution at the cost of memory; 64 keeps the max/min arc
            ratio within a few percent for tens of members.
        memoize: Cache lookup/preference-list results (on by default;
            the ablation knob for the determinism tests).
    """

    def __init__(self, members: Iterable[M] = (), replicas: int = 64,
                 memoize: bool = True) -> None:
        if replicas < 1:
            raise ConfigurationError(f"replicas must be >= 1, got {replicas}")
        self._replicas = replicas
        self._points: List[Tuple[int, M]] = []
        self._keys: List[int] = []
        self._members: Set[M] = set()
        self._excluded: Set[M] = set()
        self._memoize = memoize
        self._lookup_memo: Dict[str, M] = {}
        self._pref_memo: Dict[Tuple[str, int, bool], List[M]] = {}
        self.memo_hits = 0
        self.memo_misses = 0
        self.memo_invalidations = 0
        #: Monotone membership/liveness revision. Bumps on every add,
        #: remove, exclude and restore — independent of ``memoize`` —
        #: so callers layering their own routing caches on top (the
        #: fast-forward runtime's destination memo) can detect ring
        #: changes with one integer compare per event.
        self.generation = 0
        for member in members:
            self.add(member)

    def _invalidate_memo(self) -> None:
        self.generation += 1
        if self._lookup_memo or self._pref_memo:
            self._lookup_memo.clear()
            self._pref_memo.clear()
            self.memo_invalidations += 1

    # -- membership -------------------------------------------------------
    def add(self, member: M) -> None:
        """Add a member (idempotent for already-present members)."""
        if member in self._members:
            return
        self._invalidate_memo()
        self._members.add(member)
        for i in range(self._replicas):
            point = stable_hash64(f"{member!r}#{i}")
            index = bisect.bisect(self._keys, point)
            self._keys.insert(index, point)
            self._points.insert(index, (point, member))

    def remove(self, member: M) -> None:
        """Permanently remove a member and its virtual points."""
        if member not in self._members:
            return
        self._invalidate_memo()
        self._members.discard(member)
        self._excluded.discard(member)
        kept = [(p, m) for (p, m) in self._points if m != member]
        self._points = kept
        self._keys = [p for (p, _) in kept]

    def exclude(self, member: M) -> None:
        """Mark a member failed: lookups skip it but its points remain.

        This is the paper's failure handling — the ring itself is shared
        and static; each worker keeps a *list of failed machines* and skips
        them (Section 4.3).
        """
        if member in self._members and member not in self._excluded:
            self._invalidate_memo()
            self._excluded.add(member)

    def restore(self, member: M) -> None:
        """Clear a member's failed mark."""
        if member in self._excluded:
            self._invalidate_memo()
            self._excluded.discard(member)

    def preview(self, add: Iterable[M] = (),
                remove: Iterable[M] = ()) -> "HashRing[M]":
        """A throwaway shadow ring with a hypothetical membership change.

        Elastic migration plans a handoff by diffing ownership between
        the live ring and this preview *without* touching the live ring
        — the donor keeps owning its keys until cutover. Virtual-point
        positions depend only on member identity, so the preview's
        placements are exactly what the live ring will serve after the
        same add/remove is applied for real. Exclusion marks carry over
        (a failed machine must not become a migration receiver);
        memoization is off since each preview serves one planning pass.
        """
        removed = set(remove)
        shadow: "HashRing[M]" = HashRing(replicas=self._replicas,
                                         memoize=False)
        for member in sorted(self._members, key=repr):
            if member not in removed:
                shadow.add(member)
        for member in add:
            shadow.add(member)
        for member in sorted(self._excluded, key=repr):
            if member not in removed:
                shadow.exclude(member)
        return shadow

    @property
    def members(self) -> Set[M]:
        """All members, including excluded ones."""
        return set(self._members)

    @property
    def live_members(self) -> Set[M]:
        """Members not currently marked failed."""
        return self._members - self._excluded

    def __len__(self) -> int:
        return len(self._members)

    # -- lookups ------------------------------------------------------------
    def lookup(self, routing_key: str) -> M:
        """The live member owning ``routing_key``.

        Raises:
            WorkerFailedError: When every member is excluded (no live
                member can own anything).
        """
        if self._memoize:
            cached = self._lookup_memo.get(routing_key)
            if cached is not None:
                self.memo_hits += 1
                return cached
        for member in self._walk(routing_key):
            if member not in self._excluded:
                if self._memoize:
                    self.memo_misses += 1
                    if len(self._lookup_memo) >= MEMO_MAX_ENTRIES:
                        self._lookup_memo.clear()
                    self._lookup_memo[routing_key] = member
                return member
        raise WorkerFailedError(
            "hash ring has no live members to route to"
        )

    def preference_list(self, routing_key: str, count: int,
                        include_excluded: bool = False) -> List[M]:
        """The first ``count`` distinct members clockwise of the key.

        Used by the kv-store to pick replica holders (Cassandra-style).
        Returns fewer than ``count`` members if the ring is smaller.

        Args:
            routing_key: The key whose ring position starts the walk.
            count: Replicas wanted.
            include_excluded: When True, failed members stay in the list
                — the *natural* replica set, which hinted handoff needs
                (the down node's hint is addressed to it, not to some
                substitute).
        """
        memo_key = (routing_key, count, include_excluded)
        if self._memoize:
            cached_list = self._pref_memo.get(memo_key)
            if cached_list is not None:
                self.memo_hits += 1
                return list(cached_list)
        result: List[M] = []
        seen: Set[M] = set()
        for member in self._walk(routing_key):
            if member in seen:
                continue
            if not include_excluded and member in self._excluded:
                continue
            seen.add(member)
            result.append(member)
            if len(result) >= count:
                break
        if self._memoize:
            self.memo_misses += 1
            if len(self._pref_memo) >= MEMO_MAX_ENTRIES:
                self._pref_memo.clear()
            self._pref_memo[memo_key] = list(result)
        return result

    def _walk(self, routing_key: str):
        """Yield members clockwise from the key's point, with repeats."""
        if not self._points:
            return
        start = bisect.bisect(self._keys, stable_hash64(routing_key))
        n = len(self._points)
        for offset in range(n):
            yield self._points[(start + offset) % n][1]

    def load_distribution(self, keys: Iterable[str]) -> Dict[M, int]:
        """Count how many of ``keys`` each live member owns (diagnostics)."""
        counts: Dict[M, int] = {m: 0 for m in self.live_members}
        for key in keys:
            counts[self.lookup(key)] += 1
        return counts


def route_key(event_key: str, destination: str) -> str:
    """The paper's routing key: ``<event key, destination function>``.

    Both Muppet's event dispatch and its slate placement hash this pair, so
    all events with the same key for the same update function land on the
    same worker — "similar to MapReduce, where all events with the same key
    go to the same reducer" (Section 4.1).
    """
    return f"{destination}\x00{event_key}"
