"""Cluster topology descriptions shared by engines and the simulator.

Section 3: "We assume a hardware platform similar to MapReduce, i.e., a
cluster of commodity machines. In practice, the machines need to be more
memory-heavy and less disk-heavy than in a MapReduce cluster." A topology
here is a set of :class:`MachineSpec` plus a network model; the simulator
realizes it with virtual time, while the local runtime treats it as a
single machine with one worker pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class MachineSpec:
    """One commodity machine in the cluster.

    Attributes:
        name: Unique machine name (e.g. ``"m03"``).
        cores: CPU cores; bounds the worker-thread pool in Muppet 2.0
            ("the number may be as large as the number of CPU cores
            available on a machine", Section 4.5).
        memory_mb: Main memory available for slate caches and queues —
            the "memory-heavy" part of the paper's hardware note.
        storage: ``"ssd"`` or ``"hdd"`` — the device backing the kv-store
            node co-located on this machine (Section 4.2 runs Cassandra
            on SSDs).
    """

    name: str
    cores: int = 8
    memory_mb: int = 16_384
    storage: str = "ssd"

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ConfigurationError(f"{self.name}: cores must be >= 1")
        if self.memory_mb < 1:
            raise ConfigurationError(f"{self.name}: memory must be positive")
        if self.storage not in ("ssd", "hdd"):
            raise ConfigurationError(
                f"{self.name}: storage must be 'ssd' or 'hdd', "
                f"got {self.storage!r}"
            )


@dataclass(frozen=True)
class NetworkSpec:
    """Commodity gigabit-Ethernet network model (Section 6).

    Attributes:
        latency_s: One-way latency for a small message between two
            machines. Loopback traffic (same machine) is free.
        bandwidth_bytes_per_s: Per-link bandwidth; large events pay a
            serialization delay of ``size / bandwidth``.
    """

    latency_s: float = 0.0005            # 0.5 ms LAN hop
    bandwidth_bytes_per_s: float = 125e6  # 1 Gbit/s

    def transfer_time(self, size_bytes: int, same_machine: bool) -> float:
        """Seconds to move ``size_bytes`` from one worker to another."""
        if same_machine:
            return 0.0
        return self.latency_s + size_bytes / self.bandwidth_bytes_per_s


@dataclass
class ClusterSpec:
    """A named set of machines plus their interconnect."""

    machines: List[MachineSpec]
    network: NetworkSpec = field(default_factory=NetworkSpec)

    def __post_init__(self) -> None:
        if not self.machines:
            raise ConfigurationError("cluster must have at least one machine")
        names = [m.name for m in self.machines]
        if len(names) != len(set(names)):
            raise ConfigurationError(f"duplicate machine names in {names}")

    @classmethod
    def uniform(cls, count: int, cores: int = 8, memory_mb: int = 16_384,
                storage: str = "ssd",
                network: Optional[NetworkSpec] = None) -> "ClusterSpec":
        """Build a homogeneous cluster of ``count`` identical machines."""
        machines = [
            MachineSpec(f"m{i:03d}", cores=cores, memory_mb=memory_mb,
                        storage=storage)
            for i in range(count)
        ]
        return cls(machines, network or NetworkSpec())

    def machine(self, name: str) -> MachineSpec:
        """Look up a machine by name."""
        for spec in self.machines:
            if spec.name == name:
                return spec
        raise ConfigurationError(f"unknown machine {name!r}")

    def names(self) -> List[str]:
        """All machine names, in declaration order."""
        return [m.name for m in self.machines]

    def total_cores(self) -> int:
        """Sum of cores across the cluster."""
        return sum(m.cores for m in self.machines)
