"""Cluster substrate: consistent hashing and topology descriptions."""

from repro.cluster.hashring import HashRing, route_key, stable_hash64
from repro.cluster.topology import ClusterSpec, MachineSpec, NetworkSpec

__all__ = [
    "ClusterSpec",
    "HashRing",
    "MachineSpec",
    "NetworkSpec",
    "route_key",
    "stable_hash64",
]
