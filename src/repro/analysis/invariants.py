"""Trace invariant checking: replay a span trace, assert the guarantees.

The observability layer records every station an event passes through
(see :mod:`repro.obs.trace`). This module replays such a trace and
checks the structural guarantees the engine claims, so a chaos run can
*prove* — not just not-crash — that:

* **fifo** — each worker queue executes events in enqueue order.
  Envelopes may vanish between enqueue and execute (dropped on
  overflow, lost to a crash, drained and rerouted after a ring change);
  what must never happen is an *inversion*: two events enqueued on the
  same queue executing in the opposite order.
* **watermarks** — per-origin source sequence numbers are strictly
  increasing, and every replay-dedup ``skip`` is justified: some
  earlier *applied* update of the same ``(op, key, origin)`` carried an
  ``oseq`` at or above the skipped one (that is what advanced the slate
  watermark the skip consulted). A skip nothing covers means dedup
  dropped a live event — effectively-once silently lost data.
* **two_choice** — between ring changes, one ``(fn, key)`` lands on at
  most 2 worker queues per machine (Section 4.5's "at most two threads
  may process events of the same key at the same time").
* **ring_ownership** — between ring changes, each slate ``(updater,
  key)`` is flushed by at most one machine. Two flushers for one slate
  means an orphaned cache copy raced the owner through last-write-wins.
  Effectively-once traces must satisfy this strictly (late in-flight
  events re-route to the owner); at-most-once traces may legitimately
  report the bounded in-flight residual documented in DESIGN.md.
* **migration** (opt-in, not part of ``check_all``) — live-handoff
  safety for elastic scaling: each slate ``(updater, key)`` is handed
  to exactly one receiver per migration epoch, and after the cutover's
  ``handoff`` span the donor never executes an update or flushes that
  slate again within the same ring epoch. A second receiver means the
  ledger double-assigned ownership; donor activity after handoff means
  the cutover barrier leaked — either way two machines could apply
  updates to diverging copies of one slate.
* **shed_accounting** (opt-in, not part of ``check_all``) — every
  delivery terminates as exactly one of applied / thinned / dropped /
  diverted, or is throttle-deferred (at least one ``throttle_retry``
  and no hard terminal yet). Valid only for *fault-free, drained*
  traces: a crash legitimately vanishes queued events, and an
  undrained trace legitimately leaves deliveries pending — both would
  read as losses here. Overload runs (bench E22) use it to prove that
  shedding never silently loses an event: whatever the pressure tier
  did to an event, it is visible and counted in the trace.

A checker needs a complete window: ring-buffer traces that *dropped*
early spans can report spurious executes-without-enqueue or uncovered
skips. Give chaos runs a ring capacity sized to the run (see
``repro.analysis.scenarios``) or use a JSONL sink.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import (Any, Deque, Dict, Iterable, List, Optional, Set, Tuple,
                    Union)

from repro.errors import AnalysisError
from repro.obs.trace import Span, Tracer, read_jsonl, reconstruct_chain

__all__ = ["InvariantChecker", "InvariantViolation", "check_trace"]

#: Provenance identity as spans carry it.
_Prov = Tuple[Any, Any]


@dataclass
class InvariantViolation:
    """One broken invariant, anchored to the span that broke it."""

    invariant: str
    message: str
    span: Optional[Span] = None
    #: The full station chain of the offending event (populated for the
    #: first violation of each invariant via ``reconstruct_chain``).
    chain: List[Span] = field(default_factory=list)

    def format(self) -> str:
        lines = [f"[{self.invariant}] {self.message}"]
        if self.span is not None:
            lines.append(f"  at span: {self.span}")
        if self.chain:
            lines.append(f"  event chain ({len(self.chain)} spans):")
            for span in self.chain:
                lines.append(f"    {span}")
        return "\n".join(lines)


class InvariantChecker:
    """Replay one span trace and check each engine invariant.

    Args:
        spans: The trace, in emission order (as every tracer returns
            it). Each span must be a dict with ``ts`` and ``kind``.
    """

    def __init__(self, spans: Iterable[Span]) -> None:
        self.spans: List[Span] = list(spans)
        for i, span in enumerate(self.spans):
            if not isinstance(span, dict) or "kind" not in span or \
                    "ts" not in span:
                raise AnalysisError(
                    f"malformed trace: span #{i} is not a dict with "
                    f"'ts' and 'kind' fields: {span!r}")
        #: Ring epoch of each span: starts at 0, +1 at every
        #: ``ring_change`` (the change span begins the new epoch; spans
        #: emitted before it — e.g. the rebalance-barrier flushes —
        #: belong to the old one).
        self._epochs: List[int] = []
        epoch = 0
        for span in self.spans:
            if span["kind"] == "ring_change":
                epoch += 1
            self._epochs.append(epoch)

    # -- invariants ----------------------------------------------------------
    def check_fifo(self) -> List[InvariantViolation]:
        """No inversion between enqueue order and execute order."""
        violations: List[InvariantViolation] = []
        queues: Dict[Tuple[Any, Any], Deque[_Prov]] = {}
        for span in self.spans:
            kind = span["kind"]
            if kind not in ("enqueue", "execute"):
                continue
            prov = (span.get("origin"), span.get("oseq"))
            if kind == "enqueue":
                queue_id = (span.get("machine"), span.get("worker"))
                queues.setdefault(queue_id, deque()).append(prov)
                continue
            queue_id = (span.get("machine"), span.get("worker"))
            queue = queues.get(queue_id)
            if queue is None or prov not in queue:
                violations.append(InvariantViolation(
                    "fifo",
                    f"execute of {prov} on queue {queue_id} without a "
                    "pending enqueue — either an inversion (a later "
                    "event already consumed this slot) or a truncated "
                    "trace", span))
                continue
            # Events ahead of this one may have been dropped, lost, or
            # rerouted; popping them is tolerated. Executing *behind*
            # them is what the `prov not in queue` branch catches, when
            # their own execute arrives and finds its slot consumed.
            while queue:
                head = queue.popleft()
                if head == prov:
                    break
        return self._attach_chain(violations)

    def check_watermarks(self) -> List[InvariantViolation]:
        """Source oseq monotone per origin; every dedup skip covered."""
        violations: List[InvariantViolation] = []
        last_oseq: Dict[Any, Any] = {}
        for span in self.spans:
            if span["kind"] != "source":
                continue
            origin, oseq = span.get("origin"), span.get("oseq")
            previous = last_oseq.get(origin)
            if previous is not None and oseq <= previous:
                violations.append(InvariantViolation(
                    "watermarks",
                    f"source oseq for origin {origin!r} went "
                    f"{previous} -> {oseq}; per-origin sequence numbers "
                    "must be strictly increasing (replay-stable "
                    "provenance)", span))
            last_oseq[origin] = oseq

        # Dedup coverage. An execute is "applied" unless a skip decision
        # for the same provenance follows it (the execute span is
        # emitted before the watermark check of the same delivery).
        updates: Dict[Tuple[Any, Any, Any], List[List[Any]]] = {}
        skips: List[Tuple[int, Span]] = []
        for index, span in enumerate(self.spans):
            kind = span["kind"]
            if (kind == "execute" and span.get("op_kind") == "update"
                    and not span.get("timer", False)):
                state = (span.get("op"), span.get("key"),
                         span.get("origin"))
                updates.setdefault(state, []).append(
                    [index, span.get("oseq"), True])
            elif kind == "dedup" and span.get("decision") == "skip":
                state = (span.get("op"), span.get("key"),
                         span.get("origin"))
                oseq = span.get("oseq")
                for entry in reversed(updates.get(state, ())):
                    if entry[0] < index and entry[1] == oseq and entry[2]:
                        entry[2] = False  # this execute was skipped
                        break
                skips.append((index, span))
        for skip_index, span in skips:
            state = (span.get("op"), span.get("key"), span.get("origin"))
            oseq = span.get("oseq")
            covered = any(
                entry[0] < skip_index and entry[2] and entry[1] is not None
                and oseq is not None and entry[1] >= oseq
                for entry in updates.get(state, ()))
            if not covered:
                violations.append(InvariantViolation(
                    "watermarks",
                    f"dedup skipped {state} oseq={oseq} but no earlier "
                    "applied update of that (op, key, origin) carries "
                    "oseq >= it — the watermark that justified the skip "
                    "has no visible writer (lost event, or truncated "
                    "trace)", span))
        return self._attach_chain(violations)

    def check_two_choice(self, max_queues: int = 2
                         ) -> List[InvariantViolation]:
        """≤ ``max_queues`` worker queues per (fn, key, machine, epoch)."""
        violations: List[InvariantViolation] = []
        targets: Dict[Tuple[Any, Any, Any, int], Set[Any]] = {}
        flagged: Set[Tuple[Any, Any, Any, int]] = set()
        for index, span in enumerate(self.spans):
            if span["kind"] != "enqueue":
                continue
            window = (span.get("fn"), span.get("key"),
                      span.get("machine"), self._epochs[index])
            workers = targets.setdefault(window, set())
            workers.add(span.get("worker"))
            if len(workers) > max_queues and window not in flagged:
                flagged.add(window)
                fn, key, machine, epoch = window
                violations.append(InvariantViolation(
                    "two_choice",
                    f"key {key!r} of {fn} hit {len(workers)} distinct "
                    f"queues {sorted(workers)} on {machine} within ring "
                    f"epoch {epoch}; two-choice dispatch bounds it at "
                    f"{max_queues}", span))
        return self._attach_chain(violations)

    def check_ring_ownership(self) -> List[InvariantViolation]:
        """One flushing machine per (updater, key) per ring epoch."""
        violations: List[InvariantViolation] = []
        owners: Dict[Tuple[Any, Any, int], Set[Any]] = {}
        flagged: Set[Tuple[Any, Any, int]] = set()
        for index, span in enumerate(self.spans):
            if span["kind"] != "slate_flush" or "machine" not in span:
                continue
            window = (span.get("updater"), span.get("key"),
                      self._epochs[index])
            machines = owners.setdefault(window, set())
            machines.add(span["machine"])
            if len(machines) > 1 and window not in flagged:
                flagged.add(window)
                updater, key, epoch = window
                violations.append(InvariantViolation(
                    "ring_ownership",
                    f"slate ({updater}, {key!r}) flushed by "
                    f"{sorted(machines)} within ring epoch {epoch}; one "
                    "machine owns a slate between ring changes — a "
                    "second flusher is an orphaned cache copy racing "
                    "the owner", span))
        return self._attach_chain(violations)

    def check_shed_accounting(self) -> List[InvariantViolation]:
        """Each delivery ends as exactly one shed/apply outcome.

        Groups spans by ``(origin, oseq, fn)`` — one group per delivery
        of one event to one function. A group's hard terminals are:
        applied executes (``execute`` spans minus paired ``thin`` shed
        spans), thins, drops, and diverts (the diverted copy continues
        under the overflow stream's subscriber functions, forming its
        own groups with the same provenance — that is what the
        provenance pinning in the engines' divert paths guarantees).
        ``throttle_retry`` spans are soft: a group with retries and no
        hard terminal is throttle-deferred, which only a drained trace
        may not contain. Timer deliveries are exempt (their provenance
        is engine-internal).
        """
        violations: List[InvariantViolation] = []
        groups: Dict[Tuple[Any, Any, Any], Dict[str, Any]] = {}
        for span in self.spans:
            kind = span["kind"]
            if kind == "execute":
                if span.get("timer", False):
                    continue
                fn = span.get("op")
            elif kind == "shed":
                fn = span.get("op", span.get("fn"))
            else:
                continue
            origin = span.get("origin")
            if isinstance(origin, str) and origin.startswith("!timer:"):
                continue
            key = (origin, span.get("oseq"), fn)
            group = groups.get(key)
            if group is None:
                group = groups[key] = {
                    "executes": 0, "thins": 0, "drops": 0, "diverts": 0,
                    "retries": 0, "span": span}
            if kind == "execute":
                group["executes"] += 1
            else:
                outcome = span.get("outcome")
                if outcome == "thin":
                    group["thins"] += 1
                elif outcome == "drop":
                    group["drops"] += 1
                elif outcome == "divert":
                    group["diverts"] += 1
                elif outcome == "throttle_retry":
                    group["retries"] += 1
        for key in sorted(groups, key=repr):
            origin, oseq, fn = key
            group = groups[key]
            applied = group["executes"] - group["thins"]
            if applied < 0:
                violations.append(InvariantViolation(
                    "shed_accounting",
                    f"delivery ({origin!r}, {oseq}) -> {fn} has "
                    f"{group['thins']} thin decisions but only "
                    f"{group['executes']} executes; every thin pairs "
                    "with the execute it truncated", group["span"]))
                continue
            terminals = (applied + group["thins"] + group["drops"]
                         + group["diverts"])
            if terminals == 0 and group["retries"] == 0:
                violations.append(InvariantViolation(
                    "shed_accounting",
                    f"delivery ({origin!r}, {oseq}) -> {fn} reached a "
                    "queue but terminated as nothing — not applied, "
                    "thinned, dropped, diverted, or throttle-deferred; "
                    "an event silently vanished (or the trace is "
                    "truncated/undrained)", group["span"]))
            elif terminals > 1:
                violations.append(InvariantViolation(
                    "shed_accounting",
                    f"delivery ({origin!r}, {oseq}) -> {fn} terminated "
                    f"{terminals} times (applied={applied}, "
                    f"thinned={group['thins']}, dropped={group['drops']},"
                    f" diverted={group['diverts']}); an event must "
                    "terminate exactly once — a duplicate application "
                    "or double-count", group["span"]))
        return self._attach_chain(violations)

    def check_migration(self) -> List[InvariantViolation]:
        """Live-handoff safety (see the module docstring, opt-in).

        One receiver per ``(updater, key)`` per *migration* epoch (the
        coordinator's counter, carried on every ``handoff`` span), and
        no donor ``execute``/``slate_flush`` of a handed-off slate
        within the *ring* epoch the cutover opened. A later ring change
        may legitimately hand the slate back, so donor activity is only
        policed until the next ``ring_change`` span.
        """
        violations: List[InvariantViolation] = []
        # (updater, key, migration epoch) -> receiver machines seen.
        owners: Dict[Tuple[Any, Any, Any], Set[Any]] = {}
        flagged: Set[Tuple[Any, Any, Any]] = set()
        # (updater, key, ring epoch) -> the donor that released it.
        released: Dict[Tuple[Any, Any, int], Any] = {}
        for index, span in enumerate(self.spans):
            kind = span["kind"]
            if kind == "handoff":
                owner_key = (span.get("updater"), span.get("key"),
                             span.get("epoch"))
                receivers = owners.setdefault(owner_key, set())
                receivers.add(span.get("machine"))
                if len(receivers) > 1 and owner_key not in flagged:
                    flagged.add(owner_key)
                    updater, key, epoch = owner_key
                    violations.append(InvariantViolation(
                        "migration",
                        f"slate ({updater}, {key!r}) handed to "
                        f"{sorted(receivers)} within migration epoch "
                        f"{epoch}; the ledger assigns exactly one "
                        "receiver per slate per migration", span))
                released[(span.get("updater"), span.get("key"),
                          self._epochs[index])] = span.get("src")
                continue
            if (kind == "execute" and span.get("op_kind") == "update"
                    and not span.get("timer", False)):
                slate = (span.get("op"), span.get("key"),
                         self._epochs[index])
                verb = "executed an update on"
            elif kind == "slate_flush":
                slate = (span.get("updater"), span.get("key"),
                         self._epochs[index])
                verb = "flushed"
            else:
                continue
            donor = released.get(slate)
            if donor is not None and span.get("machine") == donor:
                updater, key, _ = slate
                violations.append(InvariantViolation(
                    "migration",
                    f"donor {donor} {verb} slate ({updater}, {key!r}) "
                    "after handing it off at cutover; the migration "
                    "epoch barrier must fence the donor until the next "
                    "ring change", span))
        return self._attach_chain(violations)

    def check_all(self) -> List[InvariantViolation]:
        """Run every invariant; violations in check order."""
        violations: List[InvariantViolation] = []
        violations.extend(self.check_fifo())
        violations.extend(self.check_watermarks())
        violations.extend(self.check_two_choice())
        violations.extend(self.check_ring_ownership())
        return violations

    # -- helpers ---------------------------------------------------------------
    def _attach_chain(self, violations: List[InvariantViolation]
                      ) -> List[InvariantViolation]:
        """Attach the full station chain to the first violation."""
        for violation in violations[:1]:
            span = violation.span
            if span is None:
                continue
            origin, oseq = span.get("origin"), span.get("oseq")
            if origin is not None and oseq is not None:
                violation.chain = reconstruct_chain(self.spans, origin,
                                                    oseq)
        return violations


def check_trace(trace: Union[str, Tracer, Iterable[Span]],
                checks: Optional[Iterable[str]] = None
                ) -> List[InvariantViolation]:
    """Check a trace given as a JSONL path, a tracer, or span dicts.

    Args:
        trace: Path to a JSONL trace file, a live :class:`Tracer`
            (its retained spans are checked), or an iterable of spans.
        checks: Subset of invariant names to run (``fifo``,
            ``watermarks``, ``two_choice``, ``ring_ownership``, plus
            opt-in ``shed_accounting`` and ``migration``); the
            ``check_all`` set by default.
    """
    if isinstance(trace, str):
        try:
            spans = read_jsonl(trace)
        except OSError as exc:
            raise AnalysisError(f"cannot read trace {trace!r}: {exc}")
        except ValueError as exc:
            raise AnalysisError(f"trace {trace!r} is not valid JSONL: "
                                f"{exc}")
    elif isinstance(trace, Tracer):
        spans = trace.spans()
    else:
        spans = list(trace)
    checker = InvariantChecker(spans)
    available = {
        "fifo": checker.check_fifo,
        "watermarks": checker.check_watermarks,
        "two_choice": checker.check_two_choice,
        "ring_ownership": checker.check_ring_ownership,
        # Opt-in (not in check_all): needs a fault-free, drained trace.
        "shed_accounting": checker.check_shed_accounting,
        # Opt-in (not in check_all): meaningful for elastic traces.
        "migration": checker.check_migration,
    }
    if checks is None:
        return checker.check_all()
    violations: List[InvariantViolation] = []
    for name in checks:
        if name not in available:
            raise AnalysisError(
                f"unknown invariant {name!r}; available: "
                f"{', '.join(sorted(available))}")
        violations.extend(available[name]())
    return violations
