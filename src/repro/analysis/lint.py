"""AST-based lint engine for repo-specific determinism/concurrency rules.

The general-purpose linters (ruff's pyflakes/pycodestyle set, run by CI's
``lint`` job) know nothing about *this* codebase's contracts: that the
simulator must never read the wall clock, that slate writes must ride the
flush path so dedup watermarks stay atomic with the fields, that tracer
calls must be guarded so the disabled path stays free. This module is the
rule engine for those contracts; the rules themselves live in
:mod:`repro.analysis.rules` and register here.

Engine features:

* **Registry** — rules subclass :class:`LintRule` and register with
  :func:`register_rule`; ``iter_rules()`` yields them sorted by code.
* **Per-path scoping** — each rule declares regexes over the
  repo-relative posix path (``repro/sim/runtime.py``); a rule only runs
  where its contract applies (e.g. wall-clock is banned in ``repro.sim``
  but merely audited in the threaded ``repro.muppet`` engines).
* **Suppressions** — ``# noqa: MUP001 -- reason`` on the flagged line
  suppresses that code there. The reason string (after ``--``) is
  *mandatory*: a bare noqa with no reason produces an ``MUP000``
  finding instead of a suppression, so every exemption documents
  itself.

Run it via ``python -m repro analyze lint src/repro`` (exit 1 on
findings) or programmatically through :func:`lint_paths` /
:func:`lint_source` (the fixture tests use the latter with virtual
paths).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Type

from repro.errors import AnalysisError

#: ``# noqa: MUP001 -- reason`` (codes may be comma-separated; the
#: ``--``-prefixed reason is required for the suppression to count).
_NOQA_RE = re.compile(
    r"#\s*noqa:\s*(?P<codes>MUP\d{3}(?:\s*,\s*MUP\d{3})*)"
    r"(?:\s*--\s*(?P<reason>\S.*))?",
)

#: Engine-reserved code for malformed suppressions.
SUPPRESSION_CODE = "MUP000"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        """``path:line:col: CODE message`` — the CLI output line."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass
class Suppression:
    """A parsed ``# noqa`` directive on one physical line."""

    line: int
    codes: Tuple[str, ...]
    reason: Optional[str]


class LintRule:
    """Base class for one ``MUP###`` rule.

    Subclasses set :attr:`code`, :attr:`name`, :attr:`description`, and
    the path scope, then implement :meth:`check`, returning findings for
    one parsed module.
    """

    code: str = ""
    name: str = ""
    description: str = ""
    #: Regexes over the repo-relative posix path; the rule runs on a file
    #: iff any include matches and no exclude matches.
    include: Sequence[str] = (r"^repro/",)
    exclude: Sequence[str] = ()

    def applies_to(self, relpath: str) -> bool:
        """Is ``relpath`` (posix, starting at ``repro/``) in scope?"""
        if not any(re.search(pattern, relpath) for pattern in self.include):
            return False
        return not any(re.search(pattern, relpath) for pattern in self.exclude)

    def check(self, tree: ast.Module, relpath: str,
              source_lines: List[str]) -> List[Finding]:
        """Return this rule's findings for one module."""
        raise NotImplementedError

    def finding(self, relpath: str, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(path=relpath, line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0) + 1,
                       code=self.code, message=message)


_REGISTRY: Dict[str, Type[LintRule]] = {}


def register_rule(cls: Type[LintRule]) -> Type[LintRule]:
    """Class decorator adding a rule to the global registry."""
    if not re.fullmatch(r"MUP\d{3}", cls.code):
        raise AnalysisError(f"rule code must match MUP###, got {cls.code!r}")
    if cls.code == SUPPRESSION_CODE:
        raise AnalysisError(f"{SUPPRESSION_CODE} is reserved for the engine")
    if cls.code in _REGISTRY:
        raise AnalysisError(f"duplicate rule code {cls.code}")
    _REGISTRY[cls.code] = cls
    return cls


def iter_rules() -> Iterator[LintRule]:
    """Instantiate every registered rule, sorted by code."""
    _load_rules()
    for code in sorted(_REGISTRY):
        yield _REGISTRY[code]()


def rule_table() -> List[Tuple[str, str, str]]:
    """``(code, name, description)`` rows for docs and ``--list``."""
    return [(rule.code, rule.name, rule.description) for rule in iter_rules()]


def _load_rules() -> None:
    """Import the rules package (idempotent) to populate the registry."""
    import repro.analysis.rules  # noqa: F401 (import registers rules)


# -- suppression handling ----------------------------------------------------

def parse_suppressions(source_lines: List[str]) -> Tuple[
        Dict[int, Tuple[str, ...]], List[Finding]]:
    """Extract valid suppressions and flag reasonless ones.

    Returns ``(by_line, engine_findings)`` where ``by_line`` maps a line
    number to the codes validly suppressed there.
    """
    by_line: Dict[int, Tuple[str, ...]] = {}
    bad: List[Finding] = []
    for lineno, text in enumerate(source_lines, start=1):
        match = _NOQA_RE.search(text)
        if match is None:
            continue
        codes = tuple(c.strip() for c in match.group("codes").split(","))
        if match.group("reason") is None:
            bad.append(Finding(
                path="", line=lineno, col=match.start() + 1,
                code=SUPPRESSION_CODE,
                message=("suppression of "
                         f"{', '.join(codes)} needs a reason: write "
                         "'# noqa: MUP### -- why this is safe'")))
            continue
        by_line[lineno] = codes
    return by_line, bad


# -- running -----------------------------------------------------------------

@dataclass
class LintReport:
    """Findings plus how much was scanned (for the CLI summary)."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    rules_run: int = 0


def normalize_relpath(path: str) -> str:
    """Repo-relative posix path starting at the ``repro/`` package.

    Rule scopes are written against ``repro/...`` so that lint results
    do not depend on where the repo is checked out or whether the caller
    passed ``src/repro`` or an absolute path.
    """
    posix = Path(path).as_posix()
    marker = posix.rfind("repro/")
    return posix[marker:] if marker >= 0 else posix


def lint_source(source: str, path: str,
                rules: Optional[Iterable[LintRule]] = None) -> List[Finding]:
    """Lint one source string as if it lived at ``path``.

    This is the fixture-test entry point: known-bad snippets are linted
    under virtual paths (``repro/sim/bad.py``) to prove each rule fires,
    stays quiet on clean code, and honors suppressions.
    """
    relpath = normalize_relpath(path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise AnalysisError(f"cannot parse {path}: {exc}") from exc
    source_lines = source.splitlines()
    suppressed, engine_findings = parse_suppressions(source_lines)
    findings = [Finding(path=relpath, line=f.line, col=f.col, code=f.code,
                        message=f.message) for f in engine_findings]
    for rule in (rules if rules is not None else iter_rules()):
        if not rule.applies_to(relpath):
            continue
        for finding in rule.check(tree, relpath, source_lines):
            if finding.code in suppressed.get(finding.line, ()):
                continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Expand files/directories into ``.py`` files, sorted for stable output."""
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise AnalysisError(f"lint target does not exist: {raw}")
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def lint_paths(paths: Sequence[str],
               select: Optional[Sequence[str]] = None) -> LintReport:
    """Lint files/directories; ``select`` restricts to specific codes."""
    rules = [rule for rule in iter_rules()
             if select is None or rule.code in select]
    report = LintReport(rules_run=len(rules))
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        report.files_checked += 1
        report.findings.extend(lint_source(source, str(file_path), rules))
    return report
