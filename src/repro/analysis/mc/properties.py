"""Terminal-state safety properties for explored schedules.

Every schedule the explorer drains to its horizon ends in a terminal
state, which is checked two ways:

* **Trace invariants** — the model's configured subset of
  :func:`repro.analysis.invariants.check_trace` (FIFO per queue,
  watermark monotonicity + dedup coverage, two-choice ownership bounds,
  single-owner ring flushes, migration exactly-one-receiver). These are
  the *same* checkers the chaos benches and CI lint run; the model
  checker adds exhaustiveness, not new oracles.
* **End-state exactness** — the terminal slates of the model's checked
  updater, read through the kv store, must equal the
  :class:`~repro.core.reference.ReferenceExecutor`'s single-threaded
  ground truth. This is the effectively-once contract: every schedule,
  every lattice point, same counts.

A failed property is a :class:`PropertyViolation` — a plain record the
explorer attaches to the decision schedule that produced it, which is
what gets minimized and committed as a counterexample artifact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.analysis.invariants import check_trace

#: Violation kinds that come from the trace checkers (vs exactness).
TRACE_PROPERTY = "invariant"
EXACTNESS_PROPERTY = "exactness"


@dataclass(frozen=True)
class PropertyViolation:
    """One failed terminal-state property.

    Attributes:
        prop: ``invariant`` (a trace checker fired) or ``exactness``
            (terminal slates diverged from the reference executor).
        name: The specific checker (``fifo``, ``watermarks``, ...) or
            the diverging updater for exactness violations.
        detail: Human-readable description of the failure.
        span: The offending span, when a trace checker supplied one.
    """

    prop: str
    name: str
    detail: str
    span: Optional[Dict[str, Any]] = None

    def render(self) -> str:
        return f"[{self.prop}:{self.name}] {self.detail}"


def check_terminal_state(model: Any, runtime: Any,
                         reference: Optional[Dict[str, float]] = None,
                         ) -> List[PropertyViolation]:
    """All property violations of one drained runtime.

    Args:
        model: The :class:`~repro.analysis.mc.models.McModel` whose
            ``checks``/``exact*`` configuration applies.
        runtime: A :class:`~repro.sim.SimRuntime` already run to the
            model's horizon.
        reference: Pre-computed ground-truth slates (saves re-running
            the reference executor once per schedule); computed on
            demand when omitted.
    """
    violations: List[PropertyViolation] = []
    tracer = runtime.tracer
    if tracer is not None and model.checks:
        for found in check_trace(tracer, checks=list(model.checks)):
            violations.append(PropertyViolation(
                prop=TRACE_PROPERTY, name=found.invariant,
                detail=found.message, span=found.span))
    if model.exact:
        if reference is None:
            reference = model.reference_slates()
        violations.extend(check_exactness(model, runtime, reference))
    return violations


def check_exactness(model: Any, runtime: Any,
                    reference: Dict[str, float],
                    ) -> List[PropertyViolation]:
    """Terminal slates vs the reference executor, field-by-field."""
    violations: List[PropertyViolation] = []
    updater, fld = model.exact_updater, model.exact_field
    actual: Dict[str, float] = {}
    for key, slate in runtime.slates_of(updater, read_through=True).items():
        value = slate.get(fld)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            actual[key] = float(value)
    for key in sorted(set(reference) | set(actual)):
        want = reference.get(key)
        got = actual.get(key)
        if want != got:
            violations.append(PropertyViolation(
                prop=EXACTNESS_PROPERTY, name=updater,
                detail=(f"slate ({updater}, {key!r}).{fld}: engine "
                        f"{got!r} != reference {want!r}")))
    return violations
