"""Stateless DFS schedule exploration with sleep-set DPOR.

The explorer is CHESS-style stateless: it never snapshots the engine.
Each schedule is a fresh :class:`~repro.sim.SimRuntime` driven through
the :class:`~repro.sim.des.SchedulerHook` seam by an
:class:`~repro.analysis.mc.controlled.McChooser` that replays a recorded
choice prefix and then picks canonically. After each run the explorer
extends its decision-tree *path* with the new decision points, then
backtracks to the deepest node holding an untried candidate and
branches there.

Reduction is layered:

* **Sleep sets** (the DPOR part): when branching from choice ``a`` to
  sibling ``b``, every transition already fully explored at that node —
  plus whatever was asleep on arrival — goes to sleep in ``b``'s
  subtree, *minus* transitions dependent on ``b`` itself. A run forced
  through a sleeping transition is abandoned: some earlier sibling
  already explored an equivalent continuation.
* **State fingerprints**: a decision point whose semantic fingerprint
  was already visited with a subset sleep set is redundant regardless
  of how it was reached.

Turning both off (``dpor=False``) yields the naive enumerate-everything
DFS — kept runnable because the reported *reduction factor* (naive
schedules / DPOR schedules on the same exhausted model) is the honesty
check on the whole apparatus.

Budgets make partial exploration explicit: ``max_schedules`` bounds the
run count and ``max_decisions`` the branch depth; a budget hit clears
``exhausted`` on the result, and the CLI reports the state space as
*bounded-explored* rather than verified.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.mc.controlled import (McChooser, PruneRun, independent)
from repro.analysis.mc.fingerprint import state_fingerprint
from repro.analysis.mc.models import McModel, McScenario
from repro.analysis.mc.properties import (PropertyViolation,
                                          check_terminal_state)
from repro.faults.lattice import describe_schedule


@dataclass
class ExplorationStats:
    """Counters for one scenario (or aggregated over a model)."""

    schedules_run: int = 0
    schedules_complete: int = 0
    pruned_sleep: int = 0
    pruned_fingerprint: int = 0
    pruned_depth: int = 0
    decision_points: int = 0
    transitions: int = 0
    distinct_fingerprints: int = 0
    fingerprint_hits: int = 0
    max_depth: int = 0
    violations: int = 0
    exhausted: bool = True

    def merge(self, other: "ExplorationStats") -> None:
        self.schedules_run += other.schedules_run
        self.schedules_complete += other.schedules_complete
        self.pruned_sleep += other.pruned_sleep
        self.pruned_fingerprint += other.pruned_fingerprint
        self.pruned_depth += other.pruned_depth
        self.decision_points += other.decision_points
        self.transitions += other.transitions
        self.distinct_fingerprints += other.distinct_fingerprints
        self.fingerprint_hits += other.fingerprint_hits
        self.max_depth = max(self.max_depth, other.max_depth)
        self.violations += other.violations
        self.exhausted = self.exhausted and other.exhausted

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schedules_run": self.schedules_run,
            "schedules_complete": self.schedules_complete,
            "pruned_sleep": self.pruned_sleep,
            "pruned_fingerprint": self.pruned_fingerprint,
            "pruned_depth": self.pruned_depth,
            "decision_points": self.decision_points,
            "transitions": self.transitions,
            "distinct_fingerprints": self.distinct_fingerprints,
            "fingerprint_hits": self.fingerprint_hits,
            "max_depth": self.max_depth,
            "violations": self.violations,
            "exhausted": self.exhausted,
        }


@dataclass
class Counterexample:
    """One violating schedule: everything needed to replay it.

    Attributes:
        model: Model name.
        scenario: Human label of the lattice point.
        scenario_index: Index into ``model.scenarios()``.
        decisions: The full decision trail — per decision point, the
            co-enabled labels and the chosen one (strict replay checks
            both).
        violations: The terminal-state properties that failed.
        minimized: Whether :mod:`repro.analysis.mc.minimize` ran.
        pinned: Length of the load-bearing decision prefix (the part
            that actually forces the bug); the rest of ``decisions`` is
            the canonical continuation, kept for strict replay. ``None``
            until minimization runs.
    """

    model: str
    scenario: str
    scenario_index: int
    decisions: List[Tuple[List[str], str]]
    violations: List[PropertyViolation]
    minimized: bool = False
    pinned: Optional[int] = None


@dataclass
class ScenarioResult:
    """Exploration outcome of one lattice point."""

    scenario: str
    scenario_index: int
    stats: ExplorationStats
    counterexamples: List[Counterexample] = field(default_factory=list)


@dataclass
class ModelResult:
    """Exploration outcome of one model across its fault lattice."""

    model: str
    dpor: bool
    scenarios: List[ScenarioResult]
    stats: ExplorationStats

    @property
    def counterexamples(self) -> List[Counterexample]:
        out: List[Counterexample] = []
        for scenario in self.scenarios:
            out.extend(scenario.counterexamples)
        return out

    @property
    def clean(self) -> bool:
        return not self.counterexamples


class _Node:
    """One decision point on the current DFS path."""

    __slots__ = ("labels", "candidates", "footprints", "arrival_sleep",
                 "explored", "current")

    def __init__(self, labels: List[str], candidates: List[str],
                 footprints: Dict[str, str],
                 arrival_sleep: FrozenSet[str]) -> None:
        self.labels = labels
        self.candidates = candidates
        self.footprints = footprints
        self.arrival_sleep = arrival_sleep
        #: Choices whose subtrees are fully explored.
        self.explored: List[str] = []
        #: The choice whose subtree the path currently descends into.
        self.current: Optional[str] = None

    def untried(self) -> List[str]:
        done: Set[str] = set(self.explored)
        if self.current is not None:
            done.add(self.current)
        return [label for label in self.candidates if label not in done]


class Explorer:
    """Exhaust (or budget-explore) one scenario's schedule space.

    Args:
        scenario: The model + fault-schedule point to explore.
        dpor: Enable sleep sets + fingerprint pruning. ``False`` is the
            naive baseline used to measure the reduction factor.
        max_schedules: Run-count budget (None = unbounded).
        max_decisions: Branch-depth budget per run.
        stop_on_violation: Abandon the scenario after the first
            counterexample (exploration then reports not-exhausted).
        max_counterexamples: Retention cap on recorded counterexamples.
    """

    def __init__(self, scenario: McScenario, dpor: bool = True,
                 max_schedules: Optional[int] = 10_000,
                 max_decisions: int = 10_000,
                 stop_on_violation: bool = False,
                 max_counterexamples: int = 10) -> None:
        self.scenario = scenario
        self.dpor = dpor
        self.max_schedules = max_schedules
        self.max_decisions = max_decisions
        self.stop_on_violation = stop_on_violation
        self.max_counterexamples = max_counterexamples
        self.stats = ExplorationStats()
        self.counterexamples: List[Counterexample] = []
        self._visited: Dict[str, List[FrozenSet[str]]] = {}
        self._path: List[_Node] = []
        self._reference: Optional[Dict[str, float]] = None
        if scenario.model.exact:
            self._reference = scenario.model.reference_slates()

    # -- public ------------------------------------------------------------
    def explore(self) -> ScenarioResult:
        """Run the DFS to exhaustion or budget."""
        self._run_branch(prefix=[], branch_sleep=frozenset())
        while True:
            if self.stop_on_violation and self.counterexamples:
                self.stats.exhausted = False
                break
            if (self.max_schedules is not None
                    and self.stats.schedules_run >= self.max_schedules):
                if self._deepest_branchable() is not None:
                    self.stats.exhausted = False
                break
            depth = self._deepest_branchable()
            if depth is None:
                break
            node = self._path[depth]
            if node.current is not None:
                node.explored.append(node.current)
            choice = node.untried()[0]
            node.current = choice
            del self._path[depth + 1:]
            prefix = [n.current for n in self._path[:depth]]
            prefix.append(choice)
            branch_sleep = self._branch_sleep(node, choice)
            self._run_branch([str(p) for p in prefix], branch_sleep)
        self.stats.violations = sum(
            len(ce.violations) for ce in self.counterexamples)
        self.stats.distinct_fingerprints = len(self._visited)
        return ScenarioResult(
            scenario=self.scenario.label,
            scenario_index=self.scenario.index,
            stats=self.stats,
            counterexamples=list(self.counterexamples))

    # -- internals ---------------------------------------------------------
    def _branch_sleep(self, node: _Node, choice: str) -> FrozenSet[str]:
        if not self.dpor:
            return frozenset()
        choice_fp = node.footprints.get(choice, "*")
        pool = set(node.arrival_sleep) | set(node.explored)
        return frozenset(
            label for label in pool
            if independent(node.footprints.get(label, "*"), choice_fp))

    def _run_branch(self, prefix: List[str],
                    branch_sleep: FrozenSet[str]) -> None:
        runtime = self.scenario.build()
        fingerprint_fn = ((lambda: state_fingerprint(runtime))
                          if self.dpor else None)
        chooser = McChooser(
            runtime, prefix=prefix, branch_sleep=branch_sleep,
            fingerprint_fn=fingerprint_fn,
            visited=self._visited if self.dpor else None,
            max_decisions=self.max_decisions)
        runtime.sim.hook = chooser
        outcome = "complete"
        try:
            runtime.run(self.scenario.model.horizon_s)
        except PruneRun as prune:
            outcome = prune.reason
        self.stats.schedules_run += 1
        self.stats.transitions += chooser.transitions
        self.stats.fingerprint_hits += chooser.fingerprint_hits
        depth = len(chooser.records)
        self.stats.max_depth = max(self.stats.max_depth, depth)
        if outcome == "complete":
            self.stats.schedules_complete += 1
        elif outcome in ("sleep", "sleep-forced"):
            self.stats.pruned_sleep += 1
        elif outcome == "fingerprint":
            self.stats.pruned_fingerprint += 1
        elif outcome == "depth-budget":
            self.stats.pruned_depth += 1
            self.stats.exhausted = False
        self._absorb(chooser, from_depth=len(prefix))
        if outcome == "complete":
            self._check_terminal(chooser, runtime)

    def _absorb(self, chooser: McChooser, from_depth: int) -> None:
        """Append the run's new decision points to the DFS path."""
        records = chooser.records
        if len(self._path) > from_depth:
            # Retracing an existing path must reproduce it exactly.
            del self._path[from_depth:]
        for record in records[from_depth:]:
            self.stats.decision_points += 1
            node = _Node(list(record.labels), list(record.candidates),
                         dict(record.footprints), record.sleep)
            node.current = record.chosen
            self._path.append(node)

    def _deepest_branchable(self) -> Optional[int]:
        for depth in range(len(self._path) - 1, -1, -1):
            if self._path[depth].untried():
                return depth
            # This node is exhausted; fold its current choice in so the
            # parent sees a fully-explored subtree.
            node = self._path[depth]
            if node.current is not None:
                node.explored.append(node.current)
                node.current = None
            del self._path[depth:]
        return None

    def _check_terminal(self, chooser: McChooser, runtime: Any) -> None:
        violations = check_terminal_state(
            self.scenario.model, runtime, reference=self._reference)
        if not violations:
            return
        if len(self.counterexamples) < self.max_counterexamples:
            self.counterexamples.append(Counterexample(
                model=self.scenario.model.name,
                scenario=describe_schedule(self.scenario.schedule),
                scenario_index=self.scenario.index,
                decisions=[(list(r.labels), r.chosen)
                           for r in chooser.records],
                violations=violations))


def explore_model(model: McModel, dpor: bool = True,
                  max_schedules_per_scenario: Optional[int] = 10_000,
                  max_decisions: int = 10_000,
                  stop_on_violation: bool = False) -> ModelResult:
    """Explore every lattice point of one model."""
    results: List[ScenarioResult] = []
    total = ExplorationStats()
    for scenario in model.scenarios():
        explorer = Explorer(
            scenario, dpor=dpor,
            max_schedules=max_schedules_per_scenario,
            max_decisions=max_decisions,
            stop_on_violation=stop_on_violation)
        result = explorer.explore()
        results.append(result)
        total.merge(result.stats)
        if stop_on_violation and result.counterexamples:
            break
    return ModelResult(model=model.name, dpor=dpor,
                       scenarios=results, stats=total)


def replay_decisions(scenario: McScenario,
                     decisions: List[str],
                     strict: bool = True) -> Tuple[Any, McChooser]:
    """Re-execute one recorded schedule; returns (runtime, chooser).

    With ``strict`` the recorded prefix must cover every decision point
    the run encounters — any divergence raises
    :class:`~repro.analysis.mc.controlled.ReplayMismatch`.
    """
    runtime = scenario.build()
    chooser = McChooser(runtime, prefix=list(decisions), strict=strict)
    runtime.sim.hook = chooser
    runtime.run(scenario.model.horizon_s)
    return runtime, chooser
