"""Counterexample minimization: shrink the pinned decision prefix.

A raw counterexample pins *every* decision of the violating run — deep,
noisy, and mostly irrelevant. Minimization finds a short prefix of
those decisions such that pinning only the prefix (and letting the
chooser continue canonically — first candidate — afterwards) still
reproduces a violation. The artifact then records the *full* decision
trail of that minimized run, so strict replay remains byte-exact, but
the ``pinned`` count tells the reader how many choices actually matter.

The search is a bisection maintaining "prefix of length ``hi``
violates": monotonicity is not guaranteed (a shorter pin can dodge the
bug), so the result is a *verified* violating prefix, best-effort
minimal rather than provably minimal. Every probe is a fresh run — the
engine is cheap at model scale (a handful of events), so the dozen
probes of a bisection cost less than one naive exploration round.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.analysis.mc.controlled import McChooser, PruneRun
from repro.analysis.mc.explorer import Counterexample
from repro.analysis.mc.models import McScenario
from repro.analysis.mc.properties import (PropertyViolation,
                                          check_terminal_state)


def _probe(scenario: McScenario, prefix: List[str],
           ) -> Tuple[Optional[McChooser], List[PropertyViolation]]:
    """Replay ``prefix`` then continue canonically; violations found."""
    runtime = scenario.build()
    chooser = McChooser(runtime, prefix=prefix)
    runtime.sim.hook = chooser
    try:
        runtime.run(scenario.model.horizon_s)
    except PruneRun:  # depth budget; treat as non-violating
        return None, []
    return chooser, check_terminal_state(scenario.model, runtime)


def minimize_counterexample(scenario: McScenario,
                            counterexample: Counterexample,
                            ) -> Counterexample:
    """Shrink one counterexample's pinned prefix (verified violating).

    Returns a new :class:`Counterexample` whose ``decisions`` are the
    full trail of the minimized run and whose violations are the ones
    that run actually produced. Falls back to the original (re-verified)
    trail if shrinking fails to reproduce any violation.
    """
    full = [chosen for _, chosen in counterexample.decisions]
    chooser, violations = _probe(scenario, full)
    if chooser is None or not violations:
        # The recorded trail no longer violates (flaky or code drift);
        # return the original unminimized so replay can diagnose.
        return counterexample
    best_chooser, best_violations = chooser, violations
    best_len = len(full)
    lo, hi = 0, len(full)
    while lo < hi:
        mid = (lo + hi) // 2
        chooser, violations = _probe(scenario, full[:mid])
        if chooser is not None and violations:
            best_chooser, best_violations = chooser, violations
            best_len = mid
            hi = mid
        else:
            lo = mid + 1
    return Counterexample(
        model=counterexample.model,
        scenario=counterexample.scenario,
        scenario_index=counterexample.scenario_index,
        decisions=[(list(r.labels), r.chosen)
                   for r in best_chooser.records],
        violations=best_violations,
        minimized=best_len < len(full),
        pinned=best_len)
