"""Committed, replayable counterexample artifacts.

A counterexample is only useful if someone can re-run it after the bug
report goes stale. The artifact is a canonical JSON document holding
everything a fresh checkout needs:

* the model name (scenario construction is code, versioned with it);
* the concrete :class:`~repro.faults.FaultSchedule` as plain
  ``FaultEvent`` field dicts — the same schedule object the chaos tests
  consume, rebuilt verbatim on load;
* the full decision trail — per decision point, the co-enabled labels
  and the chosen one — so replay is *strict*: any divergence between
  the recorded schedule and the code's actual decision points is a
  :class:`~repro.analysis.mc.controlled.ReplayMismatch`, not a silent
  different run;
* the violations the schedule produced, and byte-identity anchors
  (terminal counter snapshot + semantic state fingerprint) that
  :func:`replay_artifact` re-verifies.

Serialization is ``json.dumps(sort_keys=True, indent=2)`` — the same
canonical form the campaign artifacts use — so a committed
counterexample diffs cleanly and re-emission is byte-stable.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.mc.controlled import McChooser, ReplayMismatch
from repro.analysis.mc.explorer import Counterexample
from repro.analysis.mc.fingerprint import state_fingerprint
from repro.analysis.mc.models import MODELS, McScenario
from repro.analysis.mc.properties import (PropertyViolation,
                                          check_terminal_state)
from repro.errors import AnalysisError
from repro.faults.lattice import describe_schedule
from repro.faults.schedule import FaultEvent, FaultSchedule

ARTIFACT_VERSION = 1

#: FaultEvent fields serialized into the artifact (order = output order).
_EVENT_FIELDS = ("kind", "at", "until", "machine", "group", "cpu_factor",
                 "net_factor", "probability", "extra_delay_s", "jitter_s",
                 "phase", "target")


def schedule_to_json(schedule: FaultSchedule) -> Dict[str, Any]:
    """A :class:`FaultSchedule` as plain JSON data."""
    events: List[Dict[str, Any]] = []
    for event in schedule.events():
        row: Dict[str, Any] = {}
        for name in _EVENT_FIELDS:
            value = getattr(event, name)
            if isinstance(value, frozenset):
                value = sorted(value)
            row[name] = value
        events.append(row)
    return {"seed": schedule.seed, "events": events}


def schedule_from_json(data: Dict[str, Any]) -> FaultSchedule:
    """Rebuild the exact :class:`FaultSchedule` an artifact recorded."""
    schedule = FaultSchedule(seed=int(data.get("seed", 0)))
    for row in data.get("events", []):
        kwargs = dict(row)
        group = kwargs.get("group")
        if group is not None:
            kwargs["group"] = frozenset(group)
        schedule.add(FaultEvent(**kwargs))
    return schedule


def counterexample_to_json(counterexample: Counterexample,
                           schedule: FaultSchedule,
                           anchors: Optional[Dict[str, Any]] = None,
                           ) -> Dict[str, Any]:
    """The full artifact document for one counterexample."""
    return {
        "version": ARTIFACT_VERSION,
        "model": counterexample.model,
        "scenario": counterexample.scenario,
        "scenario_index": counterexample.scenario_index,
        "fault_schedule": schedule_to_json(schedule),
        "decisions": [
            {"enabled": list(labels), "chosen": chosen}
            for labels, chosen in counterexample.decisions
        ],
        "violations": [
            {"prop": v.prop, "name": v.name, "detail": v.detail}
            for v in counterexample.violations
        ],
        "minimized": counterexample.minimized,
        "pinned": counterexample.pinned,
        "anchors": anchors or {},
    }


def render_artifact(document: Dict[str, Any]) -> str:
    """Canonical byte-stable rendering (committed form)."""
    return json.dumps(document, sort_keys=True, indent=2) + "\n"


def write_artifact(path: str, document: Dict[str, Any]) -> None:
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_artifact(document))


def load_artifact(path: str) -> Dict[str, Any]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            document = json.load(fh)
    except OSError as exc:
        raise AnalysisError(f"cannot read artifact {path!r}: {exc}")
    except ValueError as exc:
        raise AnalysisError(f"artifact {path!r} is not valid JSON: {exc}")
    version = document.get("version")
    if version != ARTIFACT_VERSION:
        raise AnalysisError(
            f"artifact {path!r} has version {version!r}; this build "
            f"replays version {ARTIFACT_VERSION}")
    for required in ("model", "fault_schedule", "decisions"):
        if required not in document:
            raise AnalysisError(
                f"artifact {path!r} is missing the {required!r} field")
    return document


def terminal_anchors(runtime: Any) -> Dict[str, Any]:
    """Byte-identity anchors of a drained runtime."""
    return {
        "fingerprint": state_fingerprint(runtime),
        "counters": runtime.counters.snapshot(),
    }


def scenario_from_artifact(document: Dict[str, Any]) -> McScenario:
    """The concrete scenario an artifact describes."""
    name = document["model"]
    model = MODELS.get(name)
    if model is None:
        raise AnalysisError(
            f"artifact names unknown model {name!r}; known: "
            f"{', '.join(sorted(MODELS))}")
    schedule = schedule_from_json(document["fault_schedule"])
    return McScenario(model, schedule,
                      int(document.get("scenario_index", 0)))


@dataclass
class ReplayOutcome:
    """Result of strictly replaying one artifact."""

    scenario: str
    decisions: int
    violations: List[PropertyViolation]
    anchors: Dict[str, Any]
    anchors_match: Optional[bool]
    violations_match: bool


def replay_artifact(document: Dict[str, Any]) -> ReplayOutcome:
    """Re-execute a committed counterexample, strictly and verified.

    Strict replay: the recorded decision trail must cover every decision
    point and every recorded choice must be co-enabled when its turn
    comes. On top of the chooser's own checks, the recorded *enabled*
    sets are compared label-for-label, terminal anchors (counters +
    fingerprint) are re-derived, and the violations are re-checked.
    """
    scenario = scenario_from_artifact(document)
    recorded: List[Tuple[List[str], str]] = [
        (list(row["enabled"]), row["chosen"])
        for row in document["decisions"]]
    prefix = [chosen for _, chosen in recorded]
    runtime = scenario.build()
    chooser = McChooser(runtime, prefix=prefix, strict=True)
    runtime.sim.hook = chooser
    runtime.run(scenario.model.horizon_s)
    if len(chooser.records) != len(recorded):
        raise ReplayMismatch(
            f"run hit {len(chooser.records)} decision points; the "
            f"artifact recorded {len(recorded)}")
    for depth, record in enumerate(chooser.records):
        enabled, _ = recorded[depth]
        if record.labels != enabled:
            raise ReplayMismatch(
                f"decision {depth}: enabled set diverged; recorded "
                f"{enabled}, got {record.labels}")
    violations = check_terminal_state(scenario.model, runtime)
    anchors = terminal_anchors(runtime)
    want_anchors = document.get("anchors") or {}
    anchors_match: Optional[bool] = None
    if want_anchors:
        anchors_match = (
            anchors.get("fingerprint") == want_anchors.get("fingerprint")
            and anchors.get("counters") == want_anchors.get("counters"))
    want_violations = [
        (row["prop"], row["name"]) for row in document.get("violations", [])]
    got_violations = [(v.prop, v.name) for v in violations]
    return ReplayOutcome(
        scenario=describe_schedule(scenario.schedule),
        decisions=len(chooser.records),
        violations=violations,
        anchors=anchors,
        anchors_match=anchors_match,
        violations_match=got_violations == want_violations)
