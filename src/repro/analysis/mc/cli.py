"""``python -m repro analyze mc`` — explore / replay / stats.

Exit codes follow ``analyze lint``: 0 means every explored model met
its expectation (clean models clean, known-bug models violating), 1
means findings (an unexpected counterexample, or a known-bug model
that failed to violate — its artifact would be stale), 2 means the
invocation itself was wrong (unknown model, malformed artifact).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Any, List, Optional

from repro.analysis.mc.artifact import (counterexample_to_json,
                                        load_artifact, replay_artifact,
                                        terminal_anchors, write_artifact)
from repro.analysis.mc.explorer import (ModelResult, explore_model,
                                        replay_decisions)
from repro.analysis.mc.minimize import minimize_counterexample
from repro.analysis.mc.models import MODELS, McModel
from repro.errors import AnalysisError


def add_mc_parser(tool: Any) -> None:
    """Attach the ``mc`` subcommand tree to the ``analyze`` subparsers."""
    mc = tool.add_parser(
        "mc",
        help="model-check protocol models: exhaustive DPOR schedule "
             "exploration with replayable counterexamples")
    verb = mc.add_subparsers(dest="mc_verb", required=True)

    explore = verb.add_parser(
        "explore",
        help="explore one model (or all) across its fault lattice")
    explore.add_argument("--model", metavar="NAME", default=None,
                         help="model to explore (default: all); one of "
                              f"{', '.join(sorted(MODELS))}")
    explore.add_argument("--naive", action="store_true",
                         help="disable DPOR + fingerprint pruning "
                              "(baseline enumeration)")
    explore.add_argument("--max-schedules", type=int, default=5_000,
                         help="per-lattice-point schedule budget "
                              "(default: 5000; 0 = unbounded)")
    explore.add_argument("--max-decisions", type=int, default=10_000,
                         help="branch-depth budget per run "
                              "(default: 10000)")
    explore.add_argument("--stop-first", action="store_true",
                         help="stop a model at its first counterexample")
    explore.add_argument("--emit", metavar="DIR", default=None,
                         help="write minimized counterexample artifacts "
                              "into DIR")

    replay = verb.add_parser(
        "replay",
        help="strictly re-execute a committed counterexample artifact")
    replay.add_argument("artifact", metavar="PATH",
                        help="counterexample JSON written by explore "
                             "--emit")
    replay.add_argument("--expect-clean", action="store_true",
                        help="invert the gate: succeed only if the "
                             "replayed schedule no longer violates "
                             "(fixed-bug artifacts)")

    stats = verb.add_parser(
        "stats",
        help="measure the DPOR reduction factor (naive vs reduced "
             "exploration of the same model)")
    stats.add_argument("--model", metavar="NAME", default="recovery",
                       help="model to measure (default: recovery)")
    stats.add_argument("--max-schedules", type=int, default=20_000,
                       help="schedule budget per mode (default: 20000)")
    stats.add_argument("--max-decisions", type=int, default=10_000,
                       help="branch-depth budget per run")


def _resolve_models(name: Optional[str]) -> List[McModel]:
    if name is None:
        return [MODELS[key] for key in sorted(MODELS)]
    model = MODELS.get(name)
    if model is None:
        raise AnalysisError(
            f"unknown model {name!r}; known: {', '.join(sorted(MODELS))}")
    return [model]


def _print_result(result: ModelResult, model: McModel) -> None:
    stats = result.stats
    status = "clean" if result.clean else (
        f"{len(result.counterexamples)} counterexample(s)")
    scope = "exhausted" if stats.exhausted else "budget-bounded"
    print(f"model {result.model}: {status} [{scope}]")
    print(f"  lattice points:   {len(result.scenarios)}")
    print(f"  schedules run:    {stats.schedules_run} "
          f"({stats.schedules_complete} complete)")
    print(f"  decision points:  {stats.decision_points} "
          f"(max depth {stats.max_depth})")
    print(f"  transitions:      {stats.transitions}")
    print(f"  pruned:           {stats.pruned_sleep} sleep, "
          f"{stats.pruned_fingerprint} fingerprint, "
          f"{stats.pruned_depth} depth")
    print(f"  fingerprints:     {stats.distinct_fingerprints} distinct, "
          f"{stats.fingerprint_hits} hits")
    if model.expect_violations:
        verdict = ("violates as expected" if not result.clean
                   else "UNEXPECTEDLY CLEAN (stale known-bug model?)")
        print(f"  known-bug model:  {verdict}")


def _emit_counterexamples(result: ModelResult, model: McModel,
                          directory: str) -> List[str]:
    paths: List[str] = []
    scenarios = model.scenarios()
    for n, counterexample in enumerate(result.counterexamples):
        scenario = scenarios[counterexample.scenario_index]
        minimized = minimize_counterexample(scenario, counterexample)
        runtime, _ = replay_decisions(
            scenario, [chosen for _, chosen in minimized.decisions])
        document = counterexample_to_json(
            minimized, scenario.schedule,
            anchors=terminal_anchors(runtime))
        path = os.path.join(directory, f"{model.name}-{n}.json")
        write_artifact(path, document)
        paths.append(path)
    return paths


def _cmd_explore(args: argparse.Namespace) -> int:
    models = _resolve_models(args.model)
    max_schedules = args.max_schedules if args.max_schedules > 0 else None
    findings = 0
    for model in models:
        result = explore_model(
            model, dpor=not args.naive,
            max_schedules_per_scenario=max_schedules,
            max_decisions=args.max_decisions,
            stop_on_violation=args.stop_first)
        _print_result(result, model)
        unexpected = (result.clean if model.expect_violations
                      else not result.clean)
        if unexpected:
            findings += 1
            for counterexample in result.counterexamples:
                print(f"  counterexample [{counterexample.scenario}] "
                      f"({len(counterexample.decisions)} decisions):")
                for violation in counterexample.violations:
                    print(f"    {violation.render()}")
        if args.emit and result.counterexamples:
            for path in _emit_counterexamples(result, model, args.emit):
                print(f"  wrote {path}")
    return 1 if findings else 0


def _cmd_replay(args: argparse.Namespace) -> int:
    document = load_artifact(args.artifact)
    outcome = replay_artifact(document)
    print(f"replayed {document['model']} [{outcome.scenario}]: "
          f"{outcome.decisions} decisions, "
          f"{len(outcome.violations)} violation(s)")
    for violation in outcome.violations:
        print(f"  {violation.render()}")
    if outcome.anchors_match is not None:
        print(f"  anchors: {'match' if outcome.anchors_match else 'DIVERGED'}")
    print(f"  violations vs artifact: "
          f"{'match' if outcome.violations_match else 'DIVERGED'}")
    if args.expect_clean:
        return 0 if not outcome.violations else 1
    ok = outcome.violations_match and outcome.anchors_match is not False
    return 0 if ok else 1


def _cmd_stats(args: argparse.Namespace) -> int:
    models = _resolve_models(args.model)
    model = models[0]
    max_schedules = args.max_schedules if args.max_schedules > 0 else None
    reduced = explore_model(model, dpor=True,
                            max_schedules_per_scenario=max_schedules,
                            max_decisions=args.max_decisions)
    naive = explore_model(model, dpor=False,
                          max_schedules_per_scenario=max_schedules,
                          max_decisions=args.max_decisions)
    print(f"model {model.name}: DPOR reduction")
    for label, result in (("dpor", reduced), ("naive", naive)):
        stats = result.stats
        scope = "exhausted" if stats.exhausted else "budget-bounded"
        print(f"  {label:6} schedules={stats.schedules_run} "
              f"transitions={stats.transitions} [{scope}]")
    if reduced.stats.schedules_run:
        factor = naive.stats.schedules_run / reduced.stats.schedules_run
        print(f"  reduction factor: {factor:.2f}x"
              + ("" if naive.stats.exhausted else " (naive hit budget; "
                 "true factor is larger)"))
    if not reduced.clean or not naive.clean:
        expected = model.expect_violations
        print("  note: counterexamples found"
              + (" (expected for this model)" if expected else ""))
        if not expected:
            return 1
    return 0


def dispatch(args: argparse.Namespace) -> int:
    """Entry point called from ``repro.cli`` for ``analyze mc``."""
    try:
        if args.mc_verb == "explore":
            return _cmd_explore(args)
        if args.mc_verb == "replay":
            return _cmd_replay(args)
        if args.mc_verb == "stats":
            return _cmd_stats(args)
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"error: unknown mc verb {args.mc_verb!r}", file=sys.stderr)
    return 2
