"""Protocol model checking over the discrete-event engine.

Exhaustive small-scope schedule exploration: the DES's artificial
tie-break (insertion sequence among same-``(time, priority)`` events) is
replaced by a controlled chooser, and every interleaving of each
checked model's co-enabled transitions is explored — under a bounded
lattice of crash/recover/migration-crash fault placements — with
sleep-set DPOR and semantic state-fingerprint pruning keeping the
search tractable. Terminal states are checked against the *existing*
safety oracles (trace invariants + reference-executor exactness), and
violating schedules are minimized into committed, strictly replayable
JSON artifacts.

Entry points: ``python -m repro analyze mc {explore,replay,stats}``,
or programmatically :func:`explore_model` over the :data:`MODELS`
registry.
"""

from repro.analysis.mc.artifact import (load_artifact, render_artifact,
                                        replay_artifact, write_artifact)
from repro.analysis.mc.controlled import (DecisionRecord, McChooser,
                                          PruneRun, ReplayMismatch,
                                          classify_entry, independent)
from repro.analysis.mc.explorer import (Counterexample, ExplorationStats,
                                        Explorer, ModelResult,
                                        ScenarioResult, explore_model,
                                        replay_decisions)
from repro.analysis.mc.fingerprint import state_fingerprint
from repro.analysis.mc.minimize import minimize_counterexample
from repro.analysis.mc.models import MODELS, McModel, McScenario
from repro.analysis.mc.properties import (PropertyViolation,
                                          check_terminal_state)

__all__ = [
    "MODELS",
    "Counterexample",
    "DecisionRecord",
    "ExplorationStats",
    "Explorer",
    "McChooser",
    "McModel",
    "McScenario",
    "ModelResult",
    "PropertyViolation",
    "PruneRun",
    "ReplayMismatch",
    "ScenarioResult",
    "check_terminal_state",
    "classify_entry",
    "explore_model",
    "independent",
    "load_artifact",
    "minimize_counterexample",
    "render_artifact",
    "replay_artifact",
    "replay_decisions",
    "state_fingerprint",
    "write_artifact",
]
