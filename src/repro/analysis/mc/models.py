"""Small-scope protocol models for the model checker.

Each :class:`McModel` is a complete, tiny, *tie-engineered* scenario:
an application, a cluster, a config, an explicit source-event list, and
a bounded :class:`~repro.faults.FaultLattice`. Tie engineering means the
timing surface is quantized so that concurrent transitions actually
collide on the DES clock — equal-timestamp source events, a 1 ms cost
grid, 1 ms network latency with infinite bandwidth (no payload-size
jitter) — because the checker branches exactly where the heap holds two
co-enabled entries. A model whose events never tie has one schedule and
proves nothing.

The four checked protocols (plus one deliberately broken variant):

* ``recovery`` — machine-failure broadcast + journal replay through the
  rerouted ring (Section 4.3 extended with effectively-once dedup).
* ``epoch`` — the checkpoint-epoch barrier: journal pruning must never
  outrun slate durability, even with a crash straddling the boundary.
* ``two_choice_dedup`` — effectively-once under the Section 4.5
  two-choice dispatcher, replay pins on (the PR-8 fix).
* ``two_choice_dedup_unpinned`` — the same model with replay pins
  neutered, resurrecting the pre-fix reorder residual: the checker is
  *expected* to find a counterexample here (and its minimized schedule
  is the committed regression artifact).
* ``migration`` — the live-handoff protocol
  (snapshot → delta → cutover → ack) under phase-placed participant
  crashes.

Small-scope hypothesis: protocol bugs show up at tiny bounds (a handful
of events, two or three machines, one fault). The bounds here are the
documented, deliberate scope of the exhaustive claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.faults.lattice import (CrashSite, FaultLattice, MigrationSite,
                                  describe_schedule)
from repro.faults.schedule import FaultSchedule


def _quantized_costs() -> Any:
    """Every service time on a 1 ms grid so transitions tie."""
    from repro.sim.costs import CostModel
    return CostModel(
        source_service_s=0.001,
        map_service_s=0.001,
        update_service_s=0.001,
        ipc_overhead_s=0.0,
        dispatch_lock_s=0.0,
        slate_contention_s=0.0,
        context_switch_s=0.0,
        slate_byte_cost_s=0.0,
    )


def _tie_network() -> Any:
    """1 ms fixed hop, infinite bandwidth: transfer time is size-free."""
    from repro.cluster.topology import NetworkSpec
    return NetworkSpec(latency_s=0.001,
                       bandwidth_bytes_per_s=float("inf"))


def _cluster(count: int, cores: int) -> Any:
    from repro.cluster import ClusterSpec
    return ClusterSpec.uniform(count, cores=cores, network=_tie_network())


def build_mc_pipeline_app() -> Any:
    """S1 → M1(echo) → S2 → U1(count): the two-hop checked workflow."""
    from repro.core.application import Application
    from repro.core.operators import Mapper, Updater

    class _Echo(Mapper):
        def map(self, ctx: Any, event: Any) -> None:
            ctx.publish("S2", event.key, event.value)

    class _Count(Updater):
        def init_slate(self, key: str) -> dict:
            return {"count": 0}

        def update(self, ctx: Any, event: Any, slate: Any) -> None:
            slate["count"] += 1

    app = Application("mc-pipeline")
    app.add_stream("S1", external=True)
    app.add_stream("S2")
    app.add_mapper("M1", _Echo, subscribes=["S1"], publishes=["S2"])
    app.add_updater("U1", _Count, subscribes=["S2"])
    return app.validate()


def build_mc_counter_app() -> Any:
    """S1 → U1(count): the one-hop workflow (two-choice model)."""
    from repro.core.application import Application
    from repro.core.operators import Updater

    class _Count(Updater):
        def init_slate(self, key: str) -> dict:
            return {"count": 0}

        def update(self, ctx: Any, event: Any, slate: Any) -> None:
            slate["count"] += 1

    app = Application("mc-counter")
    app.add_stream("S1", external=True)
    app.add_updater("U1", _Count, subscribes=["S1"])
    return app.validate()


def _events(sid: str, spec: List[Tuple[float, str]]) -> List[Any]:
    """Materialize ``(ts, key)`` pairs as source events (value = index)."""
    from repro.core.event import Event
    return [Event(sid, ts, key, i) for i, (ts, key) in enumerate(spec)]


class _NoPins(dict):
    """A replay-pin table that refuses to learn: every insert is
    discarded, so the dispatcher behaves exactly as it did before the
    replay-ordering guard existed. Installed by the ``unpinned`` model
    variant to resurrect the two-choice reorder residual."""

    def __setitem__(self, key: Any, value: Any) -> None:
        return


def _unpin_replay_guard(runtime: Any) -> None:
    for machine in runtime.machines.values():  # noqa: MUP010 -- patch every machine; order-free
        machine.replay_pins = _NoPins()


@dataclass(frozen=True)
class McScenario:
    """One concrete lattice point of a model: model + fault schedule."""

    model: "McModel"
    schedule: FaultSchedule
    index: int

    @property
    def label(self) -> str:
        return f"{self.model.name}[{self.index}:{describe_schedule(self.schedule)}]"

    def build(self) -> Any:
        """A fresh, un-run :class:`~repro.sim.SimRuntime` for this point."""
        return self.model.make_runtime(self.schedule)


@dataclass(frozen=True)
class McModel:
    """A checked protocol: builders, bounds, and properties.

    Attributes:
        name: Registry key (``analyze mc explore --model <name>``).
        description: One-line summary for reports.
        build_app: Fresh :class:`~repro.core.application.Application`.
        build_cluster: Fresh :class:`~repro.cluster.ClusterSpec`.
        build_config: Fresh :class:`~repro.sim.SimConfig` (must enable
            tracing; the checker asserts it).
        build_events: Fresh source-event list (explicit, equal-timestamp
            ties included by construction).
        source_sid: External stream the events are injected on.
        lattice: The bounded fault lattice explored around the model.
        horizon_s: Simulated drain horizon per schedule.
        checks: Trace invariants run at every terminal state.
        exact: Compare terminal slates against the
            :class:`~repro.core.reference.ReferenceExecutor`.
        exact_updater: Updater whose slates carry the ground truth.
        exact_field: Numeric slate field compared for exactness.
        setup: Optional hook run on the fresh runtime before the clock
            starts (e.g. scheduling a planned migration).
        patch: Optional hook that *breaks* the runtime on purpose
            (known-bug variants); a model with a patch is expected to
            yield counterexamples and is excluded from clean-run gates.
        expect_violations: Whether counterexamples are the expected
            outcome (True only for known-bug variants).
    """

    name: str
    description: str
    build_app: Callable[[], Any]
    build_cluster: Callable[[], Any]
    build_config: Callable[[], Any]
    build_events: Callable[[], List[Any]]
    lattice: FaultLattice
    source_sid: str = "S1"
    horizon_s: float = 2.0
    checks: Tuple[str, ...] = ("fifo", "watermarks", "ring_ownership")
    exact: bool = True
    exact_updater: str = "U1"
    exact_field: str = "count"
    setup: Optional[Callable[[Any], None]] = None
    patch: Optional[Callable[[Any], None]] = None
    expect_violations: bool = False

    def scenarios(self) -> List[McScenario]:
        """The lattice points, deterministically ordered."""
        return [McScenario(self, schedule, i)
                for i, schedule in enumerate(self.lattice.schedules())]

    def make_runtime(self, schedule: FaultSchedule) -> Any:
        """A fresh runtime wired for this model and one fault schedule."""
        from repro.sim.runtime import SimRuntime
        from repro.sim.sources import from_trace

        config = self.build_config()
        if not config.trace:
            raise ConfigurationError(
                f"model {self.name!r}: build_config must set trace=True "
                "(terminal properties are checked over the span trace)")
        source = from_trace(self.source_sid, self.build_events())
        runtime = SimRuntime(self.build_app(), self.build_cluster(),
                             config, [source], failures=schedule)
        if self.setup is not None:
            self.setup(runtime)
        if self.patch is not None:
            self.patch(runtime)
        return runtime

    def reference_slates(self) -> Dict[str, float]:
        """Ground-truth ``{key: value}`` from the reference executor."""
        from repro.core.reference import ReferenceExecutor
        result = ReferenceExecutor(self.build_app()).run(self.build_events())
        return result.numeric_slates(self.exact_updater, self.exact_field)


def _base_config(**overrides: Any) -> Any:
    from repro.sim.runtime import SimConfig
    from repro.slates.manager import FlushPolicy

    defaults: Dict[str, Any] = dict(
        costs=_quantized_costs(),
        delivery_semantics="effectively-once",
        flush_policy=FlushPolicy.every(0.05),
        flusher_period_s=0.05,
        # Deliberately offset from the flusher: a liveness sweep that
        # ties with every flusher tick multiplies pure control-plane
        # interleavings (no protocol content) at every 50 ms grid
        # point; 40 ms collides only at 200 ms multiples, keeping the
        # timer-vs-timer decision points that matter reachable without
        # drowning the search in tick shuffles.
        heartbeat_s=0.04,
        queue_capacity=10_000,
        trace=True,
    )
    defaults.update(overrides)
    return SimConfig(**defaults)


# -- recovery: failure broadcast + journal replay ------------------------

def _recovery_config() -> Any:
    return _base_config()


def _recovery_events() -> List[Any]:
    # Three equal-timestamp pairs across four keys: every pair is a
    # genuine delivery race (two machines, both directions), and the
    # last pair lands while the crash window is open.
    return _events("S1", [
        (0.0, "k0"), (0.0, "k1"),
        (0.01, "k2"), (0.01, "k3"),
        (0.03, "k0"), (0.03, "k2"),
    ])


RECOVERY_MODEL = McModel(
    name="recovery",
    description=("machine-recovery broadcast: crash detection, ring "
                 "re-route, journal replay, effectively-once dedup"),
    build_app=build_mc_pipeline_app,
    build_cluster=lambda: _cluster(2, cores=1),
    build_config=_recovery_config,
    build_events=_recovery_events,
    lattice=FaultLattice(
        crashes=(CrashSite("m001", at_times=(0.02,),
                           recover_after=(0.1, None)),),
        max_faults=1),
    horizon_s=1.0,
    checks=("fifo", "watermarks", "ring_ownership"),
)


# -- epoch: checkpoint barrier vs journal pruning ------------------------

def _epoch_config() -> Any:
    # A short epoch so the barrier fires inside the model's horizon;
    # the crash sites straddle the first barrier at t=0.2.
    return _base_config(checkpoint_epoch_s=0.2)


def _epoch_events() -> List[Any]:
    return _events("S1", [
        (0.0, "k0"), (0.0, "k1"),
        (0.15, "k0"), (0.15, "k1"),
        (0.22, "k0"), (0.22, "k1"),
    ])


EPOCH_MODEL = McModel(
    name="epoch",
    description=("checkpoint-epoch barrier: journal pruning must never "
                 "outrun slate durability across a crash at the boundary"),
    build_app=build_mc_pipeline_app,
    build_cluster=lambda: _cluster(2, cores=1),
    build_config=_epoch_config,
    build_events=_epoch_events,
    lattice=FaultLattice(
        crashes=(CrashSite("m001", at_times=(0.19, 0.23),
                           recover_after=(0.1,)),),
        max_faults=1),
    horizon_s=1.0,
    checks=("fifo", "watermarks", "ring_ownership"),
)


EPOCH_LAZY_DETECTION_MODEL = McModel(
    name="epoch_lazy_detection",
    description=("epoch without the liveness sweep: a quiet-window "
                 "crash is never declared, journal replay never fires, "
                 "and unflushed updates die with the cache — the "
                 "checker's first real find, kept as a known-bug model"),
    build_app=build_mc_pipeline_app,
    build_cluster=lambda: _cluster(2, cores=1),
    build_config=lambda: _base_config(checkpoint_epoch_s=0.2,
                                      heartbeat_s=None),
    build_events=_epoch_events,
    lattice=FaultLattice(
        crashes=(CrashSite("m001", at_times=(0.23,),
                           recover_after=(0.1,)),),
        include_empty=False,
        max_faults=1),
    horizon_s=1.0,
    checks=("fifo", "watermarks", "ring_ownership"),
    expect_violations=True,
)


# -- two-choice dedup: replay pins under the 4.5 dispatcher --------------

def _two_choice_config() -> Any:
    return _base_config(two_choice=True)


def _two_choice_events() -> List[Any]:
    # Two keys, chosen so the reorder residual is *reachable*. The
    # dispatcher's affinity check pins a key to whichever worker is
    # currently processing it, so a single hot key can never split
    # across workers — the race needs a filler key sharing the hot
    # key's primary worker. ``k0`` hashes to m001 (the crash victim);
    # ``f4`` hashes to m000 (the survivor) *and* to the same primary
    # worker index as ``k0``. The k0 pair is journaled before the
    # crash; the heartbeat declares m001 dead at 0.04 and the journal
    # replays to m000 at ~0.041 — exactly when the f4 pair (sourced
    # 0.039) arrives. With filler occupying the primary worker, the
    # scheduler can queue replayed k0:0 behind it, deepen the queue
    # with f4's second event, and spill replayed k0:1 to the idle
    # secondary — k0:1 applies first, the watermark advances, and
    # k0:0 is dedup-skipped. Replay pins forbid the split; with the
    # pins neutered the model checker finds the lost update.
    return _events("S1", [
        (0.0, "k0"), (0.0, "k0"),
        (0.039, "f4"), (0.039, "f4"),
    ])


TWO_CHOICE_MODEL = McModel(
    name="two_choice_dedup",
    description=("effectively-once under the two-choice dispatcher: "
                 "replay pins keep replayed events FIFO with fresh ones"),
    build_app=build_mc_counter_app,
    build_cluster=lambda: _cluster(2, cores=2),
    build_config=_two_choice_config,
    build_events=_two_choice_events,
    lattice=FaultLattice(
        crashes=(CrashSite("m000", at_times=(0.02,), recover_after=(0.1,)),
                 CrashSite("m001", at_times=(0.02,), recover_after=(0.1,))),
        max_faults=1),
    horizon_s=1.0,
    checks=("fifo", "watermarks", "two_choice"),
)


TWO_CHOICE_UNPINNED_MODEL = McModel(
    name="two_choice_dedup_unpinned",
    description=("two_choice_dedup with replay pins neutered: the "
                 "pre-fix reorder residual, expected to violate"),
    build_app=build_mc_counter_app,
    build_cluster=lambda: _cluster(2, cores=2),
    build_config=_two_choice_config,
    build_events=_two_choice_events,
    lattice=FaultLattice(
        crashes=(CrashSite("m000", at_times=(0.02,), recover_after=(0.1,)),
                 CrashSite("m001", at_times=(0.02,), recover_after=(0.1,))),
        max_faults=1),
    horizon_s=1.0,
    checks=("fifo", "watermarks", "two_choice"),
    patch=_unpin_replay_guard,
    expect_violations=True,
)


# -- migration: snapshot → delta → cutover → ack -------------------------

def _migration_config() -> Any:
    from repro.elastic import MigrationConfig
    return _base_config(migration=MigrationConfig(delta_round_s=0.02))


def _migration_events() -> List[Any]:
    return _events("S1", [
        (0.0, "k0"), (0.0, "k1"),
        (0.02, "k2"), (0.02, "k3"),
        (0.08, "k0"), (0.08, "k2"),
    ])


def _migration_setup(runtime: Any) -> None:
    runtime.schedule_remove_machine(0.05, "m001")


MIGRATION_MODEL = McModel(
    name="migration",
    description=("live slate handoff: snapshot/delta/cutover/ack under "
                 "phase-placed participant crashes"),
    build_app=build_mc_pipeline_app,
    build_cluster=lambda: _cluster(3, cores=1),
    build_config=_migration_config,
    build_events=_migration_events,
    lattice=FaultLattice(
        migrations=(MigrationSite(
            phases=("snapshot", "delta_stream", "cutover", "ack"),
            targets=("donor", "receiver")),),
        max_faults=1),
    horizon_s=2.0,
    checks=("fifo", "watermarks", "ring_ownership", "migration"),
    setup=_migration_setup,
)


#: Registry: every checked model by name. The ``unpinned`` variant is a
#: known-bug model (``expect_violations``): ``mc explore --all`` runs it
#: and asserts it *does* violate, the clean gate covers the rest.
MODELS: Dict[str, McModel] = {
    model.name: model
    for model in (RECOVERY_MODEL, EPOCH_MODEL, EPOCH_LAZY_DETECTION_MODEL,
                  TWO_CHOICE_MODEL, TWO_CHOICE_UNPINNED_MODEL,
                  MIGRATION_MODEL)
}
