"""Semantic state fingerprints for model-checking prune decisions.

Two interleavings that converge to the *same semantic state* have the
same set of reachable continuations, so the explorer only needs to
finish one of them. The fingerprint is a SHA-256 over a canonical
rendering of everything that can influence future behaviour or the
properties checked at the terminal state:

* the virtual clock;
* per-machine liveness, retirement, free cores, replay pins, and every
  worker's queue contents (event key, destination function, provenance,
  timer/replayed flags) plus busy/current state;
* every resident slate — application fields, per-origin dedup
  watermarks, and the dirty flag — across all slate managers;
* the replicated kv store's resolved cells per updater column;
* hash-ring membership, exclusions, and generation;
* the replay journal's entries (order matters: replay re-sends in
  recorded order);
* a summary of the pending event heap (time, priority, label) — two
  states with identical memory but different scheduled futures are not
  equivalent;
* the run's counters, and (when tracing) an order-insensitive digest of
  the spans emitted so far. The span digest makes fingerprint pruning
  honest for the *trace* invariants too: a state only collides when its
  history is observationally the same multiset of spans, not merely
  when its memory converged.

Deliberately **excluded**: heap sequence numbers, LRU order, memo
tables, latency-sample order — bookkeeping that differs across
equivalent interleavings without affecting semantics.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, List, Tuple

from repro.analysis.mc.controlled import classify_entry


def _slate_state(mgr: Any) -> List[Tuple[Any, ...]]:
    cache = mgr.cache
    rows: List[Tuple[Any, ...]] = []
    for slate_key in sorted(cache.resident()):
        slate = cache.peek(slate_key)
        if slate is None:
            continue
        watermarks = getattr(slate, "_watermarks", None) or {}
        rows.append((
            slate_key.updater, slate_key.key,
            sorted(slate._data.items()),
            sorted(watermarks.items()),
            bool(slate.dirty),
        ))
    return rows


def _machine_state(runtime: Any) -> List[Tuple[Any, ...]]:
    rows: List[Tuple[Any, ...]] = []
    for name in sorted(runtime.machines):
        machine = runtime.machines[name]
        pins = sorted(
            (key, fn, pinned[0].wid, pinned[1])
            for (key, fn), pinned in machine.replay_pins.items())
        workers: List[Tuple[Any, ...]] = []
        for worker in machine.workers:
            queue = [
                (env.event.key, env.dest_fn, *env.event.provenance(),
                 env.is_timer, env.replayed)
                for env in worker.queue
            ]
            workers.append((worker.wid, worker.busy, worker.current,
                            worker.waiting, queue))
        rows.append((name, machine.alive, machine.retired,
                     machine.free_cores, machine.pressure_tier,
                     pins, workers))
    return rows


def _manager_states(runtime: Any) -> List[Tuple[str, Any]]:
    rows: List[Tuple[str, Any]] = []
    for name in sorted(runtime.machines):
        machine = runtime.machines[name]
        if machine.central_mgr is not None:
            rows.append((f"{name}:central",
                         _slate_state(machine.central_mgr)))
        else:
            for worker in machine.workers:
                rows.append((worker.wid, _slate_state(worker.mgr)))
    return rows


def _kv_state(runtime: Any) -> List[Tuple[str, Any]]:
    rows: List[Tuple[str, Any]] = []
    for spec in runtime.app.updaters():
        cells = runtime.store.column_cells(spec.name)
        rows.append((spec.name, sorted(
            (row, cell.value.hex() if cell.value is not None else None,
             cell.write_ts)
            for row, cell in cells.items())))
    return rows


def _journal_state(runtime: Any) -> List[Tuple[Any, ...]]:
    journal = runtime.replay_journal
    if journal is None:
        return []
    rows: List[Tuple[Any, ...]] = []
    for sent_at, dest, payload in journal._entries:
        event = getattr(payload, "event", None)
        if event is not None:
            origin, oseq = event.provenance()
            rows.append((sent_at, dest, origin, oseq))
        else:
            rows.append((sent_at, dest, repr(payload)))
    return rows


def _heap_state(runtime: Any) -> List[Tuple[Any, ...]]:
    rows: List[Tuple[Any, ...]] = []
    for entry in runtime.sim._heap:
        handle = entry[4]
        if handle is not None and handle.cancelled:
            continue
        label, _ = classify_entry(runtime, entry)
        rows.append((entry[0], entry[1], label))
    rows.sort()
    return rows


def _trace_state(runtime: Any) -> List[str]:
    tracer = getattr(runtime, "tracer", None)
    if tracer is None:
        return []
    digests = [
        hashlib.sha256(
            json.dumps(span, sort_keys=True, default=repr).encode()
        ).hexdigest()
        for span in tracer.spans()
    ]
    digests.sort()
    return digests


def state_fingerprint(runtime: Any) -> str:
    """SHA-256 hex digest of the runtime's canonical semantic state."""
    state = {
        "now": runtime.sim.now(),
        "machines": _machine_state(runtime),
        "slates": _manager_states(runtime),
        "kv": _kv_state(runtime),
        "ring": [sorted(runtime._machine_ring._members),
                 sorted(runtime._machine_ring._excluded),
                 runtime._machine_ring.generation],
        "failed": sorted(runtime._known_failed),
        "journal": _journal_state(runtime),
        "heap": _heap_state(runtime),
        "counters": runtime.counters.snapshot(),
        "trace": _trace_state(runtime),
    }
    blob = json.dumps(state, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()
