"""Controlled nondeterminism: the model checker's scheduler shim.

The DES resolves same-``(time, priority)`` ties by insertion sequence —
an artificial total order. :class:`McChooser` plugs into the
:class:`repro.sim.des.SchedulerHook` seam and turns every such tie into
an explicit *decision point*: the co-enabled entries are given stable
semantic labels, one is chosen (replaying a recorded prefix, then
canonical first-candidate), and the choice is recorded so the explorer
can branch. Sleep sets ride along the run: transitions proven redundant
by an earlier sibling exploration are never chosen, and a run forced
into a sleeping transition aborts as redundant (:class:`PruneRun`).

Labels are derived from the scheduled callable and its semantic
arguments (machine, provenance, destination function), **not** from heap
sequence numbers, so the same logical transition keeps its name across
sibling branches and across fingerprint-equivalent states.

Footprints drive the independence relation for sleep-set DPOR:

* ``m:<machine>`` — the transition reads/writes only that machine's
  queues, workers, cores, and local slate cache (a delivery that will
  not re-route; a finish with no downstream outputs).
* ``*`` (global) — anything that may touch the ring, the master, the
  replay journal, another machine, or cluster-wide state. Global
  transitions are dependent on everything.

Two transitions are independent iff both are machine-scoped on
*different* machines; this is deliberately conservative (independence
claimed only where commutation is structurally evident), which keeps
the reduction sound at the cost of exploring some equivalent orders.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.errors import AnalysisError

#: The footprint of a transition that may touch shared cluster state.
GLOBAL_FOOTPRINT = "*"


class PruneRun(Exception):
    """Abort the current run: its continuation is provably redundant
    (sleep set) or already explored (state fingerprint)."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class ReplayMismatch(AnalysisError):
    """A recorded schedule no longer matches the scenario's decision
    points — the artifact and the code have diverged."""


def classify_entry(runtime: Any, entry: Tuple[Any, ...]) -> Tuple[str, str]:
    """``(label, footprint)`` for one heap entry.

    Labels are replay-stable: built from the callable's name and the
    semantic identity of its operands (machine, event provenance,
    destination function), never from heap sequence numbers.
    """
    action, args = entry[3], entry[5]
    if args is not None:
        name = getattr(action, "__name__", "?")
        if name == "_deliver":
            machine, env = args[0], args[1]
            origin, oseq = env.event.provenance()
            prefix = "deliver-timer" if env.is_timer else "deliver"
            label = (f"{prefix}:{machine.name}:{env.dest_fn}"
                     f":{origin}:{oseq}")
            # A delivery is machine-local unless the ring moved the key
            # while the message was in flight — then _deliver re-routes
            # through _send (journal + network), which is global.
            dest = runtime._destination_machine(env)
            footprint = (f"m:{machine.name}" if dest is machine
                         else GLOBAL_FOOTPRINT)
            return label, footprint
        if name == "_finish":
            worker, env = args[0], args[1]
            outputs, timers = args[2], args[3]
            origin, oseq = env.event.provenance()
            label = f"finish:{worker.wid}:{env.dest_fn}:{origin}:{oseq}"
            # Publishing downstream re-enters _send (journal, routing,
            # possibly another machine): global. A sink update's finish
            # only frees the core and pulls the next queued event.
            footprint = (GLOBAL_FOOTPRINT if (outputs or timers)
                         else f"m:{worker.machine.name}")
            return label, footprint
        if name == "_send":
            env = args[0]
            origin, oseq = env.event.provenance()
            prefix = "timer" if env.is_timer else "send"
            label = f"{prefix}:{env.dest_fn}:{origin}:{oseq}"
            return label, GLOBAL_FOOTPRINT
        return f"call:{name}", GLOBAL_FOOTPRINT
    qualname = getattr(action, "__qualname__", None)
    if qualname is None:
        return f"ctl:{type(action).__name__}", GLOBAL_FOOTPRINT
    # Legacy closures: source steps, failure broadcasts, kill/revive,
    # flusher/epoch ticks, migration phase lambdas. All control plane,
    # all global.
    short = qualname.split("<locals>.")[-1].split(".")[-1]
    return f"ctl:{short}", GLOBAL_FOOTPRINT


def fifo_class(runtime: Any,
               entry: Tuple[Any, ...]) -> Optional[Tuple[str, str, bool]]:
    """The FIFO-link channel of a delivery entry, or ``None``.

    The engine's dedup watermarks are *high-water marks*: they assume
    per-origin in-order application, which holds because links are FIFO
    (TCP) and journal replay re-sends in recorded order. Schedules that
    reorder two same-channel deliveries are therefore unrealizable —
    offering them would make the checker report false counterexamples
    against an environment the protocol never promised to survive. A
    channel is ``(destination machine, origin, replayed?)``: fresh
    events of one origin ride one ordered path (source → owner), and
    one replay batch rides another; a *fresh* delivery racing a
    *replayed* one crosses two senders and stays freely reorderable
    (that race is real — it is what replay pins exist to serialize).
    """
    action, args = entry[3], entry[5]
    if args is None or getattr(action, "__name__", "") != "_deliver":
        return None
    machine, env = args[0], args[1]
    if env.is_timer:
        return None
    origin, _ = env.event.provenance()
    return (machine.name, origin, bool(env.replayed))


def fifo_blocked_labels(runtime: Any, entries: List[Tuple[Any, ...]],
                        labels: List[str]) -> FrozenSet[str]:
    """Labels of co-enabled deliveries blocked by the FIFO constraint
    (a same-channel sibling with a smaller oseq is also enabled)."""
    heads: Dict[Tuple[str, str, bool], int] = {}
    oseqs: List[Optional[int]] = []
    channels: List[Optional[Tuple[str, str, bool]]] = []
    for entry in entries:
        channel = fifo_class(runtime, entry)
        channels.append(channel)
        if channel is None:
            oseqs.append(None)
            continue
        _, oseq = entry[5][1].event.provenance()
        oseqs.append(oseq)
        head = heads.get(channel)
        if head is None or oseq < head:
            heads[channel] = oseq
    blocked = []
    for label, channel, oseq in zip(labels, channels, oseqs):
        if channel is not None and oseq is not None \
                and oseq > heads[channel]:
            blocked.append(label)
    return frozenset(blocked)


def independent(fp_a: str, fp_b: str) -> bool:
    """Whether two transitions commute (footprint disjointness)."""
    if fp_a == GLOBAL_FOOTPRINT or fp_b == GLOBAL_FOOTPRINT:
        return False
    return fp_a != fp_b


@dataclass
class DecisionRecord:
    """One decision point as seen during a run.

    Attributes:
        labels: Co-enabled transition labels in canonical (seq) order.
        candidates: Labels not asleep at arrival (what may be chosen).
        sleep: The sleep set at arrival.
        chosen: The label actually executed.
        footprints: Label -> footprint for every co-enabled transition.
        fingerprint: Semantic state hash at arrival (post-prefix
            decision points only; ``None`` when fingerprinting is off
            or the depth lies inside the replayed prefix).
    """

    labels: List[str]
    candidates: List[str]
    sleep: FrozenSet[str]
    chosen: str
    footprints: Dict[str, str] = field(default_factory=dict)
    fingerprint: Optional[str] = None


class McChooser:
    """A :class:`~repro.sim.des.SchedulerHook` that replays a choice
    prefix, then picks canonically, carrying DPOR sleep sets.

    Args:
        runtime: The :class:`~repro.sim.runtime.SimRuntime` under test
            (used for routing-aware footprints and fingerprints).
        prefix: Labels to choose at decision points 0..len-1 (replay).
        branch_sleep: Sleep set installed right after the final prefix
            choice executes — the explorer's filtered
            ``arrival_sleep | explored_siblings`` for this branch.
        fingerprint_fn: Zero-arg semantic state hasher; ``None``
            disables fingerprint pruning.
        visited: Shared fingerprint -> explored-sleep-sets map (owned by
            the explorer); a state revisited with a superset sleep set
            prunes the run.
        strict: Replay mode — the prefix must match exactly and running
            past it (a decision point beyond the prefix) raises
            :class:`ReplayMismatch` instead of choosing canonically.
        max_decisions: Branch-depth budget; beyond it the run prunes.
    """

    def __init__(self, runtime: Any, prefix: Optional[List[str]] = None,
                 branch_sleep: FrozenSet[str] = frozenset(),
                 fingerprint_fn: Any = None,
                 visited: Optional[Dict[str, List[FrozenSet[str]]]] = None,
                 strict: bool = False,
                 max_decisions: int = 10_000) -> None:
        self.runtime = runtime
        self.prefix: List[str] = list(prefix or [])
        self.branch_sleep = branch_sleep
        self.fingerprint_fn = fingerprint_fn
        self.visited = visited
        self.strict = strict
        self.max_decisions = max_decisions
        self.records: List[DecisionRecord] = []
        self.transitions = 0
        self.fingerprint_hits = 0
        self._sleep: FrozenSet[str] = (
            branch_sleep if not self.prefix else frozenset())
        self._footprints: Dict[str, str] = {}
        self._pending_choice: Optional[str] = None

    # -- SchedulerHook interface ------------------------------------------
    def choose(self, sim: Any, at: float, priority: int,
               entries: List[Tuple[Any, ...]]) -> int:
        depth = len(self.records)
        if depth >= self.max_decisions:
            raise PruneRun("depth-budget")
        labels, footprints = self._label_group(entries)
        self._footprints.update(footprints)
        sleep = self._sleep
        blocked = fifo_blocked_labels(self.runtime, entries, labels)
        candidates = [label for label in labels
                      if label not in sleep and label not in blocked]
        if not candidates:
            raise PruneRun("sleep")
        fingerprint: Optional[str] = None
        in_prefix = depth < len(self.prefix)
        if in_prefix:
            wanted = self.prefix[depth]
            if wanted not in labels or wanted in blocked:
                raise ReplayMismatch(
                    f"decision {depth}: recorded choice {wanted!r} not "
                    f"co-enabled (FIFO-respecting); enabled = {labels}")
            chosen = wanted
        else:
            if self.strict:
                raise ReplayMismatch(
                    f"decision {depth}: run past the recorded schedule "
                    f"({len(self.prefix)} decisions); enabled = {labels}")
            if self.fingerprint_fn is not None and self.visited is not None:
                fingerprint = self.fingerprint_fn()
                if self._visited_covers(fingerprint, sleep):
                    self.fingerprint_hits += 1
                    raise PruneRun("fingerprint")
                self._visit(fingerprint, sleep)
            chosen = candidates[0]
        self.records.append(DecisionRecord(
            labels=labels, candidates=candidates, sleep=sleep,
            chosen=chosen, footprints=footprints,
            fingerprint=fingerprint))
        self._pending_choice = chosen
        return labels.index(chosen)

    def executed(self, sim: Any, entry: Tuple[Any, ...]) -> None:
        self.transitions += 1
        if self._pending_choice is not None:
            label = self._pending_choice
            self._pending_choice = None
            footprint = self._footprints.get(label, GLOBAL_FOOTPRINT)
            if len(self.records) == len(self.prefix) and self.prefix:
                # The branch choice just ran: install the explorer's
                # sleep set for this subtree (already filtered against
                # the branch transition).
                self._sleep = self.branch_sleep
                return
        else:
            label, footprint = classify_entry(self.runtime, entry)
            if label in self._sleep:
                # A forced (singleton) transition that is asleep: this
                # whole continuation was covered when a sibling explored
                # the transition earlier.
                raise PruneRun("sleep-forced")
        if self._sleep:
            self._sleep = frozenset(
                other for other in self._sleep
                if independent(
                    self._footprints.get(other, GLOBAL_FOOTPRINT),
                    footprint))

    # -- helpers -----------------------------------------------------------
    def _label_group(
            self, entries: List[Tuple[Any, ...]],
    ) -> Tuple[List[str], Dict[str, str]]:
        """Stable labels for one co-enabled group (``#k`` suffixes keep
        duplicate labels distinct, in canonical seq order)."""
        labels: List[str] = []
        footprints: Dict[str, str] = {}
        counts: Dict[str, int] = {}
        for entry in entries:
            label, footprint = classify_entry(self.runtime, entry)
            ordinal = counts.get(label, 0)
            counts[label] = ordinal + 1
            if ordinal:
                label = f"{label}#{ordinal}"
            labels.append(label)
            footprints[label] = footprint
        return labels, footprints

    def _visited_covers(self, fingerprint: str,
                        sleep: FrozenSet[str]) -> bool:
        assert self.visited is not None
        for explored_sleep in self.visited.get(fingerprint, []):
            if explored_sleep <= sleep:
                return True
        return False

    def _visit(self, fingerprint: str, sleep: FrozenSet[str]) -> None:
        assert self.visited is not None
        sleeps = self.visited.setdefault(fingerprint, [])
        sleeps[:] = [s for s in sleeps if not sleep <= s]
        sleeps.append(sleep)
