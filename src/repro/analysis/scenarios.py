"""Canonical traced scenarios for the analysis tools.

The invariant checker needs a trace worth checking: long enough to
cross a failure, a recovery, and replay, yet fully retained (a ring
that dropped its head makes FIFO/coverage checks report phantom
violations). This module re-creates the repo's E6d chaos scenario —
the same one the CI determinism gate replays — with tracing on and a
ring sized so nothing is dropped.

E6d: S1 → M1(echo) → S2 → U1(count), 2000 events/s for 3 s over 64
keys on a 4-machine cluster; m001 crashes at t=1.05 s and recovers at
t=2.0 s with its co-located kv node; slates flush every 0.2 s.

The default delivery mode here is **effectively-once**: that is the
mode whose guarantees the checker asserts in full. Under at-most-once
the documented orphaned-cache residual (see
``SimRuntime.schedule_add_machine``) can legitimately break strict
ring ownership — useful for demonstrating the checker catches it, not
for a green CI gate.
"""

from __future__ import annotations

from typing import Any, List

from repro.errors import AnalysisError
from repro.obs.trace import Span

__all__ = ["build_e6d_app", "e6d_chaos_run", "e6d_chaos_trace"]


def build_e6d_app() -> Any:
    """S1 → M1(echo) → S2 → U1(count), as in the E6 chaos benches."""
    from repro.core.application import Application
    from repro.core.operators import Mapper, Updater

    class _Echo(Mapper):
        def map(self, ctx: Any, event: Any) -> None:
            ctx.publish("S2", event.key, event.value)

    class _Count(Updater):
        def init_slate(self, key: str) -> dict:
            return {"count": 0}

        def update(self, ctx: Any, event: Any, slate: Any) -> None:
            slate["count"] += 1

    app = Application("e6d-chaos")
    app.add_stream("S1", external=True)
    app.add_stream("S2")
    app.add_mapper("M1", _Echo, subscribes=["S1"], publishes=["S2"])
    app.add_updater("U1", _Count, subscribes=["S2"])
    return app.validate()


def e6d_chaos_run(delivery: str = "effectively-once",
                  trace_capacity: int = 262_144,
                  rate_per_s: float = 2000.0,
                  duration_s: float = 3.0) -> Any:
    """Run the traced E6d chaos scenario; returns the finished runtime.

    The returned :class:`~repro.sim.SimRuntime` has run to completion;
    its ``tracer`` holds the full span trace.
    """
    from repro.cluster import ClusterSpec
    from repro.faults import FaultSchedule
    from repro.sim import SimConfig, SimRuntime
    from repro.sim.sources import constant_rate
    from repro.slates.manager import FlushPolicy

    config = SimConfig(
        flush_policy=FlushPolicy.every(0.2),
        queue_capacity=100_000,
        kill_kv_on_machine_failure=True,
        delivery_semantics=delivery,
        trace=True,
        trace_capacity=trace_capacity,
    )
    source = constant_rate("S1", rate_per_s=rate_per_s,
                           duration_s=duration_s,
                           key_fn=lambda i: f"k{i % 64}")
    chaos = FaultSchedule(seed=7).crash(1.05, "m001", recover_at=2.0)
    runtime = SimRuntime(build_e6d_app(), ClusterSpec.uniform(4, cores=4),
                         config, [source], failures=chaos)
    runtime.run(6.0)
    return runtime


def e6d_chaos_trace(delivery: str = "effectively-once",
                    trace_capacity: int = 262_144,
                    rate_per_s: float = 2000.0,
                    duration_s: float = 3.0) -> List[Span]:
    """The complete E6d span trace (raises if the ring dropped spans)."""
    runtime = e6d_chaos_run(delivery=delivery,
                            trace_capacity=trace_capacity,
                            rate_per_s=rate_per_s,
                            duration_s=duration_s)
    tracer = runtime.tracer
    assert tracer is not None
    dropped = getattr(tracer, "dropped", 0)
    if dropped:
        raise AnalysisError(
            f"trace ring dropped {dropped} spans; a truncated trace "
            "cannot be invariant-checked — raise trace_capacity")
    return tracer.spans()
