"""Canonical traced scenarios for the analysis tools.

The invariant checker needs a trace worth checking: long enough to
cross a failure, a recovery, and replay, yet fully retained (a ring
that dropped its head makes FIFO/coverage checks report phantom
violations). This module re-creates the repo's E6d chaos scenario —
the same one the CI determinism gate replays — with tracing on and a
ring sized so nothing is dropped.

E6d: S1 → M1(echo) → S2 → U1(count), 2000 events/s for 3 s over 64
keys on a 4-machine cluster; m001 crashes at t=1.05 s and recovers at
t=2.0 s with its co-located kv node; slates flush every 0.2 s.

The default delivery mode here is **effectively-once**: that is the
mode whose guarantees the checker asserts in full. Under at-most-once
the documented orphaned-cache residual (see
``SimRuntime.schedule_add_machine``) can legitimately break strict
ring ownership — useful for demonstrating the checker catches it, not
for a green CI gate.

The module also defines the **E22 overload scenario** used by the
shed-accounting invariant and bench E22: a Zipf-skewed hotspot driven
at a configurable multiple of cluster capacity against a thinnable
hot counter, with a degraded overflow path. E22 runs are fault-free
and drained, which is exactly what shed accounting requires.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.errors import AnalysisError, ConfigurationError
from repro.obs.trace import Span

__all__ = [
    "E22_COST_FACTOR", "E22_HOT_KEEP", "E22_KEYS", "E22_OVERFLOW_SID",
    "E22_POLICIES", "build_e22_app", "build_e6d_app",
    "e22_base_capacity", "e22_classifier", "e22_overload_run",
    "e22_shedding_trace", "e22_source_events", "e22_thinning_policy",
    "E24_DIURNAL_PHASES", "build_e24_diurnal_app",
    "e24_elasticity_run", "e24_expected_events",
    "e24_migration_run", "e24_migration_trace",
    "e6d_chaos_run", "e6d_chaos_trace",
]


def build_e6d_app() -> Any:
    """S1 → M1(echo) → S2 → U1(count), as in the E6 chaos benches."""
    from repro.core.application import Application
    from repro.core.operators import Mapper, Updater

    class _Echo(Mapper):
        def map(self, ctx: Any, event: Any) -> None:
            ctx.publish("S2", event.key, event.value)

    class _Count(Updater):
        def init_slate(self, key: str) -> dict:
            return {"count": 0}

        def update(self, ctx: Any, event: Any, slate: Any) -> None:
            slate["count"] += 1

    app = Application("e6d-chaos")
    app.add_stream("S1", external=True)
    app.add_stream("S2")
    app.add_mapper("M1", _Echo, subscribes=["S1"], publishes=["S2"])
    app.add_updater("U1", _Count, subscribes=["S2"])
    return app.validate()


def e6d_chaos_run(delivery: str = "effectively-once",
                  trace_capacity: int = 262_144,
                  rate_per_s: float = 2000.0,
                  duration_s: float = 3.0) -> Any:
    """Run the traced E6d chaos scenario; returns the finished runtime.

    The returned :class:`~repro.sim.SimRuntime` has run to completion;
    its ``tracer`` holds the full span trace.
    """
    from repro.cluster import ClusterSpec
    from repro.faults import FaultSchedule
    from repro.sim import SimConfig, SimRuntime
    from repro.sim.sources import constant_rate
    from repro.slates.manager import FlushPolicy

    config = SimConfig(
        flush_policy=FlushPolicy.every(0.2),
        queue_capacity=100_000,
        kill_kv_on_machine_failure=True,
        delivery_semantics=delivery,
        trace=True,
        trace_capacity=trace_capacity,
    )
    source = constant_rate("S1", rate_per_s=rate_per_s,
                           duration_s=duration_s,
                           key_fn=lambda i: f"k{i % 64}")
    chaos = FaultSchedule(seed=7).crash(1.05, "m001", recover_at=2.0)
    runtime = SimRuntime(build_e6d_app(), ClusterSpec.uniform(4, cores=4),
                         config, [source], failures=chaos)
    runtime.run(6.0)
    return runtime


def e6d_chaos_trace(delivery: str = "effectively-once",
                    trace_capacity: int = 262_144,
                    rate_per_s: float = 2000.0,
                    duration_s: float = 3.0) -> List[Span]:
    """The complete E6d span trace (raises if the ring dropped spans)."""
    runtime = e6d_chaos_run(delivery=delivery,
                            trace_capacity=trace_capacity,
                            rate_per_s=rate_per_s,
                            duration_s=duration_s)
    tracer = runtime.tracer
    assert tracer is not None
    dropped = getattr(tracer, "dropped", 0)
    if dropped:
        raise AnalysisError(
            f"trace ring dropped {dropped} spans; a truncated trace "
            "cannot be invariant-checked — raise trace_capacity")
    return tracer.spans()


# -- E22: graceful degradation under overload ---------------------------------

#: The degraded-service stream events divert to under pressure.
E22_OVERFLOW_SID = "S_OVF"
#: Zipf key population (hot head + long tail, Section 5 hotspots).
E22_KEYS = 64
#: Strong skew: ranks 0..3 carry ~95% of arrivals, the 60-key tail
#: ~5% — the regime where thinning the head pays for counting the
#: tail exactly (the tail must fit in capacity unthinned, or the
#: controller has no choice but the lossy tiers).
E22_ZIPF_EXPONENT = 2.5
#: Application cost of one hot-counter update, in multiples of the
#: base 250 µs update service time — 5 ms/update makes a small cluster
#: trivially saturable at modest rates.
E22_COST_FACTOR = 20.0
#: Overload policies bench E22 compares.
E22_POLICIES = ("drop", "divert", "throttle", "thin")

#: Graded keep rates for the four hottest Zipf ranks; every other key
#: is counted exactly. Under stratified thinning each thinned key's
#: relative error is deterministically below ``1 / (keep · n)``, so
#: the hotter the key (larger ``n``), the lower the keep rate it can
#: afford at the same error budget. With these rates the applied load
#: at full thin is ~10% of arrivals, and every rank's error bound
#: stays under 1% at the default 5× workload (the binding rank is
#: ``k3``: keep 0.4 × ~280 arrivals ≈ 112 expected kept > 100).
E22_HOT_KEEP = {"hot0": 0.03, "hot1": 0.08, "hot2": 0.2, "hot3": 0.4}

_E22_MACHINES = 2
_E22_CORES = 2


def e22_classifier(key: str) -> str:
    """Key class for :data:`E22_HOT_KEEP`: ``hot<rank>`` for the head."""
    from repro.shedding.thinning import DEFAULT_CLASS

    rank = int(key[1:])
    return f"hot{rank}" if rank < len(E22_HOT_KEEP) else DEFAULT_CLASS


def e22_thinning_policy() -> Any:
    """The graded head-only stratified policy bench E22 runs with."""
    from repro.shedding.thinning import ThinningPolicy

    return ThinningPolicy(keep_rates=dict(E22_HOT_KEEP),
                          classifier=e22_classifier)


def build_e22_app() -> Any:
    """S1 → U1(thinnable hot counter); S_OVF → U_OVF(degraded counter).

    ``U1`` is the deliberately expensive hotspot updater; it opts into
    probabilistic thinning, so under pressure the engine may sample its
    deliveries and apply the kept ones with inverse-probability weight
    (the slate stays an unbiased estimate of the true count). ``U_OVF``
    is the paper's "slightly degraded service": a cheap counter on the
    overflow stream that records what the primary path shed.
    """
    from repro.core.application import Application
    from repro.core.operators import Updater
    from repro.shedding.thinning import ThinnableCounter

    class _HotCount(ThinnableCounter):
        cost_factor = E22_COST_FACTOR

    class _DegradedCount(Updater):
        cost_factor = 0.1

        def init_slate(self, key: str) -> dict:
            return {"count": 0}

        def update(self, ctx: Any, event: Any, slate: Any) -> None:
            slate["count"] += 1

    app = Application("e22-overload")
    app.add_stream("S1", external=True)
    app.add_stream(E22_OVERFLOW_SID, overflow=True)
    app.add_updater("U1", _HotCount, subscribes=["S1"])
    app.add_updater("U_OVF", _DegradedCount, subscribes=[E22_OVERFLOW_SID])
    return app.validate()


def e22_base_capacity() -> float:
    """Sustainable U1 events/s of the E22 cluster (cores / service time).

    Overload multiples in :func:`e22_overload_run` are relative to
    this, so "5×" means five times what the cluster can actually
    apply per second at ``E22_COST_FACTOR``.
    """
    from repro.sim.costs import CostModel

    service_s = CostModel().update_time(E22_COST_FACTOR)
    return _E22_MACHINES * _E22_CORES / service_s


def e22_source_events(overload: float, duration_s: float = 3.0,
                      seed: int = 11) -> List[Any]:
    """The materialized E22 arrival list (shared with the reference).

    Benchmarks feed the *same list* to the overloaded engine and to the
    Section 3 reference executor, so the ground-truth counters the
    error measurement compares against describe exactly this workload.
    """
    from repro.sim.sources import constant_rate
    from repro.workloads.zipf import zipf_key_fn

    rate = e22_base_capacity() * overload
    source = constant_rate("S1", rate_per_s=rate, duration_s=duration_s,
                           key_fn=zipf_key_fn("k", E22_KEYS,
                                              E22_ZIPF_EXPONENT, seed))
    return list(source.events)


def e22_overload_run(policy: str = "thin", overload: float = 5.0,
                     duration_s: float = 3.0, seed: int = 11,
                     thinning: Any = None,
                     queue_capacity: int = 200,
                     trace: bool = False,
                     trace_capacity: int = 1_048_576,
                     events: Any = None) -> Tuple[Any, Any]:
    """Run E22 under one overload policy; returns ``(runtime, report)``.

    Args:
        policy: One of :data:`E22_POLICIES`. ``"drop"``, ``"divert"``
            and ``"throttle"`` are the paper's three static overflow
            responses; ``"thin"`` is the adaptive overload-control
            subsystem (backpressure tiers + IPW thinning + proactive
            diversion + source throttling) layered over a lossless
            throttle overflow policy, so nothing is ever dropped.
        overload: Arrival rate as a multiple of cluster capacity.
        thinning: ``ThinningPolicy`` override for the ``thin`` policy
            (default: :func:`e22_thinning_policy`).
        events: Pre-materialized arrival list (from
            :func:`e22_source_events`); generated when None.

    The run horizon scales with the overload multiple so that every
    policy — including the ones that defer work instead of shedding
    it — drains completely: shed accounting and the ground-truth error
    measurement both need final, settled state.
    """
    from repro.cluster import ClusterSpec
    from repro.metrics import PAPER_LATENCY_BOUND_S
    from repro.muppet.queues import OverflowPolicy, SourceThrottle
    from repro.shedding.controller import SheddingConfig
    from repro.sim import SimConfig, SimRuntime
    from repro.sim.sources import from_trace

    if policy not in E22_POLICIES:
        raise ConfigurationError(
            f"unknown E22 policy {policy!r}; expected one of "
            f"{E22_POLICIES}")
    if events is None:
        events = e22_source_events(overload, duration_s, seed)
    kwargs: dict = {}
    if policy == "drop":
        kwargs["overflow"] = OverflowPolicy.drop()
    elif policy == "divert":
        kwargs["overflow"] = OverflowPolicy.divert(E22_OVERFLOW_SID)
    elif policy == "throttle":
        kwargs["overflow"] = OverflowPolicy.throttle()
        kwargs["throttle"] = SourceThrottle()
    else:  # thin — the full overload-control subsystem
        kwargs["overflow"] = OverflowPolicy.throttle()
        kwargs["shedding"] = SheddingConfig(
            thinning=thinning if thinning is not None
            else e22_thinning_policy(),
            seed=seed,
            overflow_sid=E22_OVERFLOW_SID,
            p99_budget_s=PAPER_LATENCY_BOUND_S,
            # Thinning alone absorbs the configured overloads; keep the
            # lossy (divert) and stalling (throttle) tiers as last
            # resorts above the startup transient's queue spike, so
            # they engage only when thinning genuinely cannot keep up
            # (the 10× row) and never during the ramp-up at 2×/5×.
            overflow_enter=0.85, overflow_exit=0.50,
            throttle_enter=0.95, throttle_exit=0.70,
            divert_fraction=0.90,
        )
    config = SimConfig(
        queue_capacity=queue_capacity,
        trace=trace,
        trace_capacity=trace_capacity,
        # Overloaded throttle runs hold thousands of deferred events;
        # the default 10 ms retry tick turns that into tens of millions
        # of retry re-deliveries over a long drain. A coarser tick
        # changes no outcome (the backlog drains at service rate either
        # way), just the simulator's bookkeeping volume.
        retry_delay_s=0.05,
        **kwargs,
    )
    runtime = SimRuntime(build_e22_app(),
                         ClusterSpec.uniform(_E22_MACHINES,
                                             cores=_E22_CORES),
                         config, [from_trace("S1", events)])
    # Deferred-work policies process the whole backlog at base
    # capacity, and the source-throttle hysteresis wastes a good half
    # of that on pause/resume dead time; give the slowest policy its
    # full drain window plus settle margin (idle virtual time is
    # nearly free in the DES, so the generous horizon costs the fast
    # policies nothing).
    horizon = duration_s * (overload * 3.5 + 1.0) + 5.0
    report = runtime.run(horizon)
    return runtime, report


def e22_shedding_trace(overload: float = 5.0, duration_s: float = 3.0,
                       seed: int = 11,
                       trace_capacity: int = 1_048_576) -> List[Span]:
    """The full E22 span trace under the adaptive ``thin`` policy.

    Fault-free and fully drained — the preconditions of the
    ``shed_accounting`` invariant. Raises if the ring dropped spans.
    """
    runtime, _ = e22_overload_run(policy="thin", overload=overload,
                                  duration_s=duration_s, seed=seed,
                                  trace=True,
                                  trace_capacity=trace_capacity)
    tracer = runtime.tracer
    assert tracer is not None
    dropped = getattr(tracer, "dropped", 0)
    if dropped:
        raise AnalysisError(
            f"trace ring dropped {dropped} spans; a truncated trace "
            "reads as vanished events to shed accounting — raise "
            "trace_capacity")
    return tracer.spans()


# -- E24: elastic scaling with live slate migration ---------------------------

def e24_migration_run(phase: Optional[str] = None, target: str = "donor",
                      kind: str = "retire",
                      delivery: str = "effectively-once",
                      trace_capacity: int = 262_144,
                      rate_per_s: float = 2000.0,
                      duration_s: float = 3.0) -> Any:
    """Run the traced E24 live-migration scenario; returns the runtime.

    The E6d workload (same app, rate, keys, cluster) with a live slate
    migration at t=1.0 s instead of a crash: ``kind="retire"`` drains
    m001 out of the ring through the incremental-handoff protocol,
    ``kind="join"`` admits a fresh elastic machine. When ``phase`` is
    given, a :meth:`~repro.faults.FaultSchedule.at_migration` trigger
    crashes the ``target`` participant as the handoff enters that
    phase — the chaos matrix the migration tests and the ``migration``
    invariant sweep.
    """
    from repro.cluster import ClusterSpec
    from repro.elastic import MigrationConfig
    from repro.faults import FaultSchedule
    from repro.sim import SimConfig, SimRuntime
    from repro.sim.sources import constant_rate
    from repro.slates.manager import FlushPolicy

    config = SimConfig(
        flush_policy=FlushPolicy.every(0.2),
        queue_capacity=100_000,
        kill_kv_on_machine_failure=True,
        delivery_semantics=delivery,
        migration=MigrationConfig(),
        trace=True,
        trace_capacity=trace_capacity,
    )
    source = constant_rate("S1", rate_per_s=rate_per_s,
                           duration_s=duration_s,
                           key_fn=lambda i: f"k{i % 64}")
    chaos = FaultSchedule(seed=7)
    if phase is not None:
        chaos.at_migration(phase, target=target)
    runtime = SimRuntime(build_e6d_app(), ClusterSpec.uniform(4, cores=4),
                         config, [source], failures=chaos)
    if kind == "retire":
        runtime.schedule_remove_machine(1.0, "m001")
    elif kind == "join":
        runtime.schedule_add_machine(1.0, "e901")
    else:
        raise ConfigurationError(
            f"e24 migration kind {kind!r} must be 'retire' or 'join'")
    runtime.run(8.0)
    return runtime


#: The E24 diurnal workload: piecewise-constant ``(rate/s, seconds)``
#: phases — a calm warm-up, a >11x surge, and a long cool-down. Against
#: a 5 ms/update counter this swings demand across the autoscaler's
#: whole 2..16 machine range (one core ≈ 200 updates/s).
E24_DIURNAL_PHASES: List[Tuple[float, float]] = [
    (250.0, 4.0), (2800.0, 24.0), (250.0, 32.0)]


def e24_expected_events(
        phases: Optional[List[Tuple[float, float]]] = None) -> int:
    """Total events the diurnal source materializes."""
    return sum(int(rate * seconds)
               for rate, seconds in (phases or E24_DIURNAL_PHASES))


def build_e24_diurnal_app() -> Any:
    """S1 → U1: a deliberately expensive counter (5 ms per update)."""
    from repro.core.application import Application
    from repro.core.operators import Updater

    class _CostlyCount(Updater):
        cost_factor = 20.0  # 20 x 250 us base = 5 ms per update

        def init_slate(self, key: str) -> dict:
            return {"count": 0}

        def update(self, ctx: Any, event: Any, slate: Any) -> None:
            slate["count"] += 1

    app = Application("e24-diurnal")
    app.add_stream("S1", external=True)
    app.add_updater("U1", _CostlyCount, subscribes=["S1"])
    return app.validate()


def e24_elasticity_run(
        full_rehydration: bool = False, horizon_s: float = 90.0,
        sample_period_s: float = 0.25,
) -> Tuple[Any, Any, List[Tuple[float, int]]]:
    """Run the E24 diurnal autoscaling scenario end to end.

    A 2-machine (1 core each) seed cluster faces the
    :data:`E24_DIURNAL_PHASES` swing under the autoscaler: queue
    pressure grows the cluster toward 16 machines through serialized
    live migrations, and the calm tail shrinks it back to 2. With
    ``full_rehydration=True`` every handoff runs the flush-barrier
    ablation instead of the incremental snapshot/delta stream.

    Returns ``(runtime, report, trajectory)`` where ``trajectory`` is
    the sampled ``[(t, live_machines), ...]`` curve.
    """
    from repro.cluster import ClusterSpec
    from repro.elastic import AutoscalerConfig, MigrationConfig
    from repro.sim import SimConfig, SimRuntime
    from repro.sim.sources import spiky_rate
    from repro.slates.manager import FlushPolicy

    config = SimConfig(
        flush_policy=FlushPolicy.every(0.2),
        queue_capacity=10_000,
        delivery_semantics="effectively-once",
        autoscale=AutoscalerConfig(
            min_machines=2, max_machines=16, check_period_s=0.25,
            scale_up_queue=0.5, scale_down_queue=0.1,
            cooldown_s=0.5, hold_s=1.0, grow_step=2, shrink_step=2,
            cores=1),
        migration=MigrationConfig(full_rehydration=full_rehydration),
    )
    source = spiky_rate("S1", E24_DIURNAL_PHASES,
                        key_fn=lambda i: f"k{i % 64}")
    runtime = SimRuntime(build_e24_diurnal_app(),
                         ClusterSpec.uniform(2, cores=1),
                         config, [source])
    trajectory: List[Tuple[float, int]] = []

    def sample(sim: Any) -> None:
        trajectory.append(
            (sim.now(), runtime._elastic_stats()["machines_live"]))
        sim.schedule_in(sample_period_s, sample)

    runtime.sim.schedule_in(0.0, sample)
    report = runtime.run(horizon_s)
    return runtime, report, trajectory


def e24_migration_trace(phase: Optional[str] = None, target: str = "donor",
                        kind: str = "retire",
                        trace_capacity: int = 262_144) -> List[Span]:
    """The complete E24 span trace (raises if the ring dropped spans)."""
    runtime = e24_migration_run(phase=phase, target=target, kind=kind,
                                trace_capacity=trace_capacity)
    tracer = runtime.tracer
    assert tracer is not None
    dropped = getattr(tracer, "dropped", 0)
    if dropped:
        raise AnalysisError(
            f"trace ring dropped {dropped} spans; a truncated trace "
            "cannot be invariant-checked — raise trace_capacity")
    return tracer.spans()
