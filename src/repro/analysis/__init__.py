"""Static and dynamic correctness analysis for the reproduction.

The repo has two engines with hard correctness contracts — the DES
simulator must be byte-deterministic, and the threaded
:class:`~repro.muppet.local.LocalMuppet` must bound per-key slate access
to the dispatcher's two-choice pair of queues. End-to-end byte-diff
tests say *that* something drifted; this package says *where*:

* :mod:`repro.analysis.lint` — an AST rule engine with ~8 repo-specific
  ``MUP###`` rules (wall-clock in deterministic code, unseeded RNG,
  unordered iteration feeding ordered sinks, slate-write bypasses,
  un-guarded tracer calls, event mutation, swallowed exceptions, lock
  ordering) and ``# noqa: MUP###`` suppressions that require a reason.
* :mod:`repro.analysis.races` — an opt-in lockset (eraser-style) race
  detector and lock-order-graph deadlock checker instrumenting
  ``LocalMuppet``'s locks and shared state.
* :mod:`repro.analysis.invariants` — a trace invariant checker that
  replays an observability span trace (ring or JSONL) and asserts the
  paper-level guarantees: per-worker FIFO, watermark monotonicity per
  origin, the two-choice queue bound, and ring ownership of slate
  writes.

All three are wired into ``python -m repro analyze lint|races|invariants``
and CI's ``analysis`` job.
"""

from repro.analysis.invariants import (InvariantChecker, InvariantViolation,
                                       check_trace)
from repro.analysis.lint import (Finding, LintRule, iter_rules, lint_paths,
                                 lint_source, rule_table)
from repro.analysis.races import (LockMonitor, RaceReport,
                                  instrument_local_muppet, race_smoke_run)

__all__ = [
    "Finding",
    "InvariantChecker",
    "InvariantViolation",
    "LintRule",
    "LockMonitor",
    "RaceReport",
    "check_trace",
    "instrument_local_muppet",
    "iter_rules",
    "lint_paths",
    "lint_source",
    "race_smoke_run",
    "rule_table",
]
