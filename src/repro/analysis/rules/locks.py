"""MUP008: canonical lock order in the threaded engine.

:class:`repro.muppet.local.LocalMuppet` synchronizes with seven locks
(dispatch, per-slate, manager, slate-lock registry guard, timer, latency,
counter, plus the idle condition). Deadlock freedom rests on every
thread acquiring nested locks in one global order. This rule computes,
per method, which locks the method acquires (transitively through
``self.`` calls within the module) and checks every nested acquisition
against the canonical order below. Acquiring a lower-ranked lock while
holding a higher-ranked one is a potential deadlock; nesting the same
rank is a self-deadlock (the locks are non-reentrant).

Canonical order (acquire top-to-bottom, document changes in DESIGN.md)::

    1. _dispatch_lock / _work_available   (same underlying lock)
    2. per-slate locks (via _slate_lock)
    3. _manager_lock
    4. _slate_locks_guard
    5. _timer_cond
    6. _latency_lock
    7. _counter_lock
    8. _idle

The dynamic lock-order-graph check in :mod:`repro.analysis.races`
verifies the same property at runtime; this rule catches inversions at
review time, before a schedule ever exercises them.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.lint import Finding, LintRule, register_rule
from repro.analysis.rules.base import dotted_name

#: lock attribute -> rank. Aliases share a rank; nesting equal ranks is
#: flagged (non-reentrant self-deadlock) except for the per-slate rank,
#: where distinct keys are distinct locks by construction.
CANONICAL_LOCK_ORDER: Dict[str, int] = {
    "_dispatch_lock": 1,
    "_work_available": 1,
    "<slate>": 2,
    "_manager_lock": 3,
    "_slate_locks_guard": 4,
    "_timer_cond": 5,
    "_latency_lock": 6,
    "_counter_lock": 7,
    "_idle": 8,
}

#: self-methods whose *call* implies acquiring a lock not visible as a
#: lexical ``with`` at the call site.
_IMPLIED_BY_CALL = {
    "_slate_lock": "_slate_locks_guard",
}


def _lock_name(expr: ast.expr) -> Optional[str]:
    """Map a ``with`` context expression to a canonical lock name."""
    name = dotted_name(expr)
    if name is None:
        # ``with self._slate_lock(key):`` — a call producing a lock.
        if isinstance(expr, ast.Call):
            func = dotted_name(expr.func)
            if func is not None and func.endswith("_slate_lock"):
                return "<slate>"
        return None
    attr = name.split(".")[-1]
    if attr in CANONICAL_LOCK_ORDER:
        return attr
    if "slate_lock" in attr and attr != "_slate_locks_guard":
        return "<slate>"
    return None


@register_rule
class LockOrderRule(LintRule):
    """Check nested lock acquisitions against the canonical order."""

    code = "MUP008"
    name = "lock-order"
    description = ("nested lock acquisition in muppet/local.py violating "
                   "the canonical order (dispatch < slate < manager < "
                   "guard < timer < latency < counter < idle)")
    include = (r"^repro/muppet/local\.py$",)

    def check(self, tree: ast.Module, relpath: str,
              source_lines: List[str]) -> List[Finding]:
        methods = self._collect_methods(tree)
        summaries = self._lock_summaries(methods)
        findings: List[Finding] = []
        for name, func in methods.items():
            self._check_body(func.body, held=[], methods=methods,
                             summaries=summaries, relpath=relpath,
                             findings=findings)
        return findings

    # -- per-method lock summaries (single-module fixpoint) -----------------
    @staticmethod
    def _collect_methods(tree: ast.Module) -> Dict[str, ast.FunctionDef]:
        methods: Dict[str, ast.FunctionDef] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, ast.FunctionDef):
                        methods[item.name] = item
        return methods

    def _lock_summaries(
            self, methods: Dict[str, ast.FunctionDef]) -> Dict[str, Set[str]]:
        """Locks each method may acquire, transitively through
        ``self.<method>()`` calls within this module."""
        direct: Dict[str, Set[str]] = {}
        calls: Dict[str, Set[str]] = {}
        for name, func in methods.items():
            acquired: Set[str] = set()
            callees: Set[str] = set()
            for node in ast.walk(func):
                if isinstance(node, ast.With):
                    for item in node.items:
                        lock = _lock_name(item.context_expr)
                        if lock is not None:
                            acquired.add(lock)
                if isinstance(node, ast.Call):
                    callee = dotted_name(node.func)
                    if callee is not None and callee.startswith("self."):
                        method = callee.split(".", 1)[1]
                        if method in methods:
                            callees.add(method)
                        if method in _IMPLIED_BY_CALL:
                            acquired.add(_IMPLIED_BY_CALL[method])
            direct[name] = acquired
            calls[name] = callees
        summaries = {name: set(locks) for name, locks in direct.items()}
        changed = True
        while changed:
            changed = False
            for name in summaries:
                for callee in calls[name]:
                    before = len(summaries[name])
                    summaries[name] |= summaries[callee]
                    if len(summaries[name]) != before:
                        changed = True
        return summaries

    # -- nested-with / call-under-lock checking ------------------------------
    def _check_body(self, body: List[ast.stmt], held: List[Tuple[str, int]],
                    methods: Dict[str, ast.FunctionDef],
                    summaries: Dict[str, Set[str]], relpath: str,
                    findings: List[Finding]) -> None:
        for stmt in body:
            if isinstance(stmt, ast.With):
                acquired: List[Tuple[str, int]] = []
                for item in stmt.items:
                    lock = _lock_name(item.context_expr)
                    if lock is None:
                        continue
                    self._check_acquisition(lock, item.context_expr, held,
                                            relpath, findings)
                    acquired.append((lock, stmt.lineno))
                self._check_body(stmt.body, held + acquired, methods,
                                 summaries, relpath, findings)
                continue
            if held:
                # Calls made while holding locks: check the callee's
                # transitive lock summary against what we hold.
                for node in ast.walk(stmt):
                    if not isinstance(node, ast.Call):
                        continue
                    callee = dotted_name(node.func)
                    if callee is None or not callee.startswith("self."):
                        continue
                    method = callee.split(".", 1)[1]
                    for lock in sorted(summaries.get(method, ())):
                        self._check_acquisition(
                            lock, node, held, relpath, findings,
                            via=f"call to self.{method}()")
                    if method in _IMPLIED_BY_CALL:
                        self._check_acquisition(
                            _IMPLIED_BY_CALL[method], node, held, relpath,
                            findings, via=f"call to self.{method}()")
            # Recurse into nested control flow.
            for child_body in _inner_bodies(stmt):
                self._check_body(child_body, held, methods, summaries,
                                 relpath, findings)

    def _check_acquisition(self, lock: str, node: ast.AST,
                           held: List[Tuple[str, int]], relpath: str,
                           findings: List[Finding],
                           via: Optional[str] = None) -> None:
        rank = CANONICAL_LOCK_ORDER[lock]
        for held_lock, held_line in held:
            held_rank = CANONICAL_LOCK_ORDER[held_lock]
            same_slate = lock == "<slate>" and held_lock == "<slate>"
            if held_rank > rank or (held_rank == rank and not same_slate):
                how = f" ({via})" if via else ""
                findings.append(self.finding(
                    relpath, node,
                    f"acquires {lock} (rank {rank}){how} while holding "
                    f"{held_lock} (rank {held_rank}, line {held_line}); "
                    "canonical order is dispatch < slate < manager < "
                    "guard < timer < latency < counter < idle"))


def _inner_bodies(stmt: ast.stmt) -> List[List[ast.stmt]]:
    bodies: List[List[ast.stmt]] = []
    for field_name in ("body", "orelse", "finalbody"):
        value = getattr(stmt, field_name, None)
        if isinstance(value, list) and value and isinstance(
                value[0], ast.stmt):
            bodies.append(value)
    handlers = getattr(stmt, "handlers", None)
    if handlers:
        bodies.extend(h.body for h in handlers)
    return bodies
