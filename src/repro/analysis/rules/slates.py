"""MUP004: slate writes must ride the flush path.

Effectively-once delivery persists each slate's dedup watermarks inside
the same kv blob as its fields (``WATERMARK_FIELD``), encoded once per
flush — that atomicity is what makes replayed-event dedup sound after a
crash. A direct ``KVStore.write``/``write_batch``/``put_many`` from
engine code bypasses :class:`repro.slates.manager.SlateManager` and can
persist fields without their watermarks (or vice versa), silently
breaking exactness. All slate persistence must go through the manager's
flush path; the kv package itself and the manager are the only writers.
"""

from __future__ import annotations

import ast
import re
from typing import List

from repro.analysis.lint import Finding, LintRule, register_rule
from repro.analysis.rules.base import dotted_name

#: Mutating kv-store entry points.
_WRITE_METHODS = ("write", "write_batch", "put_many", "put")

#: Receiver names that denote a kv store/node (as opposed to a file
#: handle or buffer, whose ``.write`` is not a kv write).
_STORE_RECEIVER = re.compile(r"(^|[._])(store|kv\w*|node)s?$", re.IGNORECASE)


@register_rule
class SlateWriteBypassRule(LintRule):
    """Flag kv-store writes outside the slate-manager flush path."""

    code = "MUP004"
    name = "slate-write-bypass"
    description = ("KVStore write/write_batch/put_many outside "
                   "slates/manager.py; slate persistence must go through "
                   "the flush path so watermarks stay atomic with fields")
    include = (r"^repro/",)
    exclude = (r"^repro/slates/manager\.py$", r"^repro/kvstore/",
               r"^repro/analysis/")

    def check(self, tree: ast.Module, relpath: str,
              source_lines: List[str]) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            if node.func.attr not in _WRITE_METHODS:
                continue
            receiver = dotted_name(node.func.value)
            if receiver is None or not _STORE_RECEIVER.search(receiver):
                continue
            findings.append(self.finding(
                relpath, node,
                f"direct kv write {receiver}.{node.func.attr}(...) "
                "bypasses the slate flush path; use SlateManager so "
                "dedup watermarks persist atomically with the fields"))
        return findings
