"""Rule registry population.

Importing this package imports every rule module; each module's
``@register_rule`` decorators add its rules to the registry consumed by
:func:`repro.analysis.lint.iter_rules`. Add new rule modules to the
import list below (codes must be unique ``MUP###``).
"""

from repro.analysis.rules import (determinism, events, hotpath, locks,
                                  protocol, slates, tracing)

__all__ = ["determinism", "events", "hotpath", "locks", "protocol",
           "slates", "tracing"]
