"""MUP005: tracer calls must be guarded by ``is not None``.

The observability layer's contract (PR 4's overhead budget): with
tracing off, engines hold ``None`` instead of a tracer and every
emission site costs exactly one ``is not None`` check — measured ~0.2%
against a 2% budget. An un-guarded ``tracer.emit(...)`` either crashes
the disabled path (AttributeError on ``None``) or forces a real tracer
object into it, paying allocation per span where the budget allows a
pointer compare. This rule enforces the guard shape at every emit site.

Accepted guard shapes::

    if self._trace is not None:
        self._trace.emit(...)

    if tracer is None:
        return            # early-exit anywhere earlier in the function
    tracer.emit(...)
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.lint import Finding, LintRule, register_rule
from repro.analysis.rules.base import (dotted_name, enclosing_function,
                                       walk_with_parents)


def _none_compare(test: ast.expr, name: str, is_not: bool) -> bool:
    """Does ``test`` contain ``<name> is [not] None`` (possibly inside
    an ``and`` chain, e.g. ``if tracer is not None and deep:``)?"""
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        return any(_none_compare(v, name, is_not) for v in test.values)
    if not isinstance(test, ast.Compare) or len(test.ops) != 1:
        return False
    op = test.ops[0]
    wanted = ast.IsNot if is_not else ast.Is
    if not isinstance(op, wanted):
        return False
    left = dotted_name(test.left)
    right = test.comparators[0]
    return left == name and isinstance(right, ast.Constant) and (
        right.value is None)


@register_rule
class UnguardedTracerRule(LintRule):
    """Flag ``<tracer>.emit(...)`` outside an ``is not None`` guard."""

    code = "MUP005"
    name = "unguarded-tracer"
    description = ("tracer.emit(...) without an 'is not None' guard; "
                   "the disabled path must cost one pointer compare "
                   "(obs overhead budget)")
    include = (r"^repro/",)
    exclude = (r"^repro/obs/", r"^repro/analysis/")

    def check(self, tree: ast.Module, relpath: str,
              source_lines: List[str]) -> List[Finding]:
        findings: List[Finding] = []
        for node, parents in walk_with_parents(tree):
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            if node.func.attr != "emit":
                continue
            receiver = dotted_name(node.func.value)
            if receiver is None or "trace" not in receiver.lower():
                continue
            if self._guarded(receiver, node, parents):
                continue
            findings.append(self.finding(
                relpath, node,
                f"{receiver}.emit(...) is not behind an "
                f"'{receiver} is not None' guard; tracing off must cost "
                "one pointer compare, not an attribute error"))
        return findings

    @staticmethod
    def _guarded(receiver: str, call: ast.Call,
                 parents: List[ast.AST]) -> bool:
        # Shape 1: an ancestor `if <receiver> is not None:` with the
        # call in its body (not its orelse).
        for index, ancestor in enumerate(parents):
            if isinstance(ancestor, ast.If) and _none_compare(
                    ancestor.test, receiver, is_not=True):
                child = parents[index + 1] if index + 1 < len(parents) else None
                if child is None or child not in ancestor.orelse:
                    return True
        # Shape 2: an earlier `if <receiver> is None: return/raise/continue`
        # in the enclosing function, lexically before the call.
        func = enclosing_function(parents)
        if func is None:
            return False
        call_line = call.lineno
        for node in ast.walk(func):
            if not isinstance(node, ast.If):
                continue
            if node.lineno >= call_line:
                continue
            if not _none_compare(node.test, receiver, is_not=False):
                continue
            if node.body and isinstance(
                    node.body[-1], (ast.Return, ast.Raise, ast.Continue)):
                return True
        return False
