"""MUP009: per-event allocation in ``# hot-path`` functions.

The fast-forward overhaul (E23) lives or dies on per-event allocation
discipline: at ~210k steps per E1 run, one extra dict literal or a
``dataclasses.replace`` (which re-runs ``__init__`` and validation) per
event is a measurable wall-clock regression. Functions on the per-event
path are marked with a ``# hot-path`` comment on their signature; inside
them this rule flags

* ``dataclasses.replace(...)`` calls — replace re-allocates through the
  constructor; hot code should build the new record directly (the Event
  NamedTuple stamps via ``tuple.__new__``), and
* dict literals (``{...}``, including ``{}``) — each one is a fresh
  allocation per event; hoist it to setup code, reuse a preallocated
  mapping, or keep the state in slots/locals.

Cold code is untouched: the rule only looks inside marked functions,
and a justified allocation suppresses with
``# noqa: MUP009 -- reason`` like every other MUP rule.
"""

from __future__ import annotations

import ast
from typing import List, Set, Tuple

from repro.analysis.lint import Finding, LintRule, register_rule
from repro.analysis.rules.base import canonical_name, import_aliases

#: The marker engines put on per-event functions' signature lines.
_MARKER = "# hot-path"


def _is_hot(node: ast.AST, source_lines: List[str]) -> bool:
    """Does the function's signature carry the ``# hot-path`` marker?

    The marker may sit on any physical line of the signature (multi-line
    defs put it on the last one); the scan stops before the first body
    statement so docstring text can never false-positive.
    """
    stop = node.body[0].lineno if node.body else node.lineno + 1
    for lineno in range(node.lineno, stop):
        if lineno <= len(source_lines) and _MARKER in source_lines[lineno - 1]:
            return True
    return False


@register_rule
class HotPathAllocationRule(LintRule):
    """Flag per-event allocation inside ``# hot-path`` functions."""

    code = "MUP009"
    name = "hot-path-allocation"
    description = ("dataclasses.replace or dict literal inside a "
                   "'# hot-path' function; both allocate per event — "
                   "hoist, reuse, or build the record directly")
    include = (r"^repro/(sim|muppet)/",)

    def check(self, tree: ast.Module, relpath: str,
              source_lines: List[str]) -> List[Finding]:
        findings: List[Finding] = []
        #: Nested hot functions are walked from each enclosing hot def
        #: too; dedupe so one allocation yields one finding.
        seen: Set[Tuple[int, int]] = set()
        aliases = import_aliases(tree)
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _is_hot(node, source_lines):
                continue
            for sub in ast.walk(node):
                if isinstance(sub, ast.Dict):
                    where = (sub.lineno, sub.col_offset)
                    if where in seen:
                        continue
                    seen.add(where)
                    findings.append(self.finding(
                        relpath, sub,
                        "dict literal allocates on every event in a "
                        "# hot-path function; hoist it to setup code or "
                        "reuse a preallocated mapping"))
                elif isinstance(sub, ast.Call):
                    name = canonical_name(sub.func, aliases)
                    if name != "dataclasses.replace":
                        continue
                    where = (sub.lineno, sub.col_offset)
                    if where in seen:
                        continue
                    seen.add(where)
                    findings.append(self.finding(
                        relpath, sub,
                        "dataclasses.replace re-runs the constructor per "
                        "event in a # hot-path function; build the new "
                        "record directly (e.g. tuple.__new__ stamping)"))
        return findings
