"""Shared AST utilities for the MUP rule implementations."""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple


def dotted_name(node: ast.AST) -> Optional[str]:
    """Best-effort dotted name of an expression (``self._trace`` →
    ``"self._trace"``); ``None`` for anything not a name/attribute chain."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        return None if base is None else f"{base}.{node.attr}"
    return None


def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the canonical dotted names they import.

    ``import time as t`` → ``{"t": "time"}``; ``from time import
    monotonic`` → ``{"monotonic": "time.monotonic"}``. Used to resolve
    calls back to their canonical module path so rules cannot be dodged
    by aliasing.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}")
    return aliases


def canonical_name(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Dotted name with its leading segment resolved through imports."""
    name = dotted_name(node)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    resolved = aliases.get(head, head)
    return f"{resolved}.{rest}" if rest else resolved


def walk_with_parents(tree: ast.AST) -> Iterator[Tuple[ast.AST, List[ast.AST]]]:
    """Yield ``(node, ancestors)`` pairs, ancestors outermost-first."""
    stack: List[Tuple[ast.AST, List[ast.AST]]] = [(tree, [])]
    while stack:
        node, parents = stack.pop()
        yield node, parents
        child_parents = parents + [node]
        for child in ast.iter_child_nodes(node):
            stack.append((child, child_parents))


def enclosing_function(parents: List[ast.AST]) -> Optional[ast.AST]:
    """The innermost def/async-def in an ancestor list, if any."""
    for node in reversed(parents):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return node
    return None
