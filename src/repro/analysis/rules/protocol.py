"""MUP010: protocol-phase handlers must be schedule-deterministic.

The model checker (:mod:`repro.analysis.mc`) explores *delivery-order*
interleavings and assumes everything else about a protocol step is a
pure function of runtime state. Two things silently break that
assumption at the source line that introduces them:

* **Unordered iteration** — a phase handler that walks ``.values()`` /
  ``.keys()`` / ``.items()`` or a set decides per-machine side effects
  (sends, ring changes, slate moves) in dict/set order. Dict order is
  insertion order — i.e. schedule order — so two runs that the checker
  treats as one fingerprint can diverge. MUP003 only guards
  flush/report sinks; this rule extends the check to the protocol
  layer itself.
* **Wall-clock branches** — a handler that reads ``time.time()`` (or
  kin) branches on host time, which the controlled scheduler cannot
  replay. MUP001 already flags wall-clock in ``repro.sim``; this rule
  extends the scope to ``repro.elastic``, where the migration and
  autoscaler protocols live.

A *protocol-phase handler* is named like one: ``_phase_*``,
``_handle_*``, ``on_*``, or any function whose name mentions a
protocol step (snapshot/delta/cutover/ack/migration/recovery/
checkpoint/epoch/barrier/rebalance/heartbeat/declare/failed/crash/
replay). Iterating a dict whose order is deterministic by construction
is fine — say so with ``# noqa: MUP010 -- reason``.
"""

from __future__ import annotations

import ast
import re
from typing import List, Optional

from repro.analysis.lint import Finding, LintRule, register_rule
from repro.analysis.rules.base import canonical_name, import_aliases
from repro.analysis.rules.determinism import _WALL_CLOCK

#: Function names that implement (or schedule) a protocol phase.
_PHASE_NAME = re.compile(
    r"(^_phase_|^_handle_|^on_|"
    r"snapshot|delta|cutover|ack\b|_ack|migrat|recover|checkpoint|"
    r"epoch|barrier|rebalanc|heartbeat|declare|failed|crash|replay)")


@register_rule
class ProtocolPhaseDeterminismRule(LintRule):
    """MUP010: unordered iteration / wall clock in protocol handlers."""

    code = "MUP010"
    name = "protocol-phase-determinism"
    description = ("protocol-phase handlers in repro.elastic/repro.sim "
                   "must not iterate unordered dicts/sets or branch on "
                   "wall clock; the model checker replays them as pure "
                   "functions of runtime state")
    include = (r"^repro/(elastic|sim)/",)

    def check(self, tree: ast.Module, relpath: str,
              source_lines: List[str]) -> List[Finding]:
        aliases = import_aliases(tree)
        findings: List[Finding] = []
        for func in ast.walk(tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _PHASE_NAME.search(func.name):
                continue
            for node in ast.walk(func):
                if isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)) and node is not func:
                    # Nested defs get their own name check.
                    continue
                iters: List[ast.expr] = []
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    iters.append(node.iter)
                elif isinstance(node, (ast.ListComp, ast.SetComp,
                                       ast.DictComp, ast.GeneratorExp)):
                    iters.extend(gen.iter for gen in node.generators)
                for it in iters:
                    what = _unordered(it)
                    if what is not None:
                        findings.append(self.finding(
                            relpath, it,
                            f"iteration over {what} in protocol-phase "
                            f"handler {func.name}(): order is schedule-"
                            "dependent; iterate sorted(...) or add "
                            "'# noqa: MUP010 -- reason' if order is "
                            "provably deterministic"))
                if isinstance(node, (ast.Attribute, ast.Name)):
                    name = canonical_name(node, aliases)
                    if name in _WALL_CLOCK:
                        findings.append(self.finding(
                            relpath, node,
                            f"wall-clock {_WALL_CLOCK[name]} in protocol-"
                            f"phase handler {func.name}(): the model "
                            "checker cannot replay host time; use the "
                            "simulated clock"))
        return _dedupe(findings)


def _unordered(node: ast.expr) -> Optional[str]:
    """Name the unordered iterable, or ``None`` if order is defined."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set"
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id == "set":
            return "set(...)"
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
                "values", "keys", "items"):
            return f".{node.func.attr}()"
    return None


def _dedupe(findings: List[Finding]) -> List[Finding]:
    """One finding per (line, col): nested attribute chains and nested
    phase-named functions would otherwise double-report."""
    seen = set()
    unique: List[Finding] = []
    for finding in findings:
        key = (finding.line, finding.col)
        if key not in seen:
            seen.add(key)
            unique.append(finding)
    return unique
