"""MUP006 + MUP007: event immutability and exception hygiene.

* **MUP006** — :class:`repro.core.event.Event` is a frozen dataclass:
  its identity fields (``sid, ts, key, value, seq, origin, oseq``) are
  shared by reference across queues, the replay journal, coalescing
  buffers, and dedup watermarks. Mutating one in place (including the
  ``object.__setattr__`` escape hatch) corrupts every holder at once;
  re-addressing must go through ``dataclasses.replace`` /
  ``Event.with_stream``. The frozen dataclass raises at runtime — this
  rule catches it at review time, before the test that would have
  tripped it exists.
* **MUP007** — engine code must not swallow failures: a bare
  ``except:`` (which also catches KeyboardInterrupt/SystemExit) or an
  ``except ...: pass`` hides the lost-event accounting the paper
  requires ("logged as lost", Section 4.3). Handlers must either handle
  (count, reroute, degrade) or re-raise.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.lint import Finding, LintRule, register_rule
from repro.analysis.rules.base import dotted_name

#: Event's frozen fields.
_EVENT_FIELDS = {"sid", "ts", "key", "value", "seq", "origin", "oseq"}

def _names_event(receiver: str) -> bool:
    """Does the receiver's name (by repo convention) bind an Event?

    Matches ``event``, ``timer_event``, ``envelope.event``, ``evt``,
    ``stamped``, ``diverted`` — the binding names the engines use.
    """
    last = receiver.split(".")[-1].lower()
    return "event" in last or last in ("evt", "stamped", "diverted")


@register_rule
class EventMutationRule(LintRule):
    """Flag in-place mutation of Event fields after construction."""

    code = "MUP006"
    name = "event-mutation"
    description = ("assignment to Event fields (sid/ts/key/value/seq/"
                   "origin/oseq) after construction; events are shared "
                   "by reference — use dataclasses.replace")
    include = (r"^repro/",)
    exclude = (r"^repro/core/event\.py$",)

    def check(self, tree: ast.Module, relpath: str,
              source_lines: List[str]) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if not isinstance(target, ast.Attribute):
                    continue
                if target.attr not in _EVENT_FIELDS:
                    continue
                receiver = dotted_name(target.value)
                if receiver is None or receiver in ("self", "cls"):
                    continue
                if not _names_event(receiver):
                    continue
                findings.append(self.finding(
                    relpath, target,
                    f"mutating {receiver}.{target.attr} in place; Event "
                    "is frozen and shared by reference — build a copy "
                    "with dataclasses.replace or Event.with_stream"))
            # The frozen-dataclass escape hatch.
            if isinstance(node, ast.Call):
                func = dotted_name(node.func)
                if func == "object.__setattr__" and node.args:
                    receiver = dotted_name(node.args[0])
                    if receiver is not None and _names_event(receiver):
                        findings.append(self.finding(
                            relpath, node,
                            f"object.__setattr__({receiver}, ...) defeats "
                            "Event's frozen contract; use "
                            "dataclasses.replace"))
        return findings


@register_rule
class SwallowedExceptionRule(LintRule):
    """Flag bare/silently-swallowed exception handlers in engine code."""

    code = "MUP007"
    name = "swallowed-exception"
    description = ("bare 'except:' or 'except ...: pass' in engine code; "
                   "failures must be counted (lost-event accounting) or "
                   "re-raised, never silently dropped")
    include = (r"^repro/(sim|core|muppet|slates|kvstore|cluster|faults)/",)

    def check(self, tree: ast.Module, relpath: str,
              source_lines: List[str]) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                findings.append(self.finding(
                    relpath, node,
                    "bare 'except:' also catches KeyboardInterrupt/"
                    "SystemExit; name the exception (ReproError or "
                    "Exception at minimum)"))
                continue
            if all(isinstance(stmt, ast.Pass) for stmt in node.body):
                findings.append(self.finding(
                    relpath, node,
                    "exception swallowed with 'pass'; count it "
                    "(lost-event accounting), degrade explicitly, or "
                    "re-raise"))
        return findings
