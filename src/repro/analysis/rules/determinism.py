"""Determinism rules: wall-clock, unseeded RNG, unordered iteration.

The DES simulator's byte-determinism gate (CI) only says *that* two runs
diverged. These rules catch the three ways nondeterminism actually
enters this codebase, at the line that introduces it:

* **MUP001** — wall-clock reads (``time.time``/``time.monotonic``/
  ``time.sleep``/``datetime.now``) in code that runs under the virtual
  clock. Simulated components take a ``clock`` callable bound to
  :class:`repro.sim.clock.VirtualClock`; a direct wall-clock read makes
  the run irreproducible. The threaded ``repro.muppet`` engines *are*
  wall-clock by design, so there every site must carry an explicit
  ``# noqa: MUP001 -- reason`` — the allowlist is in the source, not in
  the rule.
* **MUP002** — module-level :mod:`random` use (or ``random.Random()``
  with no seed). All randomness must flow from a seeded
  ``random.Random(seed)`` instance so a run is a pure function of its
  seeds.
* **MUP003** — iteration over ``set(...)``/``.values()``/``.keys()``/
  ``.items()`` inside ordering-sensitive sinks (functions whose name
  marks them as flush/report/snapshot/dump paths) without a ``sorted``
  wrapper. Set order is salted per process; dict order is insertion
  order, which in threaded code is arrival order — both leak schedule
  nondeterminism into reports and flush sequences.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.analysis.lint import Finding, LintRule, register_rule
from repro.analysis.rules.base import canonical_name, import_aliases

_WALL_CLOCK = {
    "time.time": "time.time()",
    "time.time_ns": "time.time_ns()",
    "time.monotonic": "time.monotonic()",
    "time.monotonic_ns": "time.monotonic_ns()",
    "time.perf_counter": "time.perf_counter()",
    "time.perf_counter_ns": "time.perf_counter_ns()",
    "time.sleep": "time.sleep()",
    "datetime.now": "datetime.now()",
    "datetime.utcnow": "datetime.utcnow()",
    "datetime.datetime.now": "datetime.now()",
    "datetime.datetime.utcnow": "datetime.utcnow()",
}


@register_rule
class WallClockRule(LintRule):
    """MUP001: wall-clock access in virtual-clock code."""

    code = "MUP001"
    name = "wall-clock"
    description = ("time.time/time.monotonic/time.sleep/datetime.now in "
                   "engine code; simulated components must use the clock "
                   "seam, threaded sites need '# noqa: MUP001 -- reason'")
    include = (r"^repro/(sim|core|slates|kvstore|cluster|muppet|faults|"
               r"baselines|obs)/",)

    def check(self, tree: ast.Module, relpath: str,
              source_lines: List[str]) -> List[Finding]:
        aliases = import_aliases(tree)
        findings: List[Finding] = []
        for node in ast.walk(tree):
            # Both calls (time.time()) and bare references (passing
            # time.monotonic as a clock callable) inject wall time.
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            name = canonical_name(node, aliases)
            if name in _WALL_CLOCK:
                findings.append(self.finding(
                    relpath, node,
                    f"wall-clock {_WALL_CLOCK[name]} in engine code: use "
                    "the clock/config seam, or add '# noqa: MUP001 -- "
                    "reason' for legitimately wall-clock (threaded) "
                    "sites"))
        return _dedupe_by_position(findings)


def _dedupe_by_position(findings: List[Finding]) -> List[Finding]:
    """Drop duplicate findings at one (line, col) — nested attribute
    chains like ``datetime.datetime.now`` match at two depths."""
    seen = set()
    unique: List[Finding] = []
    for finding in findings:
        key = (finding.line, finding.col, finding.code)
        if key not in seen:
            seen.add(key)
            unique.append(finding)
    return unique


#: random-module functions that read/advance the hidden global RNG.
_GLOBAL_RANDOM = {
    "random.random", "random.randint", "random.randrange", "random.choice",
    "random.choices", "random.shuffle", "random.sample", "random.uniform",
    "random.gauss", "random.normalvariate", "random.expovariate",
    "random.betavariate", "random.paretovariate", "random.vonmisesvariate",
    "random.triangular", "random.seed", "random.getrandbits",
    "random.randbytes", "numpy.random.rand", "numpy.random.randn",
    "numpy.random.randint", "numpy.random.random", "numpy.random.choice",
    "numpy.random.shuffle", "numpy.random.seed",
}


@register_rule
class UnseededRandomRule(LintRule):
    """MUP002: global/unseeded RNG use anywhere in ``src/repro``."""

    code = "MUP002"
    name = "unseeded-random"
    description = ("module-level random.* calls or random.Random() with "
                   "no seed; randomness must come from an explicitly "
                   "seeded random.Random(seed)")
    include = (r"^repro/",)

    def check(self, tree: ast.Module, relpath: str,
              source_lines: List[str]) -> List[Finding]:
        aliases = import_aliases(tree)
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = canonical_name(node.func, aliases)
            if name in _GLOBAL_RANDOM:
                findings.append(self.finding(
                    relpath, node,
                    f"{name}() uses the hidden global RNG; construct a "
                    "seeded random.Random(seed) and thread it through"))
            elif name in ("random.Random", "numpy.random.default_rng"):
                if not node.args and not node.keywords:
                    findings.append(self.finding(
                        relpath, node,
                        f"{name}() without a seed is nondeterministic; "
                        "pass an explicit seed"))
        return findings


#: Function names that are ordering-sensitive sinks: what they iterate
#: becomes flush order, report bytes, or user-visible dumps.
_SINK_NAME = (r"(flush|report|snapshot|status|dump|summary|lines|"
              r"resident|read_slates|merged?|to_json|as_dict)")


@register_rule
class UnorderedIterationRule(LintRule):
    """MUP003: unsorted set/dict-view iteration in ordered sinks."""

    code = "MUP003"
    name = "unordered-iteration"
    description = ("iterating set()/.values()/.keys()/.items() inside "
                   "flush/report/snapshot/dump functions without "
                   "sorted(); schedule-dependent order leaks into "
                   "ordered output")
    include = (r"^repro/",)
    exclude = (r"^repro/analysis/",)

    def check(self, tree: ast.Module, relpath: str,
              source_lines: List[str]) -> List[Finding]:
        import re as _re

        findings: List[Finding] = []
        sink_re = _re.compile(_SINK_NAME)
        for func in ast.walk(tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not sink_re.search(func.name):
                continue
            for node in ast.walk(func):
                iters: List[ast.expr] = []
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    iters.append(node.iter)
                elif isinstance(node, (ast.ListComp, ast.SetComp,
                                       ast.DictComp, ast.GeneratorExp)):
                    iters.extend(gen.iter for gen in node.generators)
                for it in iters:
                    reason = self._unordered(it)
                    if reason is not None:
                        findings.append(self.finding(
                            relpath, it,
                            f"iteration over {reason} in ordering-"
                            f"sensitive {func.name}(): wrap in sorted() "
                            "so output order is schedule-independent"))
        return findings

    @staticmethod
    def _unordered(node: ast.expr) -> Optional[str]:
        """Name the unordered collection, or ``None`` if ordered."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "a set"
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id == "set":
                return "set(...)"
            if isinstance(node.func, ast.Attribute) and node.func.attr in (
                    "values", "keys", "items"):
                return f".{node.func.attr}()"
        return None
