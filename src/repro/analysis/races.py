"""Dynamic lockset race detection for the threaded engine.

:class:`repro.muppet.local.LocalMuppet` is the one component the
virtual-clock determinism gate cannot cover — it runs real threads, so
its bugs are schedules, not states. This module instruments a runtime
*before* it starts: every engine lock is wrapped in a
:class:`TrackedLock`, and the shared state the workers/flusher/timer
threads touch (slates, counters, latency, the processing table) is
shimmed to report each access to a :class:`LockMonitor`.

Two detectors run over the recording:

* **Eraser-style lockset** (Savage et al.): each shared-state name
  carries a candidate set of locks, intersected with the locks held at
  every access. If the candidate set empties while ≥2 threads and ≥1
  write were seen, no single lock protected that state — a data race,
  reported with the conflicting threads, their stacks, and the locks
  each held.
* **Lock-order graph**: every nested acquisition adds a ``held →
  acquired`` edge; a cycle means two schedules can deadlock even if no
  run has yet. The static twin of this check is lint rule MUP008.

Everything here is opt-in diagnostics: an uninstrumented runtime pays
nothing, an instrumented one serializes through the monitor and is
expected to be slow.

Typical use (also wired as ``python -m repro analyze races``)::

    runtime = LocalMuppet(app, LocalConfig(num_threads=4))
    monitor = instrument_local_muppet(runtime)
    with runtime:
        runtime.ingest_many(events)
        runtime.drain()
        monitor.stop_recording()
    for race in monitor.races():
        print(race.format())
"""

from __future__ import annotations

import threading
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.operators import Updater
from repro.errors import AnalysisError

__all__ = [
    "LockMonitor",
    "RaceReport",
    "TrackedLock",
    "instrument_local_muppet",
    "race_smoke_run",
]


@dataclass(frozen=True)
class _AccessSample:
    """One recorded access to a shared state (stack captured lazily)."""

    thread: str
    kind: str  # "read" | "write"
    locks: Tuple[str, ...]
    stack: str


@dataclass(frozen=True)
class RaceReport:
    """One lockset violation: no common lock across all accesses."""

    state: str
    threads: Tuple[str, ...]
    samples: Tuple[_AccessSample, ...]

    def format(self) -> str:
        lines = [f"RACE on {self.state}: no common lock across "
                 f"{len(self.threads)} threads ({', '.join(self.threads)})"]
        for sample in self.samples:
            held = ", ".join(sample.locks) if sample.locks else "<none>"
            lines.append(f"  {sample.kind} by {sample.thread} "
                         f"holding [{held}]")
            for frame in sample.stack.rstrip().splitlines():
                lines.append(f"    {frame}")
        return "\n".join(lines)


class LockMonitor:
    """Records lock events and shared-state accesses from many threads.

    Thread-safe via one internal (untracked) lock. Recording stops at
    :meth:`stop_recording` — call it before engine teardown so
    post-join cleanup (``stop()`` flushing without worker locks) is not
    misread as racy.
    """

    #: Max distinct access samples kept per state (enough to show the
    #: conflicting pair plus context without unbounded growth).
    MAX_SAMPLES = 6

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._recording = True
        #: thread ident -> stack of currently held TrackedLocks.
        self._held: Dict[int, List["TrackedLock"]] = {}
        #: state name -> candidate lockset (None until first access).
        self._lockset: Dict[str, FrozenSet[str]] = {}
        self._state_threads: Dict[str, Set[str]] = {}
        self._state_writes: Dict[str, bool] = {}
        self._samples: Dict[str, List[_AccessSample]] = {}
        self._sampled: Set[Tuple[str, str, Tuple[str, ...], str]] = set()
        self._raced: Set[str] = set()
        #: (held group, acquired group) -> sample stack.
        self._order_edges: Dict[Tuple[str, str], str] = {}
        self.acquisitions = 0
        self.accesses = 0

    # -- recording hooks (called by TrackedLock and the shims) --------------
    def on_acquire(self, lock: "TrackedLock") -> None:
        ident = threading.get_ident()
        with self._lock:
            if not self._recording:
                return
            self.acquisitions += 1
            held = self._held.setdefault(ident, [])
            for prior in held:
                if prior is lock:
                    continue
                edge = (prior.group, lock.group)
                if edge[0] != edge[1] and edge not in self._order_edges:
                    self._order_edges[edge] = "".join(
                        traceback.format_stack(limit=10))
            held.append(lock)

    def on_release(self, lock: "TrackedLock") -> None:
        ident = threading.get_ident()
        with self._lock:
            held = self._held.get(ident)
            if held is None:
                return
            # Remove the most recent occurrence (locks are non-reentrant
            # but distinct slate locks share a group).
            for i in range(len(held) - 1, -1, -1):
                if held[i] is lock:
                    del held[i]
                    break

    def record_access(self, state: str, kind: str = "write") -> None:
        """Apply the lockset algorithm to one access of ``state``."""
        ident = threading.get_ident()
        thread = threading.current_thread().name
        with self._lock:
            if not self._recording:
                return
            self.accesses += 1
            held = frozenset(lock.name for lock in self._held.get(ident, ()))
            previous = self._lockset.get(state)
            self._lockset[state] = (held if previous is None
                                    else previous & held)
            self._state_threads.setdefault(state, set()).add(thread)
            if kind == "write":
                self._state_writes[state] = True
            # Stack capture is the expensive part; only sample each
            # distinct (thread, lockset, kind) once per state.
            sample_key = (state, thread, tuple(sorted(held)), kind)
            samples = self._samples.setdefault(state, [])
            if (sample_key not in self._sampled
                    and len(samples) < self.MAX_SAMPLES):
                self._sampled.add(sample_key)
                samples.append(_AccessSample(
                    thread=thread, kind=kind, locks=tuple(sorted(held)),
                    stack="".join(traceback.format_stack(limit=8))))
            if (not self._lockset[state]
                    and len(self._state_threads[state]) >= 2
                    and self._state_writes.get(state, False)):
                self._raced.add(state)

    def stop_recording(self) -> None:
        """Freeze the recording (teardown accesses are ignored)."""
        with self._lock:
            self._recording = False

    # -- reports -------------------------------------------------------------
    def races(self) -> List[RaceReport]:
        """All states whose candidate lockset emptied under contention."""
        with self._lock:
            reports = []
            for state in sorted(self._raced):
                reports.append(RaceReport(
                    state=state,
                    threads=tuple(sorted(self._state_threads[state])),
                    samples=tuple(self._samples.get(state, ())),
                ))
            return reports

    def ordering_cycles(self) -> List[List[str]]:
        """Cycles in the lock-order graph (potential deadlocks)."""
        with self._lock:
            edges: Dict[str, Set[str]] = {}
            for src, dst in self._order_edges:
                edges.setdefault(src, set()).add(dst)
        cycles: List[List[str]] = []
        seen_cycles: Set[Tuple[str, ...]] = set()

        def visit(node: str, path: List[str], on_path: Set[str]) -> None:
            for nxt in sorted(edges.get(node, ())):
                if nxt in on_path:
                    cycle = path[path.index(nxt):] + [nxt]
                    # Canonicalize so each cycle reports once.
                    pivot = min(range(len(cycle) - 1),
                                key=lambda i: cycle[i])
                    canon = tuple(cycle[pivot:-1] + cycle[:pivot])
                    if canon not in seen_cycles:
                        seen_cycles.add(canon)
                        cycles.append(cycle)
                    continue
                visit(nxt, path + [nxt], on_path | {nxt})

        for start in sorted(edges):
            visit(start, [start], {start})
        return cycles

    def report(self) -> str:
        """Human-readable summary of both detectors."""
        races = self.races()
        cycles = self.ordering_cycles()
        lines = [f"lock acquisitions: {self.acquisitions}, "
                 f"state accesses: {self.accesses}"]
        if not races and not cycles:
            lines.append("no data races, no lock-order cycles")
        for race in races:
            lines.append(race.format())
        for cycle in cycles:
            lines.append("LOCK-ORDER CYCLE: " + " -> ".join(cycle))
        return "\n".join(lines)


class TrackedLock:
    """A non-reentrant lock that reports acquire/release to a monitor.

    ``group`` names the lock's role in the order graph; distinct
    per-slate locks all share the group ``"slate"`` so the graph stays
    small and order edges aggregate by role.
    """

    def __init__(self, name: str, monitor: LockMonitor,
                 group: Optional[str] = None) -> None:
        self.name = name
        self.group = group if group is not None else name
        self._monitor = monitor
        self._lock = threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            self._monitor.on_acquire(self)
        return acquired

    def release(self) -> None:
        self._monitor.on_release(self)
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.release()


class _MonitoredCounters:
    """Attribute proxy over an EventCounter, reporting field accesses."""

    __slots__ = ("_target", "_monitor")

    def __init__(self, target: Any, monitor: LockMonitor) -> None:
        object.__setattr__(self, "_target", target)
        object.__setattr__(self, "_monitor", monitor)

    def __getattr__(self, name: str) -> Any:
        value = getattr(object.__getattribute__(self, "_target"), name)
        if not callable(value):
            object.__getattribute__(self, "_monitor").record_access(
                f"counters.{name}", "read")
        return value

    def __setattr__(self, name: str, value: Any) -> None:
        object.__getattribute__(self, "_monitor").record_access(
            f"counters.{name}", "write")
        setattr(object.__getattribute__(self, "_target"), name, value)


class _MonitoredList(list):
    """The worker ``_processing`` table with per-slot access recording."""

    def __init__(self, items: List[Any], monitor: LockMonitor,
                 name: str) -> None:
        super().__init__(items)
        self._monitor = monitor
        self._name = name

    def __getitem__(self, index):  # type: ignore[no-untyped-def]
        self._monitor.record_access(f"{self._name}[{index}]", "read")
        return super().__getitem__(index)

    def __setitem__(self, index, value):  # type: ignore[no-untyped-def]
        self._monitor.record_access(f"{self._name}[{index}]", "write")
        super().__setitem__(index, value)

    def __iter__(self):  # type: ignore[no-untyped-def]
        self._monitor.record_access(self._name, "read")
        return super().__iter__()


def instrument_local_muppet(runtime: Any,
                            monitor: Optional[LockMonitor] = None
                            ) -> LockMonitor:
    """Swap a LocalMuppet's locks and shared state for tracked shims.

    Must run before ``runtime.start()`` — worker threads capture lock
    references at loop entry. Returns the monitor (a fresh one if none
    was given). The instrumented runtime behaves identically, slower.
    """
    if getattr(runtime, "_running", False):
        raise AnalysisError(
            "instrument_local_muppet must run before runtime.start(); "
            "worker threads bind the original locks once started")
    mon = monitor if monitor is not None else LockMonitor()

    # 1. The seven engine locks (conditions rebuilt over tracked locks).
    dispatch = TrackedLock("dispatch", mon)
    runtime._dispatch_lock = dispatch
    runtime._work_available = threading.Condition(dispatch)
    runtime._manager_lock = TrackedLock("manager", mon)
    runtime._slate_locks_guard = TrackedLock("slate_locks_guard", mon)
    runtime._latency_lock = TrackedLock("latency", mon)
    runtime._counter_lock = TrackedLock("counter", mon)
    runtime._idle = threading.Condition(TrackedLock("idle", mon))
    runtime._timer_cond = threading.Condition(TrackedLock("timer", mon))

    # 2. Per-slate locks: the factory now mints tracked locks (one
    #    group, distinct instances per key).
    def _tracked_slate_lock(slate_key: Any) -> TrackedLock:
        with runtime._slate_locks_guard:
            lock = runtime._slate_locks.get(slate_key)
            if lock is None:
                lock = TrackedLock(
                    f"slate[{slate_key.updater}/{slate_key.key}]",
                    mon, group="slate")
                runtime._slate_locks[slate_key] = lock
            return lock

    runtime._slate_locks.clear()
    runtime._slate_lock = _tracked_slate_lock

    # 3. Shared state: counters, the processing table, latency.
    runtime.counters = _MonitoredCounters(runtime.counters, mon)
    runtime._processing = _MonitoredList(runtime._processing, mon,
                                         "processing")
    latency_record = runtime.latency.record

    def _tracked_latency_record(value: float) -> None:
        mon.record_access("latency", "write")
        latency_record(value)

    runtime.latency.record = _tracked_latency_record

    # 4. Slate field accesses. Writes happen inside updater.update() /
    #    on_timer() (under the per-slate lock); the flusher's encode is
    #    a read of the same fields. Recording both lets the lockset
    #    algorithm see whether any one lock covers slate mutation.
    for op_name, instance in runtime._instances.items():
        if not isinstance(instance, Updater):
            continue
        _shim_updater(instance, op_name, mon)

    manager = runtime.manager

    def _record_dirty_reads() -> None:
        for slate_key in manager.dirty_keys():
            mon.record_access(
                f"slate:{slate_key.updater}/{slate_key.key}", "read")

    flush_due = manager.flush_due

    def _tracked_flush_due() -> int:
        _record_dirty_reads()
        return flush_due()

    flush_all_dirty = manager.flush_all_dirty

    def _tracked_flush_all_dirty() -> int:
        _record_dirty_reads()
        return flush_all_dirty()

    flush_one = manager.flush_one

    def _tracked_flush_one(slate_key: Any) -> bool:
        mon.record_access(
            f"slate:{slate_key.updater}/{slate_key.key}", "read")
        return flush_one(slate_key)

    manager.flush_due = _tracked_flush_due
    manager.flush_all_dirty = _tracked_flush_all_dirty
    manager.flush_one = _tracked_flush_one
    return mon


def _shim_updater(instance: Any, op_name: str, mon: LockMonitor) -> None:
    """Record a slate write around ``update``/``on_timer`` calls."""
    update = instance.update
    on_timer = instance.on_timer

    def _tracked_update(ctx: Any, event: Any, slate: Any) -> None:
        mon.record_access(f"slate:{op_name}/{event.key}", "write")
        update(ctx, event, slate)

    def _tracked_on_timer(ctx: Any, key: Any, slate: Any,
                          payload: Any) -> None:
        mon.record_access(f"slate:{op_name}/{key}", "write")
        on_timer(ctx, key, slate, payload)

    instance.update = _tracked_update
    instance.on_timer = _tracked_on_timer


# -- the CI smoke run ---------------------------------------------------------
def race_smoke_run(events: int = 2000, threads: int = 4, keys: int = 16,
                   flush_every_s: float = 0.02,
                   build: Optional[Callable[[], Any]] = None) -> LockMonitor:
    """Run an instrumented LocalMuppet under churn; return the monitor.

    The workload is tuned to exercise every lock pair: many keys (slate
    lock contention), a short flush interval (flusher vs. worker), and
    enough events that the two-choice dispatcher routes one key to two
    workers. CI asserts the result is race- and cycle-free.
    """
    from repro.core.application import Application
    from repro.core.operators import Mapper
    from repro.muppet.local import LocalConfig, LocalMuppet
    from repro.slates.manager import FlushPolicy

    if build is None:
        class _Echo(Mapper):
            def map(self, ctx: Any, event: Any) -> None:
                ctx.publish("S2", event.key, event.value)

        class _Count(Updater):
            def init_slate(self, key: str) -> Dict[str, Any]:
                return {"count": 0}

            def update(self, ctx: Any, event: Any, slate: Any) -> None:
                slate["count"] += 1

        def build() -> Any:
            app = Application("race-smoke")
            app.add_stream("S1", external=True)
            app.add_stream("S2")
            app.add_mapper("M1", _Echo, subscribes=["S1"], publishes=["S2"])
            app.add_updater("U1", _Count, subscribes=["S2"])
            return app.validate()

    from repro.core.event import Event

    config = LocalConfig(num_threads=threads,
                         flush_policy=FlushPolicy.every(flush_every_s),
                         flusher_period_s=flush_every_s / 2)
    runtime = LocalMuppet(build(), config)
    monitor = instrument_local_muppet(runtime)
    with runtime:
        for i in range(events):
            runtime.ingest(Event("S1", ts=i * 0.001, key=f"k{i % keys}",
                                 value=i))
        runtime.drain()
        monitor.stop_recording()
    return monitor
