"""Synthetic workload generators: tweets, checkins, Zipf key skew."""

from repro.workloads.checkins import (NON_RETAIL_VENUES, RETAILER_SPELLINGS,
                                      CheckinGenerator, parse_checkin)
from repro.workloads.tweets import (DEFAULT_TOPICS, TopicBurst,
                                    TweetGenerator, parse_tweet)
from repro.workloads.traceio import read_events, write_events
from repro.workloads.zipf import ZipfSampler, zipf_key_fn

__all__ = [
    "CheckinGenerator",
    "DEFAULT_TOPICS",
    "NON_RETAIL_VENUES",
    "RETAILER_SPELLINGS",
    "TopicBurst",
    "TweetGenerator",
    "ZipfSampler",
    "parse_checkin",
    "parse_tweet",
    "read_events",
    "write_events",
    "zipf_key_fn",
]
