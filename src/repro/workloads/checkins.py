"""Synthetic Foursquare checkin stream (Examples 1 and 4).

The paper's first motivating application counts Foursquare checkins per
retailer: "For each incoming checkin, the application analyzes the text of
the checkin (typically represented as a JSON object) to identify the
retailer (if any)". At Kosmix the stream ran at ~1.5 M checkins/day
(Section 5). We generate seeded checkins whose venue names mix recognized
retailers (with messy real-world spellings, so the Figure 3 regexes have
something to chew on) and non-retail venues.
"""

from __future__ import annotations

import json
import random
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.core.event import Event
from repro.errors import ConfigurationError
from repro.workloads.zipf import ZipfSampler

#: (canonical retailer name, venue-name spellings seen in checkins).
RETAILER_SPELLINGS: Sequence[Tuple[str, Sequence[str]]] = (
    ("Walmart", ("Walmart", "Wal-Mart Supercenter", "WALMART #3921",
                 "walmart neighborhood market")),
    ("Sam's Club", ("Sam's Club", "SAMS CLUB", "Sam’s Club #6279")),
    ("Best Buy", ("Best Buy", "BEST BUY Store 482", "best buy mobile")),
    ("JCPenney", ("JCPenney", "JC Penney", "jcpenney salon")),
    ("Target", ("Target", "SuperTarget", "Target Store T-1038")),
)

#: Venues that should *not* match any retailer.
NON_RETAIL_VENUES = (
    "Blue Bottle Coffee", "Golden Gate Park", "SFO Terminal 2",
    "Mission Dolores Park", "City Hall", "Joe's Diner",
    "24th St BART", "The Fillmore", "Main Library", "Pier 39",
)


class CheckinGenerator:
    """Seeded synthetic checkin stream.

    Args:
        sid: External stream ID (e.g. ``"S1"``).
        rate_per_s: Checkins per second (the paper's production rate is
            ~17/s; benches crank this up).
        retail_fraction: Fraction of checkins at recognized retailers.
        num_users: Checkin-user population (Zipf-skewed).
        retailer_exponent: Skew across retailers — raise it to make one
            retailer a hotspot (Example 6's Best Buy scenario).
        hot_retailer: When set, that retailer receives ``hot_share`` of
            all retail checkins (overrides the Zipf draw) — the explicit
            hotspot knob for bench E5.
        seed: Master seed.
    """

    def __init__(
        self,
        sid: str = "S1",
        rate_per_s: float = 100.0,
        retail_fraction: float = 0.4,
        num_users: int = 50_000,
        retailer_exponent: float = 0.8,
        hot_retailer: str = "",
        hot_share: float = 0.8,
        seed: int = 0,
    ) -> None:
        if rate_per_s <= 0:
            raise ConfigurationError("rate must be positive")
        if not 0.0 <= retail_fraction <= 1.0:
            raise ConfigurationError("retail_fraction must be in [0, 1]")
        names = [name for name, _ in RETAILER_SPELLINGS]
        if hot_retailer and hot_retailer not in names:
            raise ConfigurationError(
                f"unknown hot retailer {hot_retailer!r}; choices {names}"
            )
        self.sid = sid
        self.rate_per_s = rate_per_s
        self.retail_fraction = retail_fraction
        self.hot_retailer = hot_retailer
        self.hot_share = hot_share
        self._users = ZipfSampler(num_users, 1.0, seed)
        self._retailers = ZipfSampler(len(RETAILER_SPELLINGS),
                                      retailer_exponent, seed + 1)
        self._rng = random.Random(seed + 2)
        self._checkin_id = 0

    def _venue(self) -> Tuple[str, str]:
        """Pick a venue; returns (venue display name, true retailer or '')."""
        if self._rng.random() >= self.retail_fraction:
            return self._rng.choice(NON_RETAIL_VENUES), ""
        if self.hot_retailer and self._rng.random() < self.hot_share:
            index = next(i for i, (name, _) in enumerate(RETAILER_SPELLINGS)
                         if name == self.hot_retailer)
        else:
            index = self._retailers.sample()
        name, spellings = RETAILER_SPELLINGS[index]
        return self._rng.choice(list(spellings)), name

    def _make_checkin(self, ts: float) -> Tuple[str, str, str]:
        """Build one checkin; returns (user key, JSON value, retailer)."""
        self._checkin_id += 1
        user = f"user{self._users.sample()}"
        venue, retailer = self._venue()
        record: Dict[str, object] = {
            "id": self._checkin_id,
            "user": user,
            "ts": ts,
            "venue": {"name": venue,
                      "lat": round(37.70 + self._rng.random() * 0.12, 5),
                      "lon": round(-122.51 + self._rng.random() * 0.14, 5)},
        }
        return user, json.dumps(record, separators=(",", ":")), retailer

    def events(self, duration_s: float, start_ts: float = 0.0
               ) -> Iterator[Event]:
        """Generate the stream for ``duration_s`` seconds."""
        interval = 1.0 / self.rate_per_s
        count = int(self.rate_per_s * duration_s)
        for i in range(count):
            ts = start_ts + i * interval
            user, value, _ = self._make_checkin(ts)
            yield Event(self.sid, ts, user, value)

    def take_with_truth(self, count: int, start_ts: float = 0.0
                        ) -> Tuple[List[Event], Dict[str, int]]:
        """Generate ``count`` checkins plus ground-truth retailer counts.

        Tests compare the application's slate counts to this truth.
        """
        interval = 1.0 / self.rate_per_s
        events: List[Event] = []
        truth: Dict[str, int] = {}
        for i in range(count):
            ts = start_ts + i * interval
            user, value, retailer = self._make_checkin(ts)
            events.append(Event(self.sid, ts, user, value))
            if retailer:
                truth[retailer] = truth.get(retailer, 0) + 1
        return events, truth


def parse_checkin(value: str) -> Dict[str, object]:
    """Decode a checkin JSON payload (application-side helper)."""
    return json.loads(value)
