"""Zipfian sampling — the key-skew model behind hotspots (Section 5).

"The distribution of event keys can be strongly skewed (e.g., follow a
Zipfian distribution). Consequently, updaters can receive widely varying
loads, and an updater that receives an overwhelming load can potentially
become a hotspot." All workload generators draw users, venues, topics, and
URLs from :class:`ZipfSampler` so benches E4/E5 exercise exactly that skew.
"""

from __future__ import annotations

import bisect
import random
from typing import List

from repro.errors import ConfigurationError


class ZipfSampler:
    """Samples ranks 0..n-1 with probability proportional to 1/(rank+1)^s.

    Deterministic given the seed; rank 0 is the most popular item.

    Args:
        n: Population size.
        exponent: Skew parameter ``s``; 0 = uniform, ~1 = classic Zipf,
            larger = more skewed.
        seed: Seed for the private RNG.
    """

    def __init__(self, n: int, exponent: float = 1.0, seed: int = 0) -> None:
        if n < 1:
            raise ConfigurationError(f"population must be >= 1, got {n}")
        if exponent < 0:
            raise ConfigurationError(f"exponent must be >= 0, got {exponent}")
        self.n = n
        self.exponent = exponent
        self._rng = random.Random(seed)
        weights = [1.0 / (rank + 1) ** exponent for rank in range(n)]
        total = sum(weights)
        self._cdf: List[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            self._cdf.append(acc)
        self._cdf[-1] = 1.0  # guard against float drift

    def sample(self) -> int:
        """Draw one rank."""
        return bisect.bisect_left(self._cdf, self._rng.random())

    def sample_many(self, count: int) -> List[int]:
        """Draw ``count`` ranks."""
        return [self.sample() for _ in range(count)]

    def probability(self, rank: int) -> float:
        """The sampling probability of a rank (diagnostics)."""
        if not 0 <= rank < self.n:
            raise ConfigurationError(f"rank {rank} outside 0..{self.n - 1}")
        low = self._cdf[rank - 1] if rank > 0 else 0.0
        return self._cdf[rank] - low


def zipf_key_fn(prefix: str, n: int, exponent: float = 1.0,
                seed: int = 0):
    """A source ``key_fn`` drawing Zipf-skewed keys like ``"user17"``.

    Convenience for :mod:`repro.sim.sources`: the returned callable
    ignores its index argument and samples the Zipf distribution.
    """
    sampler = ZipfSampler(n, exponent, seed)

    def key_fn(_: int) -> str:
        return f"{prefix}{sampler.sample()}"

    return key_fn
