"""Event trace files: persist and replay streams as JSON lines.

One event per line: ``{"sid", "ts", "key", "value", "seq"}``. Traces are
how the CLI feeds recorded/synthetic streams into the engines, and how
deterministic experiment inputs are shared between runs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator, Union

from repro.core.event import Event
from repro.errors import ConfigurationError


def write_events(path: Union[str, Path], events: Iterable[Event]) -> int:
    """Write events to a JSONL trace; returns the count written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps({
                "sid": event.sid,
                "ts": event.ts,
                "key": event.key,
                "value": event.value,
                "seq": event.seq,
            }, separators=(",", ":")))
            handle.write("\n")
            count += 1
    return count


def read_events(path: Union[str, Path]) -> Iterator[Event]:
    """Stream events back from a JSONL trace."""
    path = Path(path)
    try:
        handle = path.open("r", encoding="utf-8")
    except OSError as exc:
        raise ConfigurationError(f"cannot read trace {path}: {exc}") from exc
    with handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                yield Event(sid=record["sid"], ts=float(record["ts"]),
                            key=record["key"], value=record.get("value"),
                            seq=int(record.get("seq", 0)))
            except (ValueError, KeyError, TypeError) as exc:
                raise ConfigurationError(
                    f"{path}:{line_number}: bad trace record: {exc}"
                ) from exc
