"""Synthetic Twitter Firehose (substitution for the real Firehose).

The paper's flagship input is the Twitter Firehose: >100 M tweets/day by
2011 (Section 5), JSON blobs keyed by user ID (Section 3). We generate
seeded synthetic tweets with the properties the applications depend on:

* Zipf-skewed author popularity (drives hotspots and reputation flows);
* a topic vocabulary with skewed popularity and occasional *bursts*
  (drives hot-topic detection — a bursting topic's rate multiplies);
* retweets/replies referencing other users (drives reputation);
* embedded URLs with skewed popularity (drives top-ten URLs).

Values are JSON strings, like the real Firehose; keys are user IDs.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.event import Event
from repro.errors import ConfigurationError
from repro.workloads.zipf import ZipfSampler

#: Default topic vocabulary (the paper's "small set of pre-defined
#: topics", Example 2).
DEFAULT_TOPICS = (
    "earthquake", "election", "sports", "music", "movies",
    "technology", "weather", "food", "travel", "fashion",
)


@dataclass(frozen=True)
class TopicBurst:
    """A hot-topic episode: ``topic`` runs at ``multiplier``× its normal
    share during [start_s, end_s) — the earthquake scenario of Section 1."""

    topic: str
    start_s: float
    end_s: float
    multiplier: float = 10.0


class TweetGenerator:
    """Seeded synthetic tweet stream.

    Args:
        sid: External stream ID the events carry (e.g. ``"S1"``).
        rate_per_s: Tweets per second.
        num_users: Author population (Zipf-skewed activity).
        topics: Topic vocabulary.
        bursts: Optional hot-topic episodes.
        retweet_prob / reply_prob: Fractions of tweets that reference
            another user.
        url_prob: Fraction of tweets carrying a URL.
        seed: Master seed — identical seeds give identical streams.
    """

    def __init__(
        self,
        sid: str = "S1",
        rate_per_s: float = 1200.0,
        num_users: int = 100_000,
        topics: Sequence[str] = DEFAULT_TOPICS,
        bursts: Sequence[TopicBurst] = (),
        retweet_prob: float = 0.15,
        reply_prob: float = 0.10,
        url_prob: float = 0.20,
        user_exponent: float = 1.1,
        topic_exponent: float = 1.0,
        seed: int = 0,
    ) -> None:
        if rate_per_s <= 0:
            raise ConfigurationError("rate must be positive")
        if not topics:
            raise ConfigurationError("need at least one topic")
        self.sid = sid
        self.rate_per_s = rate_per_s
        self.topics = list(topics)
        self.bursts = list(bursts)
        self._users = ZipfSampler(num_users, user_exponent, seed)
        self._topic_sampler = ZipfSampler(len(self.topics), topic_exponent,
                                          seed + 1)
        self._urls = ZipfSampler(500, 1.2, seed + 2)
        self._rng = random.Random(seed + 3)
        self.retweet_prob = retweet_prob
        self.reply_prob = reply_prob
        self.url_prob = url_prob
        self._tweet_id = 0

    def _pick_topic(self, ts: float) -> str:
        """Topic choice honoring active bursts at time ``ts``."""
        active = [b for b in self.bursts if b.start_s <= ts < b.end_s]
        if active:
            burst = active[0]
            base = 1.0 / len(self.topics)
            boosted = min(0.95, base * burst.multiplier)
            if self._rng.random() < boosted:
                return burst.topic
        return self.topics[self._topic_sampler.sample()]

    def _make_tweet(self, ts: float) -> Tuple[str, str]:
        """Build one tweet; returns (user key, JSON value)."""
        self._tweet_id += 1
        user = f"user{self._users.sample()}"
        topic = self._pick_topic(ts)
        record: Dict[str, object] = {
            "id": self._tweet_id,
            "user": user,
            "ts": ts,
            "text": f"talking about {topic} right now #{topic}",
            "topics": [topic],
        }
        roll = self._rng.random()
        if roll < self.retweet_prob:
            record["retweet_of"] = f"user{self._users.sample()}"
        elif roll < self.retweet_prob + self.reply_prob:
            record["reply_to"] = f"user{self._users.sample()}"
        if self._rng.random() < self.url_prob:
            record["urls"] = [f"http://ex.am/{self._urls.sample()}"]
        return user, json.dumps(record, separators=(",", ":"))

    def events(self, duration_s: float, start_ts: float = 0.0
               ) -> Iterator[Event]:
        """Generate the stream for ``duration_s`` seconds."""
        interval = 1.0 / self.rate_per_s
        count = int(self.rate_per_s * duration_s)
        for i in range(count):
            ts = start_ts + i * interval
            user, value = self._make_tweet(ts)
            yield Event(self.sid, ts, user, value)

    def take(self, count: int, start_ts: float = 0.0) -> List[Event]:
        """Generate exactly ``count`` tweets (test convenience)."""
        interval = 1.0 / self.rate_per_s
        events = []
        for i in range(count):
            ts = start_ts + i * interval
            user, value = self._make_tweet(ts)
            events.append(Event(self.sid, ts, user, value))
        return events


def parse_tweet(value: str) -> Dict[str, object]:
    """Decode a tweet JSON payload (application-side helper)."""
    return json.loads(value)
