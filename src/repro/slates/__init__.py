"""Slate management: codecs, caches, flush policies, and the manager."""

from repro.slates.cache import CacheStats, SlateCache, fragmented_capacity
from repro.slates.codec import (DEFAULT_CODEC, CompressedJsonCodec,
                                JsonCodec, SlateCodec)
from repro.slates.manager import (FlushPolicy, RetryPolicy, SlateManager,
                                  SlateManagerStats)

__all__ = [
    "CacheStats",
    "CompressedJsonCodec",
    "DEFAULT_CODEC",
    "FlushPolicy",
    "JsonCodec",
    "RetryPolicy",
    "SlateCache",
    "SlateCodec",
    "SlateManager",
    "SlateManagerStats",
    "fragmented_capacity",
]
