"""SlateManager: the cache-over-store slate lifecycle (Section 4.2).

"When the updater U needs the slate with key k, Muppet first checks the
cache ... If the slate is not found, Muppet retrieves the slate from the
Cassandra cluster by reading the value indexed by the pair <k, U>. The
retrieved value is decompressed then passed to the updater. If the requested
slate does not exist in Cassandra ... Muppet initializes a new slate in the
cache."

The manager also implements the flush spectrum: "dirty (updated) slates are
periodically flushed to the key-value store. The application can set the
flushing interval, ranging from 'immediate write-through' to 'only when
evicted from cache'."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional

from repro.core.operators import Updater
from repro.core.slate import Slate, SlateKey
from repro.errors import ConfigurationError, StoreError
from repro.kvstore.api import ConsistencyLevel
from repro.kvstore.cluster import ReplicatedKVStore
from repro.slates.cache import SlateCache
from repro.slates.codec import DEFAULT_CODEC, SlateCodec, split_watermarks

if TYPE_CHECKING:  # pragma: no cover - import only for annotations
    from repro.obs import Tracer


@dataclass(frozen=True)
class FlushPolicy:
    """When dirty slates are written to the key-value store.

    Attributes:
        kind: ``"write_through"`` (flush on every update),
            ``"interval"`` (flush dirty slates every ``interval_s``), or
            ``"on_evict"`` (flush only when the cache evicts a dirty
            slate).
        interval_s: Flush period for the ``"interval"`` kind.
    """

    kind: str = "interval"
    interval_s: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in ("write_through", "interval", "on_evict"):
            raise ConfigurationError(
                f"unknown flush policy {self.kind!r}; use write_through, "
                "interval, or on_evict"
            )
        if self.kind == "interval" and self.interval_s <= 0:
            raise ConfigurationError(
                "FlushPolicy interval_s must be positive, got "
                f"{self.interval_s!r}; use FlushPolicy.write_through() "
                "for per-update flushing or FlushPolicy.on_evict() to "
                "flush only at eviction"
            )

    @classmethod
    def write_through(cls) -> "FlushPolicy":
        """Immediate write-through — maximal durability."""
        return cls(kind="write_through")

    @classmethod
    def every(cls, seconds: float) -> "FlushPolicy":
        """Periodic flushing of dirty slates."""
        return cls(kind="interval", interval_s=seconds)

    @classmethod
    def on_evict(cls) -> "FlushPolicy":
        """Flush only at eviction — minimal write volume, maximal loss
        exposure on crash (Section 4.3 accepts this trade)."""
        return cls(kind="on_evict")


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/backoff behaviour for the manager's kv operations.

    A transient store error (e.g. a :class:`~repro.errors.QuorumError`
    during a kv-node outage) is retried up to ``max_attempts`` times
    with exponential backoff; the backoff time is charged as simulated
    I/O wait and counted. When retries are exhausted:

    * ``fail_open=True`` (default): the operation *degrades* instead of
      raising — a failed read behaves as a cache miss (the slate
      re-initializes), a failed write leaves the slate dirty for the
      next flush cycle to retry. Both are counted, so degradation is
      observable; no :class:`~repro.errors.StoreError` ever escapes to
      operator code.
    * ``fail_open=False``: the final error propagates (fail-closed).

    Attributes:
        max_attempts: Total tries including the first (>= 1).
        base_delay_s: Backoff before the first retry.
        multiplier: Backoff growth factor per retry (>= 1).
        max_delay_s: Backoff ceiling.
        fail_open: Degrade instead of raising after the last attempt.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.002
    multiplier: float = 2.0
    max_delay_s: float = 0.25
    fail_open: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ConfigurationError("backoff delays must be >= 0")
        if self.multiplier < 1.0:
            raise ConfigurationError("multiplier must be >= 1")

    @classmethod
    def none(cls, fail_open: bool = False) -> "RetryPolicy":
        """No retries; optionally still fail open on the first error."""
        return cls(max_attempts=1, fail_open=fail_open)


@dataclass(slots=True)
class SlateManagerStats:
    """KV traffic, retry, and loss accounting for one slate manager."""

    kv_reads: int = 0
    kv_writes: int = 0
    kv_read_misses: int = 0
    initialized: int = 0
    ttl_resets: int = 0
    lost_dirty_on_crash: int = 0
    kv_retries: int = 0
    kv_backoff_s: float = 0.0
    fail_open_reads: int = 0
    fail_open_writes: int = 0
    rehydrated: int = 0
    #: Coalesced-flush accounting: multi-cell kv batches shipped, and
    #: how many dirty slates rode them (also counted in kv_writes).
    batch_flushes: int = 0
    batched_writes: int = 0


class SlateManager:
    """Owns one slate cache and its synchronization with the kv-store.

    Muppet 1.0 builds one manager per worker (fragmented caches);
    Muppet 2.0 builds one per machine (the central cache). Engines
    serialize access per manager.

    Args:
        store: Backing replicated store; ``None`` disables persistence
            (slates then live only in cache — the Storm/S4 situation the
            paper contrasts against).
        cache_capacity: Resident-slate limit for the LRU cache.
        codec: Serialization codec (JSON+zlib by default, like Muppet).
        flush_policy: See :class:`FlushPolicy`.
        clock: Time source for TTLs and flush scheduling.
        consistency: Consistency level for kv reads/writes.
        max_slate_bytes: Optional hard cap on slate size (Section 5's
            "keep slates small" advice, enforced).
        retry: Retry/backoff/fail-open policy for kv operations (see
            :class:`RetryPolicy`).
        coalesce_flushes: Group dirty slates into multi-cell
            :meth:`ReplicatedKVStore.write_batch` calls per flush cycle
            (on by default; the perf-gate ablation knob — off flushes
            one kv write per slate, the pre-batching behaviour).
        tracer: Optional :class:`repro.obs.Tracer`; when set the manager
            emits ``slate_read``/``slate_flush`` spans. Strictly
            passive — never consulted except behind ``is not None``.
        owner: Name of the machine this manager belongs to. Purely
            observational: when set, slate spans carry ``machine=owner``
            so the trace invariant checker can verify ring ownership of
            slate traffic.
    """

    def __init__(
        self,
        store: Optional[ReplicatedKVStore],
        cache_capacity: int = 10_000,
        codec: SlateCodec = DEFAULT_CODEC,
        flush_policy: FlushPolicy = FlushPolicy.every(1.0),
        clock: Callable[[], float] = lambda: 0.0,
        consistency: ConsistencyLevel = ConsistencyLevel.ONE,
        max_slate_bytes: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        coalesce_flushes: bool = True,
        tracer: Optional["Tracer"] = None,
        owner: Optional[str] = None,
    ) -> None:
        self.store = store
        self.codec = codec
        self.flush_policy = flush_policy
        self.clock = clock
        self.consistency = consistency
        self.max_slate_bytes = max_slate_bytes
        self.retry = retry or RetryPolicy()
        self.coalesce_flushes = coalesce_flushes
        self.tracer = tracer
        self.owner = owner
        #: Extra kwargs stamped onto every slate span (empty when the
        #: manager has no owning machine, e.g. the threaded engines).
        self._span_tags = {} if owner is None else {"machine": owner}
        self.cache = SlateCache(cache_capacity, on_evict=self._evicted)
        self.stats = SlateManagerStats()
        self._last_interval_flush = 0.0
        self._rehydrating = False
        #: Simulated I/O seconds accrued by kv traffic since last drain
        #: (the engines' background I/O thread picks this up).
        self.pending_io_s = 0.0

    # -- fetch ------------------------------------------------------------------
    def get(self, updater: Updater, key: str) -> Slate:
        """Fetch the slate for (updater, key): cache → store → initialize.

        TTL expiry is honored at every layer: an expired cached slate is
        re-initialized; the store returns nothing for expired cells.
        """
        now = self.clock()
        slate_key = SlateKey(updater.get_name(), key)
        slate = self.cache.get(slate_key)
        if slate is not None and slate.expired(now):
            self.cache.remove(slate_key)
            self.stats.ttl_resets += 1
            slate = None
        if slate is not None:
            return slate

        slate = self._fetch_from_store(updater, slate_key, now)
        if slate is None:
            slate = Slate(slate_key, updater.init_slate(key),
                          ttl=updater.slate_ttl, created_ts=now)
            self.stats.initialized += 1
        self.cache.put(slate)
        return slate

    def _fetch_from_store(self, updater: Updater, slate_key: SlateKey,
                          now: float) -> Optional[Slate]:
        if self.store is None:
            return None
        row, column = slate_key.row_column()
        self.stats.kv_reads += 1
        try:
            result = self._kv_call(
                lambda: self.store.read(row, column, self.consistency))
        except StoreError:
            if not self.retry.fail_open:
                raise
            # Fail-open degradation: treat the unreachable store as a
            # miss; the slate re-initializes and later flushes heal it.
            self.stats.fail_open_reads += 1
            self.stats.kv_read_misses += 1
            return None
        self.pending_io_s += result.cost_s
        if self.tracer is not None:
            self.tracer.emit(self.clock(), "slate_read",
                             updater=slate_key.updater, key=slate_key.key,
                             row=row, column=column,
                             hit=result.value is not None,
                             **self._span_tags)
        if result.value is None:
            self.stats.kv_read_misses += 1
            return None
        fields, watermarks = split_watermarks(self.codec.decode(result.value))
        slate = Slate(slate_key, fields,
                      ttl=updater.slate_ttl, created_ts=now)
        # Watermarks ride the same blob as the fields, so a re-hydrated
        # slate's dedup state is exactly as fresh as its data — the
        # atomicity that makes replayed-event dedup sound after a crash.
        slate.set_watermarks(watermarks)
        slate.last_update_ts = result.write_ts
        if slate.expired(now):
            self.stats.ttl_resets += 1
            return None
        slate.mark_clean()
        if self._rehydrating:
            self.stats.rehydrated += 1
        return slate

    def _kv_call(self, op):
        """Run one kv operation under the retry/backoff policy.

        Backoff is virtual: each retry charges its delay to
        ``pending_io_s`` (the engine's background I/O accounting) and to
        the backoff counter; the final failure propagates to the caller,
        which applies the fail-open decision.
        """
        delay = self.retry.base_delay_s
        attempt = 1
        while True:
            try:
                return op()
            except StoreError:
                if attempt >= self.retry.max_attempts:
                    raise
                attempt += 1
                self.stats.kv_retries += 1
                self.stats.kv_backoff_s += delay
                self.pending_io_s += delay
                delay = min(delay * self.retry.multiplier,
                            self.retry.max_delay_s)

    # -- write-back ------------------------------------------------------------
    def note_update(self, slate: Slate) -> None:
        """Record that an updater just modified ``slate``.

        Under write-through this immediately persists; otherwise the slate
        stays dirty for the periodic/evict flush.
        """
        slate.check_size(self.max_slate_bytes)
        if self.flush_policy.kind == "write_through":
            self._flush_slate(slate)

    def flush_due(self) -> int:
        """Flush dirty slates if the interval policy says it is time.

        Returns the number of slates flushed. Call frequently (engines call
        it from their background I/O thread) — the cache's incremental
        dirty index makes each call O(dirty slates), so an idle tick with
        nothing dirty costs two comparisons, not a resident-set scan.
        """
        if self.flush_policy.kind != "interval":
            return 0
        now = self.clock()
        if now - self._last_interval_flush < self.flush_policy.interval_s:
            return 0
        self._last_interval_flush = now
        return self.flush_all_dirty()

    def due(self) -> bool:
        """Is an interval flush due? (Checks only; flushes nothing.)

        The threaded engine's flusher uses :meth:`due` /
        :meth:`dirty_keys` / :meth:`flush_one` instead of
        :meth:`flush_due` so it can take each slate's lock around the
        encode — a worker mutating slate fields mid-encode would
        otherwise tear the blob. Call :meth:`mark_interval_flushed`
        after acting on a True return.
        """
        if self.flush_policy.kind != "interval":
            return False
        return (self.clock() - self._last_interval_flush
                >= self.flush_policy.interval_s)

    def mark_interval_flushed(self) -> None:
        """Restart the interval-flush clock (pairs with :meth:`due`)."""
        self._last_interval_flush = self.clock()

    def dirty_keys(self) -> List[SlateKey]:
        """Keys of resident dirty slates, in first-dirtied order."""
        return [slate.slate_key for slate in self.cache.dirty_slates()]

    def flush_one(self, slate_key: SlateKey) -> bool:
        """Flush one slate by key if it is resident and dirty.

        Returns True if the slate was written clean. Safe to call with
        keys that were flushed/evicted since :meth:`dirty_keys` listed
        them — those return False.
        """
        slate = self.cache.peek(slate_key)
        if slate is None or not slate.dirty:
            return False
        self._flush_slate(slate)
        return not slate.dirty

    def flush_all_dirty(self) -> int:
        """Flush every dirty resident slate; returns the flushed count.

        Dirty slates are grouped into one coalesced
        :meth:`ReplicatedKVStore.write_batch` (multi-cell writes per
        replica set) instead of one kv write per slate. If the batch
        fails after retries, the per-slate path takes over so the
        retry/fail-open semantics per slate match :meth:`_flush_slate`.
        """
        dirty = list(self.cache.dirty_slates())
        if not dirty:
            return 0
        if self.store is None:
            for slate in dirty:
                slate.mark_clean()
            return len(dirty)
        if not self.coalesce_flushes or len(dirty) == 1:
            flushed = 0
            for slate in dirty:
                self._flush_slate(slate)
                if not slate.dirty:
                    flushed += 1
            return flushed
        writes = []
        for slate in dirty:
            row, column = slate.slate_key.row_column()
            writes.append((row, column, slate.encoded_with(self.codec),
                           slate.ttl))
        try:
            result = self.store.write_batch(writes,
                                            consistency=self.consistency)
        except StoreError:
            # Degrade to the per-slate path: each slate gets its own
            # retry cycle and fail-open accounting (a partial batch is
            # harmless — last-write-wins makes re-writes idempotent).
            flushed = 0
            for slate in dirty:
                self._flush_slate(slate)
                if not slate.dirty:
                    flushed += 1
            return flushed
        self.pending_io_s += result.cost_s
        self.stats.kv_writes += len(dirty)
        self.stats.batch_flushes += 1
        self.stats.batched_writes += len(dirty)
        if self.tracer is not None:
            now = self.clock()
            for slate in dirty:
                row, column = slate.slate_key.row_column()
                self.tracer.emit(now, "slate_flush",
                                 updater=slate.slate_key.updater,
                                 key=slate.slate_key.key,
                                 row=row, column=column, batched=True,
                                 **self._span_tags)
        for slate in dirty:
            slate.mark_clean()
        return len(dirty)

    def _flush_slate(self, slate: Slate) -> None:
        if self.store is None:
            slate.mark_clean()
            return
        row, column = slate.slate_key.row_column()
        blob = slate.encoded_with(self.codec)
        try:
            result = self._kv_call(
                lambda: self.store.write(row, column, blob, ttl=slate.ttl,
                                         consistency=self.consistency))
        except StoreError:
            if not self.retry.fail_open:
                raise
            # Fail-open degradation: the slate stays dirty so the next
            # flush cycle retries it once the store heals. (A dirty slate
            # evicted while the store is down is lost — the same bounded
            # exposure as a crash between flushes.)
            self.stats.fail_open_writes += 1
            return
        self.pending_io_s += result.cost_s
        self.stats.kv_writes += 1
        if self.tracer is not None:
            self.tracer.emit(self.clock(), "slate_flush",
                             updater=slate.slate_key.updater,
                             key=slate.slate_key.key,
                             row=row, column=column, batched=False,
                             **self._span_tags)
        slate.mark_clean()

    def _evicted(self, slate: Slate) -> None:
        """Cache eviction hook: persist dirty victims (all policies)."""
        if slate.dirty:
            self._flush_slate(slate)

    # -- live migration (elastic scaling) ---------------------------------------
    def import_blob(self, slate_key: SlateKey, blob: bytes,
                    ttl: Optional[float], last_update_ts: float,
                    now: float) -> Slate:
        """Install a slate handed off by another machine's manager.

        The blob is a donor-side :meth:`Slate.encoded_with` payload, so
        the dedup watermarks ride inside it and are split out here —
        the receiver's replay-dedup state is exactly as fresh as the
        handed-off data (the same atomicity as the store read path).

        The imported slate lands *dirty*: between cutover and the
        receiver's next flush, this cache holds the only copy newer
        than the store, and the dirty flag is what guarantees the
        ordinary flush machinery (and the migration ack barrier)
        persists it rather than silently dropping the freshest state.
        """
        fields, watermarks = split_watermarks(self.codec.decode(blob))
        slate = Slate(slate_key, fields, ttl=ttl, created_ts=now)
        slate.set_watermarks(watermarks)
        slate.last_update_ts = last_update_ts
        slate.dirty = True
        self.cache.put(slate)
        return slate

    def drop(self, slate_key: SlateKey) -> Optional[Slate]:
        """Release ownership of a slate without flushing it.

        Migration cutover calls this on the *donor* after the receiver
        installed the handed-off blob: the donor's copy — dirty or not
        — is no longer authoritative, and flushing it here would race
        the receiver's own writes (last-write-wins could resurrect
        pre-handoff state). Returns the dropped slate, or None.
        """
        return self.cache.remove(slate_key)

    # -- failure ---------------------------------------------------------------
    def crash(self) -> int:
        """Lose the cache without flushing, as when a machine dies.

        "When an updater fails, whatever changes that it has made to the
        slates and that have not yet been flushed to the key-value store
        are lost" (Section 4.3). Returns the number of dirty slates lost.
        """
        lost = sum(1 for _ in self.cache.dirty_slates())
        self.stats.lost_dirty_on_crash += lost
        self.cache.clear()
        return lost

    def revive(self) -> None:
        """Bring a crashed manager back with a cold cache.

        Re-hydration is lazy, exactly the Section 4.2 miss path: the
        cache is empty, so each slate the revived machine owns again is
        refetched from the replicated kv-store on first touch. Store
        fetches from here on are counted in ``stats.rehydrated``.
        """
        self._rehydrating = True

    def take_pending_io(self) -> float:
        """Drain accrued kv I/O time (background-thread hook)."""
        cost = self.pending_io_s
        self.pending_io_s = 0.0
        return cost
