"""Slate caches: per-worker (Muppet 1.0) and central (Muppet 2.0).

Section 4.5's third limitation of Muppet 1.0 is cache fragmentation: "Each
worker on a machine maintains its own slate ... Because the keys of the
popular slates may be hashed unevenly among them (for example, one of the
five updaters might get 25 of the popular slates, not 20), we have to
configure a larger slate cache per updater (e.g., 25 slates each and not
20) to cache the same working set (yielding a larger total slate cache of
125 slates instead of 100)." Muppet 2.0 keeps "a single 'central' slate
cache". Bench E3 quantifies exactly this with :class:`SlateCache` instances
in both arrangements.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional

from repro.core.slate import Slate, SlateKey
from repro.errors import ConfigurationError

#: Called with each slate evicted while dirty, so the owner can flush it.
EvictionCallback = Callable[[Slate], None]


@dataclass(slots=True)
class CacheStats:
    """Hit/miss/eviction counters for one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0 when untouched)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, int]:
        """Counter snapshot; registered as a metrics-registry view."""
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions,
                "dirty_evictions": self.dirty_evictions}


class SlateCache:
    """An LRU cache of :class:`Slate` objects with eviction callbacks.

    Capacity is measured in slates, matching how the paper discusses
    working sets ("a working set of 100 popular slates"). A byte budget can
    be layered on by the caller via :meth:`total_bytes`.

    Args:
        capacity: Maximum resident slates (>= 1).
        on_evict: Invoked for every evicted slate *before* removal; owners
            use it to flush dirty slates to the key-value store
            ("only when evicted from cache" flush policy, Section 4.2).
    """

    def __init__(self, capacity: int,
                 on_evict: Optional[EvictionCallback] = None) -> None:
        if capacity < 1:
            raise ConfigurationError("cache capacity must be >= 1, "
                                     f"got {capacity}")
        self.capacity = capacity
        self._on_evict = on_evict
        self._slates: "OrderedDict[SlateKey, Slate]" = OrderedDict()
        #: Incremental dirty index (first-dirtied order, deterministic):
        #: resident slates whose dirty flag is set, maintained via each
        #: slate's dirty listener so flush passes are O(dirty slates)
        #: instead of O(resident slates).
        self._dirty_index: "OrderedDict[SlateKey, Slate]" = OrderedDict()
        self.stats = CacheStats()

    def _dirty_changed(self, slate: Slate, is_dirty: bool) -> None:
        if is_dirty:
            self._dirty_index[slate.slate_key] = slate
        else:
            self._dirty_index.pop(slate.slate_key, None)

    def _adopt(self, slate: Slate) -> None:
        slate.set_dirty_listener(self._dirty_changed)
        if slate.dirty:
            self._dirty_index[slate.slate_key] = slate

    def _orphan(self, slate: Slate) -> None:
        slate.set_dirty_listener(None)
        self._dirty_index.pop(slate.slate_key, None)

    def get(self, slate_key: SlateKey) -> Optional[Slate]:
        """Fetch and LRU-touch a resident slate; None on miss."""
        slate = self._slates.get(slate_key)
        if slate is None:
            self.stats.misses += 1
            return None
        self._slates.move_to_end(slate_key)
        self.stats.hits += 1
        return slate

    def peek(self, slate_key: SlateKey) -> Optional[Slate]:
        """Fetch without touching LRU order or stats (HTTP reads use this
        for status probes; normal reads should use :meth:`get`)."""
        return self._slates.get(slate_key)

    def put(self, slate: Slate) -> None:
        """Insert (or refresh) a slate, evicting LRU victims if needed."""
        key = slate.slate_key
        existing = self._slates.get(key)
        if existing is not None:
            if existing is not slate:
                self._orphan(existing)
                self._adopt(slate)
            self._slates[key] = slate
            self._slates.move_to_end(key)
            return
        while len(self._slates) >= self.capacity:
            self._evict_lru()
        self._adopt(slate)
        self._slates[key] = slate

    def _evict_lru(self) -> None:
        victim_key, victim = self._slates.popitem(last=False)
        self.stats.evictions += 1
        if victim.dirty:
            self.stats.dirty_evictions += 1
        self._orphan(victim)
        if self._on_evict is not None:
            self._on_evict(victim)

    def remove(self, slate_key: SlateKey) -> Optional[Slate]:
        """Drop a slate without invoking the eviction callback."""
        slate = self._slates.pop(slate_key, None)
        if slate is not None:
            self._orphan(slate)
        return slate

    def __len__(self) -> int:
        return len(self._slates)

    def __contains__(self, slate_key: SlateKey) -> bool:
        return slate_key in self._slates

    def resident(self) -> List[SlateKey]:
        """Keys currently cached, LRU-first."""
        return list(self._slates)

    def dirty_slates(self) -> Iterator[Slate]:
        """All resident slates with unflushed changes.

        Served from the incremental dirty index — O(dirty), not
        O(resident) — in first-dirtied order (deterministic).
        """
        return (s for s in list(self._dirty_index.values()) if s.dirty)

    def dirty_count(self) -> int:
        """Resident slates with unflushed changes (O(1))."""
        return len(self._dirty_index)

    def total_bytes(self) -> int:
        """Approximate memory held by resident slates."""
        return sum(s.estimated_bytes() for s in self._slates.values())

    def clear(self) -> None:
        """Drop everything without callbacks (e.g. on simulated crash —
        unflushed changes are lost, as in Section 4.3)."""
        for slate in self._slates.values():
            slate.set_dirty_listener(None)
        self._slates.clear()
        self._dirty_index.clear()


def fragmented_capacity(working_set: int, workers: int,
                        observed_max_share: float) -> int:
    """Per-worker cache size needed to hold a shared working set.

    The paper's example: a 100-slate working set over 5 workers needs 25
    slates per worker (not 20) when hashing sends one worker 25 of the hot
    slates — 125 cache slots in total instead of 100. Given the observed
    maximum share any worker receives (e.g. 0.25), this returns the
    per-worker capacity that still captures the whole working set.
    """
    if workers < 1:
        raise ConfigurationError("workers must be >= 1")
    if not 0.0 < observed_max_share <= 1.0:
        raise ConfigurationError("observed_max_share must be in (0, 1]")
    import math

    return math.ceil(working_set * observed_max_share)
