"""Slate serialization codecs (Section 4.2).

"Our applications often use JSON to encode slates for language independence
and flexibility, so Muppet compresses each slate before storing it in the
key-value store." The default codec is therefore JSON + zlib; a plain JSON
codec exists for ablation benches that measure what the compression buys.
"""

from __future__ import annotations

import json
import zlib
from typing import Any, Dict, Protocol

from repro.errors import SlateError


class SlateCodec(Protocol):
    """Encodes slate field dicts to bytes for the key-value store."""

    name: str

    def encode(self, data: Dict[str, Any]) -> bytes:
        """Serialize slate contents."""
        ...

    def decode(self, blob: bytes) -> Dict[str, Any]:
        """Deserialize slate contents."""
        ...


class JsonCodec:
    """Plain JSON (UTF-8), no compression — ablation baseline."""

    name = "json"

    def encode(self, data: Dict[str, Any]) -> bytes:
        try:
            return json.dumps(data, separators=(",", ":"),
                              sort_keys=True).encode("utf-8")
        except (TypeError, ValueError) as exc:
            raise SlateError(f"slate not JSON-encodable: {exc}") from exc

    def decode(self, blob: bytes) -> Dict[str, Any]:
        try:
            data = json.loads(blob.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise SlateError(f"corrupt slate blob: {exc}") from exc
        if not isinstance(data, dict):
            raise SlateError(
                f"slate blob decoded to {type(data).__name__}, expected dict"
            )
        return data


#: Shared by every CompressedJsonCodec — JsonCodec is stateless, so one
#: instance serves all compression levels.
_JSON = JsonCodec()


class CompressedJsonCodec:
    """JSON + zlib — the paper's production encoding.

    Args:
        level: zlib compression level (1 fast … 9 small; 6 default).
    """

    name = "json+zlib"

    def __init__(self, level: int = 6) -> None:
        if not 1 <= level <= 9:
            raise SlateError(f"zlib level must be 1..9, got {level}")
        self._level = level

    @property
    def level(self) -> int:
        """The zlib compression level this codec encodes at."""
        return self._level

    def encode(self, data: Dict[str, Any]) -> bytes:
        return zlib.compress(_JSON.encode(data), self._level)

    def decode(self, blob: bytes) -> Dict[str, Any]:
        try:
            raw = zlib.decompress(blob)
        except zlib.error as exc:
            raise SlateError(f"corrupt compressed slate: {exc}") from exc
        return _JSON.decode(raw)


#: The production default, matching the paper.
DEFAULT_CODEC = CompressedJsonCodec()
