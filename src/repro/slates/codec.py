"""Slate serialization codecs (Section 4.2).

"Our applications often use JSON to encode slates for language independence
and flexibility, so Muppet compresses each slate before storing it in the
key-value store." The default codec is therefore JSON + zlib; a plain JSON
codec exists for ablation benches that measure what the compression buys.

Under ``delivery_semantics="effectively-once"`` the blob additionally
carries the slate's per-upstream dedup watermarks, embedded under the
reserved :data:`WATERMARK_FIELD` key so state and watermarks persist
*atomically* through the one encode/write — the property the recovery
exactness argument rests on. :func:`split_watermarks` is the decode-side
inverse. Slates that never tracked a watermark encode exactly as before
(no reserved key), so blobs are byte-identical with the knob off.
"""

from __future__ import annotations

import json
import zlib
from typing import Any, Dict, Optional, Protocol, Tuple

from repro.core.slate import WATERMARK_FIELD
from repro.errors import SlateError


def split_watermarks(
    data: Dict[str, Any],
) -> Tuple[Dict[str, Any], Optional[Dict[str, int]]]:
    """Separate a decoded blob dict into (application fields, watermarks).

    Mutates ``data`` by popping the reserved key; returns ``None`` for
    the watermarks when the blob was written without any (the common
    case for every delivery mode except effectively-once).
    """
    watermarks = data.pop(WATERMARK_FIELD, None)
    if watermarks is None:
        return data, None
    return data, {str(origin): int(seq) for origin, seq in watermarks.items()}


class SlateCodec(Protocol):
    """Encodes slate field dicts to bytes for the key-value store."""

    name: str

    def encode(self, data: Dict[str, Any]) -> bytes:
        """Serialize slate contents."""
        ...

    def decode(self, blob: bytes) -> Dict[str, Any]:
        """Deserialize slate contents."""
        ...


class JsonCodec:
    """Plain JSON (UTF-8), no compression — ablation baseline."""

    name = "json"

    def encode(self, data: Dict[str, Any]) -> bytes:
        try:
            return json.dumps(data, separators=(",", ":"),
                              sort_keys=True).encode("utf-8")
        except (TypeError, ValueError) as exc:
            raise SlateError(f"slate not JSON-encodable: {exc}") from exc

    def decode(self, blob: bytes) -> Dict[str, Any]:
        try:
            data = json.loads(blob.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise SlateError(f"corrupt slate blob: {exc}") from exc
        if not isinstance(data, dict):
            raise SlateError(
                f"slate blob decoded to {type(data).__name__}, expected dict"
            )
        return data


#: Shared by every CompressedJsonCodec — JsonCodec is stateless, so one
#: instance serves all compression levels.
_JSON = JsonCodec()


class CompressedJsonCodec:
    """JSON + zlib — the paper's production encoding.

    Args:
        level: zlib compression level (1 fast … 9 small; 6 default).
    """

    name = "json+zlib"

    def __init__(self, level: int = 6) -> None:
        if not 1 <= level <= 9:
            raise SlateError(f"zlib level must be 1..9, got {level}")
        self._level = level

    @property
    def level(self) -> int:
        """The zlib compression level this codec encodes at."""
        return self._level

    def encode(self, data: Dict[str, Any]) -> bytes:
        return zlib.compress(_JSON.encode(data), self._level)

    def decode(self, blob: bytes) -> Dict[str, Any]:
        try:
            raw = zlib.decompress(blob)
        except zlib.error as exc:
            raise SlateError(f"corrupt compressed slate: {exc}") from exc
        return _JSON.decode(raw)


#: The production default, matching the paper.
DEFAULT_CODEC = CompressedJsonCodec()
