"""``python -m repro campaign <run|render|check|list>``.

Path conventions (all relative to the working directory, which CI and
the docs assume is the repo root):

* committed artifacts: ``campaigns/results/<name>.json`` + ``.md``
  (``perf_baseline`` overrides its JSON home to ``BENCH_PERF.json``);
* scratch runs (no ``--update``): ``campaigns/scratch/`` by default,
  ``--out DIR`` to redirect (CI uses ``benchmarks/results/...`` so the
  fresh artifact uploads with the other gate outputs).
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Optional, Tuple

from repro.campaign import artifact as art
from repro.campaign.runner import Runner, verify_rows, write_outputs
from repro.campaign.spec import CampaignSpec, spec_from_toml
from repro.campaign.specs import SPECS, get_spec
from repro.errors import ConfigurationError

#: Default scratch directory for non-committed runs (gitignored).
SCRATCH_DIR = Path("campaigns") / "scratch"


def _load_spec(args: argparse.Namespace) -> CampaignSpec:
    if getattr(args, "spec", None):
        spec = spec_from_toml(args.spec)
        if args.name and args.name != spec.name:
            raise ConfigurationError(
                f"--spec {args.spec} defines campaign {spec.name!r}, "
                f"not {args.name!r}"
            )
        return spec
    if not args.name:
        raise ConfigurationError("name a campaign or pass --spec TOML")
    return get_spec(args.name)


def _run_paths(
    spec: CampaignSpec, update: bool, out: Optional[str]
) -> Tuple[Path, Path]:
    root = Path.cwd()
    if update:
        if out is not None:
            raise ConfigurationError("--update writes the committed paths; drop --out")
        return spec.committed_path(root), spec.markdown_path(root)
    out_dir = Path(out) if out is not None else SCRATCH_DIR
    return out_dir / f"{spec.name}.json", out_dir / f"{spec.name}.md"


def cmd_list(args: argparse.Namespace) -> int:
    for name in sorted(SPECS):
        spec = SPECS[name]
        cells = 1
        for values in spec.grid.values():
            cells *= len(values)
        smoke = ""
        if spec.smoke_grid is not None:
            smoke_cells = 1
            for values in spec.smoke_grid.values():
                smoke_cells *= len(values)
            smoke = f" (smoke: {smoke_cells})"
        print(f"{name}: {cells} cells{smoke}")
        print(f"  {spec.description}")
        print(f"  artifact: {spec.committed_path(Path('.'))}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    spec = _load_spec(args)
    json_path, md_path = _run_paths(spec, args.update, args.out)
    resume_from = None
    if args.resume and json_path.exists():
        resume_from = art.load_artifact(json_path)
    runner = Runner(spec, workers=args.workers)
    result = runner.run(smoke=args.smoke, resume_from=resume_from)
    write_outputs(spec, result, json_path, md_path)
    grid_kind = "smoke grid" if args.smoke and spec.smoke_grid else "full grid"
    print(
        f"campaign {spec.name}: {len(result.rows)} cells ({grid_kind}), "
        f"{result.ran} ran, {result.resumed} resumed, {result.failed} failed"
    )
    print(f"wrote {json_path}")
    print(f"wrote {md_path}")
    for failure in result.verify_failures:
        print(f"  VERIFY FAIL: {failure}")
    if result.verify_failures:
        print(f"campaign {spec.name}: verification failed")
        return 1
    return 0


def cmd_render(args: argparse.Namespace) -> int:
    from repro.campaign.runner import summarize_rows

    spec = _load_spec(args)
    root = Path.cwd()
    payload = art.load_artifact(spec.committed_path(root))
    md_path = spec.markdown_path(root)
    md_path.parent.mkdir(parents=True, exist_ok=True)
    summary = summarize_rows(spec, payload["cells"])
    md_path.write_text(art.render_markdown(spec, payload, summary))
    print(f"wrote {md_path}")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    spec = _load_spec(args)
    root = Path.cwd()
    committed_path = spec.committed_path(root)
    fresh_dir = Path(args.fresh) if args.fresh is not None else SCRATCH_DIR
    fresh_path = fresh_dir / f"{spec.name}.json"
    if not fresh_path.exists():
        print(
            f"no fresh artifact at {fresh_path}; run "
            f"`python -m repro campaign run {spec.name} --out {fresh_dir}` first"
        )
        return 2
    committed = art.load_artifact(committed_path)
    fresh = art.load_artifact(fresh_path)
    failures = art.compare_artifacts(committed, fresh, spec.volatile_metrics)
    failures.extend(verify_rows(spec, fresh["cells"]))
    for failure in failures:
        print(f"  FAIL {failure}")
    compared = len(fresh["cells"])
    if failures:
        print(
            f"campaign check {spec.name}: {len(failures)} failure(s) "
            f"across {compared} cells"
        )
        return 1
    print(
        f"campaign check {spec.name}: {compared}/{len(committed['cells'])} "
        "committed cells re-ran byte-identically"
    )
    return 0


def add_campaign_parser(sub: argparse._SubParsersAction) -> None:
    """Attach the ``campaign`` command tree to the main CLI."""
    campaign = sub.add_parser(
        "campaign",
        help="declarative parameter sweeps with committed artifacts",
    )
    tool = campaign.add_subparsers(dest="tool", required=True)

    listing = tool.add_parser("list", help="list the shipped campaigns")
    listing.set_defaults(campaign_fn=cmd_list)

    run = tool.add_parser(
        "run",
        help="expand a campaign grid and run it across local workers",
    )
    run.add_argument("name", nargs="?", help="a shipped campaign name")
    run.add_argument(
        "--spec",
        metavar="TOML",
        default=None,
        help="load the campaign from a TOML spec instead",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=1,
        help="local worker processes (default: 1)",
    )
    run.add_argument(
        "--smoke",
        action="store_true",
        help="run the spec's reduced smoke grid (CI)",
    )
    run.add_argument(
        "--resume",
        action="store_true",
        help="skip cells already ok in the target artifact",
    )
    run.add_argument(
        "--update",
        action="store_true",
        help="write the committed artifact paths (campaigns/results/, "
        "or BENCH_PERF.json for perf_baseline)",
    )
    run.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="scratch output directory (default: campaigns/scratch/)",
    )
    run.set_defaults(campaign_fn=cmd_run)

    render = tool.add_parser(
        "render",
        help="re-render the markdown table from the committed JSON artifact",
    )
    render.add_argument("name", nargs="?")
    render.add_argument("--spec", metavar="TOML", default=None)
    render.set_defaults(campaign_fn=cmd_render)

    check = tool.add_parser(
        "check",
        help="diff a fresh artifact against the committed one cell for "
        "cell (volatile metrics excluded)",
    )
    check.add_argument("name", nargs="?")
    check.add_argument("--spec", metavar="TOML", default=None)
    check.add_argument(
        "--fresh",
        metavar="DIR",
        default=None,
        help="directory holding the fresh artifact (default: campaigns/scratch/)",
    )
    check.set_defaults(campaign_fn=cmd_check)


def dispatch(args: argparse.Namespace) -> int:
    fn = args.campaign_fn
    result: int = fn(args)
    return result
