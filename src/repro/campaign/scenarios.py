"""Scenario cells for the shipped campaigns.

Both scenarios report *simulated* metrics only (virtual-clock latency,
event counts, replay accounting) — no wall clock — so their campaign
artifacts are byte-identical across machines, reruns, and worker
counts. That is what lets CI re-run a reduced grid and diff it against
the committed artifact cell for cell.

``capacity_cell`` is the ROADMAP's capacity-planning curve (the paper's
§5 grid: machines × offered rate, judged against the 2 s latency
bound); ``delivery_cell`` is the E6e delivery-semantics matrix
(at-most/at-least/effectively-once × crash schedule);
``elasticity_cell`` is the E24 diurnal autoscaling swing (incremental
vs full-rehydration handoff).
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

from repro.cluster import ClusterSpec
from repro.core.application import Application
from repro.core.event import Event
from repro.core.operators import Context, Mapper, Updater
from repro.errors import ConfigurationError
from repro.faults import FaultSchedule
from repro.sim import SimConfig, SimRuntime, constant_rate
from repro.slates.manager import FlushPolicy

#: The paper's §5 end-to-end latency requirement (seconds).
LATENCY_BUDGET_S = 2.0


class _Echo(Mapper):
    def map(self, ctx: Context, event: Event) -> None:
        ctx.publish(self.config["output_sid"], event.key, event.value)


class _Count(Updater):
    def init_slate(self, key: str) -> Dict[str, Any]:
        return {"count": 0}

    def update(self, ctx: Context, event: Event, slate: Any) -> None:
        slate["count"] += 1


class _CostlyCount(_Count):
    """A counting updater with meaningful per-event CPU (NLP-ish work),
    so machine counts saturate at realistic rates: 20x the base update
    cost = 5 ms of simulated service time per event, ~800 ev/s of
    updater capacity per 4-core machine."""

    cost_factor = 20.0


def _count_app(costly: bool) -> Application:
    app = Application("campaign-count")
    app.add_stream("S1", external=True)
    app.add_stream("S2")
    app.add_mapper(
        "M1", _Echo, subscribes=["S1"], publishes=["S2"], config={"output_sid": "S2"}
    )
    app.add_updater("U1", _CostlyCount if costly else _Count, subscribes=["S2"])
    return app.validate()


def capacity_cell(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """One point of the capacity-planning grid: ``machines`` machines
    absorbing ``rate`` ev/s for ``duration`` seconds.

    A cell *meets* the plan when simulated p99 stays inside the paper's
    2 s budget and nothing is lost to queue overflow — the summary
    derives "machines needed for rate X" as the smallest passing
    machine count per rate.
    """
    machines = int(params["machines"])
    rate = float(params["rate"])
    duration = float(params.get("duration", 2.0))
    keys = int(params.get("keys", 128))
    source = constant_rate(
        "S1", rate_per_s=rate, duration_s=duration, key_fn=lambda i: f"k{i % keys}"
    )
    runtime = SimRuntime(
        _count_app(costly=True),
        ClusterSpec.uniform(machines, cores=4),
        SimConfig(),
        [source],
    )
    report = runtime.run(duration + 8.0)
    counted = sum(v["count"] for v in runtime.slates_of("U1").values())
    offered = int(rate * duration)
    lost = report.counters.lost_total()
    p99_s = report.latency.p99 if report.latency is not None else float("inf")
    meets = bool(p99_s < LATENCY_BUDGET_S and lost == 0 and counted == offered)
    return {
        "offered": offered,
        "counted": counted,
        "lost": lost,
        "throughput_ev_s": round(report.events_per_second(), 3),
        "p50_ms": round(report.latency.p50 * 1e3, 3) if report.latency else None,
        "p99_ms": round(p99_s * 1e3, 3) if report.latency else None,
        "queue_peak": report.queue_peak_depth,
        "meets_budget": meets,
    }


def _fault_schedule(kind: str) -> FaultSchedule:
    """The delivery matrix's crash schedules (seeded like E6e)."""
    if kind == "none":
        return FaultSchedule()
    if kind == "crash":
        return FaultSchedule(seed=42).crash(1.05, "m001", recover_at=2.0)
    if kind == "double_crash":
        schedule = FaultSchedule(seed=42)
        schedule = schedule.crash(1.05, "m001", recover_at=1.7)
        return schedule.crash(2.1, "m002", recover_at=2.6)
    raise ConfigurationError(f"unknown fault schedule {kind!r}")


def delivery_cell(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """One cell of the delivery-semantics matrix: ``delivery`` mode
    under the ``faults`` crash schedule, E6e's workload and knobs
    (per-key FIFO single-choice dispatch, kv nodes die with their
    machine). ``offered`` is the ground truth every mode is judged
    against; effectively-once must land on it exactly for *every*
    schedule."""
    delivery = str(params["delivery"])
    faults = str(params["faults"])
    rate = float(params.get("rate", 2000.0))
    duration = float(params.get("duration", 3.0))
    kwargs: Dict[str, Any] = {}
    if delivery == "at-least-once":
        kwargs["replay_horizon_s"] = duration + 3.0
    if delivery == "effectively-once":
        kwargs["checkpoint_epoch_s"] = 0.5
    config = SimConfig(
        flush_policy=FlushPolicy.every(0.2),
        queue_capacity=100_000,
        two_choice=False,
        kill_kv_on_machine_failure=True,
        delivery_semantics=delivery,
        **kwargs,
    )
    source = constant_rate(
        "S1", rate_per_s=rate, duration_s=duration, key_fn=lambda i: f"k{i % 64}"
    )
    runtime = SimRuntime(
        _count_app(costly=False),
        ClusterSpec.uniform(4, cores=4),
        config,
        [source],
        failures=_fault_schedule(faults),
    )
    report = runtime.run(duration + 3.0)
    counted = sum(v["count"] for v in runtime.slates_of("U1").values())
    offered = int(rate * duration)
    return {
        "offered": offered,
        "counted": counted,
        "delta": counted - offered,
        "exact": counted == offered,
        "lost_failure": report.counters.lost_failure,
        "replay_deduped": report.robustness.replay_deduped,
        "replay_reapplied": report.robustness.replay_reapplied,
        "checkpoint_epochs": report.robustness.checkpoint_epochs,
        "recoveries": report.robustness.recoveries,
    }


def elasticity_cell(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """One cell of the E24 elasticity matrix: the full diurnal swing
    under one ``handoff`` mode.

    ``incremental`` is the live snapshot/delta/cutover migration;
    ``full`` is the flush-barrier full-rehydration ablation. Both must
    ride the swing 2 -> 16 -> 2 with exact effectively-once counts and
    zero aborted migrations; the committed artifact pins the moved-byte
    totals the incremental-vs-full claim is judged on."""
    from repro.analysis.scenarios import e24_elasticity_run, e24_expected_events

    handoff = str(params["handoff"])
    if handoff not in ("incremental", "full"):
        raise ConfigurationError(f"unknown handoff mode {handoff!r}")
    horizon_s = float(params.get("horizon", 90.0))
    runtime, report, trajectory = e24_elasticity_run(
        full_rehydration=(handoff == "full"), horizon_s=horizon_s
    )
    counted = sum(
        v["count"] for v in runtime.slates_of("U1", read_through=True).values()
    )
    expected = e24_expected_events()
    migration = runtime._migration.counters
    autoscaler = runtime._autoscaler.counters
    return {
        "expected": expected,
        "counted": counted,
        "exact": counted == expected,
        "lost": report.counters.lost_total(),
        "peak_machines": max(machines for _, machines in trajectory),
        "final_machines": trajectory[-1][1],
        "scale_ups": autoscaler.scale_ups,
        "scale_downs": autoscaler.scale_downs,
        "migrations_completed": migration.completed,
        "migrations_aborted": migration.aborted,
        "moved_bytes": migration.incremental_bytes or migration.full_barrier_bytes,
    }
