"""Perf-gate scenarios as campaign cells.

These are the four canonical scenarios the perf gate has always run
(E1-style scaling, E2-style latency, E9-style flush pressure, E23
fast-forwarding), relocated from ``benchmarks/bench_perf_gate.py`` so
the ``perf_baseline`` campaign regenerates ``BENCH_PERF.json`` through
the runner and the gate script becomes a thin wrapper over the same
cells.

Each scenario mixes deterministic simulated metrics (throughput, steps,
identity checks — byte-identical everywhere) with wall/CPU timings that
are machine-dependent by nature; the campaign spec lists the latter as
``volatile_metrics`` so ``campaign check`` ignores them while the gate's
tolerance checks still read them.
"""

from __future__ import annotations

import itertools
import json
import time
from typing import Any, Callable, Dict, List, Mapping, Tuple

from repro.cluster import ClusterSpec
from repro.core.application import Application
from repro.core.event import Event
from repro.core.operators import Context, Mapper, Updater
from repro.errors import ConfigurationError
from repro.kvstore.cluster import ReplicatedKVStore
from repro.sim import SimConfig, SimRuntime, create_runtime
from repro.sim.sources import Source
from repro.slates.manager import FlushPolicy, SlateManager

#: E23 exact-mode baseline: the committed wall of the E1 workload on the
#: exact stepper on the reference machine, pinned so the hybrid speedup
#: claim is measured against a fixed yardstick rather than a same-run
#: remeasurement. The issue targeted 5x; the honest measured speedup on
#: this workload is ~4x (see EXPERIMENTS.md E23 for the CPython floor
#: analysis).
E23_BASELINE_EXACT_WALL_S = 3.6863

#: Timing repeats per measured run; min is reported (least-noise).
REPEATS = 3


class _Echo(Mapper):
    def map(self, ctx: Context, event: Event) -> None:
        ctx.publish(self.config["output_sid"], event.key, event.value)


class _Count(Updater):
    def init_slate(self, key: str) -> Dict[str, Any]:
        return {"count": 0}

    def update(self, ctx: Context, event: Event, slate: Any) -> None:
        slate["count"] += 1


def _chain_app() -> Application:
    """S1 -> M1 -> S2 -> M2 -> S3 -> U1: two cheap map hops per event,
    so the data plane (not operator CPU) dominates — the E1 scenario."""
    app = Application("perf-gate-chain")
    app.add_stream("S1", external=True)
    app.add_stream("S2")
    app.add_stream("S3")
    app.add_mapper(
        "M1", _Echo, subscribes=["S1"], publishes=["S2"], config={"output_sid": "S2"}
    )
    app.add_mapper(
        "M2", _Echo, subscribes=["S2"], publishes=["S3"], config={"output_sid": "S3"}
    )
    app.add_updater("U1", _Count, subscribes=["S3"])
    return app.validate()


def _count_app() -> Application:
    """S1 -> M1 -> S2 -> U1: the minimal end-to-end pipeline (E2)."""
    app = Application("perf-gate-count")
    app.add_stream("S1", external=True)
    app.add_stream("S2")
    app.add_mapper(
        "M1", _Echo, subscribes=["S1"], publishes=["S2"], config={"output_sid": "S2"}
    )
    app.add_updater("U1", _Count, subscribes=["S2"])
    return app.validate()


def _events(n: int, spacing: float, keys: int) -> List[Event]:
    return [Event("S1", ts=i * spacing, key=f"k{i % keys}", value=i) for i in range(n)]


def _timed(fn: Callable[[], Any]) -> Tuple[Any, float, float]:
    """Run ``fn`` REPEATS times; return (last result, min wall, min cpu)."""
    walls, cpus = [], []
    result = None
    for _ in range(REPEATS):
        w0, c0 = time.perf_counter(), time.process_time()
        result = fn()
        walls.append(time.perf_counter() - w0)
        cpus.append(time.process_time() - c0)
    return result, min(walls), min(cpus)


# -- scenarios ---------------------------------------------------------------
def scenario_e1_scaling() -> Dict[str, Any]:
    """Chain pipeline at 50k ev/s on 4 machines, the batched data plane
    off (no event coalescing, no routing memos, per-slate flushes — the
    pre-optimization behaviour) versus on (all three)."""
    n, spacing, keys, machines = 30_000, 0.00002, 200, 4
    horizon = n * spacing + 5.0

    def run(batch: bool) -> Tuple[Any, Any]:
        cfg = SimConfig(
            batch_max_events=64 if batch else 0,
            batch_linger_s=0.005 if batch else 0.0,
            memoize_routing=batch,
            coalesce_slate_flushes=batch,
        )
        runtime = SimRuntime(
            _chain_app(),
            ClusterSpec.uniform(machines, cores=4),
            cfg,
            [Source("S1", iter(_events(n, spacing, keys)))],
        )
        report = runtime.run(horizon)
        return report, runtime.slates_of("U1")

    (rep_off, slates_off), wall_off, cpu_off = _timed(lambda: run(False))
    (rep_on, slates_on), wall_on, cpu_on = _timed(lambda: run(True))
    dump_off = json.dumps(slates_off, sort_keys=True)
    dump_on = json.dumps(slates_on, sort_keys=True)
    identical = dump_off == dump_on
    return {
        "events": n,
        "machines": machines,
        "sim_events_per_s": round(rep_on.events_per_second(), 3),
        "sim_events_per_s_unbatched": round(rep_off.events_per_second(), 3),
        "steps_unbatched": rep_off.steps,
        "steps_batched": rep_on.steps,
        "wall_s": round(wall_on, 4),
        "wall_s_unbatched": round(wall_off, 4),
        "cpu_s": round(cpu_on, 4),
        "cpu_s_unbatched": round(cpu_off, 4),
        "speedup_wall": round(wall_off / wall_on, 3),
        "speedup_cpu": round(cpu_off / cpu_on, 3),
        "batches_sent": rep_on.dataplane.batches_sent,
        "avg_batch_events": round(
            rep_on.dataplane.batched_events / max(1, rep_on.dataplane.batches_sent),
            2,
        ),
        "slates_identical": identical,
    }


def scenario_e2_latency() -> Dict[str, Any]:
    """Count pipeline at 2k ev/s on 6 machines with batching on; the
    linger must not push end-to-end latency anywhere near the paper's
    2 s bound."""
    n, spacing, keys, machines = 8_000, 0.0005, 500, 6
    horizon = n * spacing + 5.0

    def run() -> Any:
        cfg = SimConfig(batch_max_events=64, batch_linger_s=0.002)
        runtime = SimRuntime(
            _count_app(),
            ClusterSpec.uniform(machines, cores=4),
            cfg,
            [Source("S1", iter(_events(n, spacing, keys)))],
        )
        return runtime.run(horizon)

    report, wall, cpu = _timed(run)
    assert report.latency is not None
    return {
        "events": n,
        "machines": machines,
        "sim_events_per_s": round(report.events_per_second(), 3),
        "p99_latency_ms": round(report.latency.p99 * 1e3, 3),
        "wall_s": round(wall, 4),
        "cpu_s": round(cpu, 4),
    }


def scenario_e9_flush() -> Dict[str, Any]:
    """Slate-manager flush pressure: 20k hot-key updates through an
    interval policy, exercising the coalesced write_batch path."""
    updates, keys = 20_000, 500

    def run() -> SlateManager:
        ticks = itertools.count()
        clock = lambda: next(ticks) * 0.001
        store = ReplicatedKVStore(
            ["n0", "n1", "n2", "n3"], replication_factor=3, clock=clock
        )
        manager = SlateManager(
            store,
            cache_capacity=keys * 2,
            flush_policy=FlushPolicy.every(0.05),
            clock=clock,
        )
        updater = _Count(name="U1")
        for i in range(updates):
            slate = manager.get(updater, f"k{i % keys}")
            slate["count"] += 1
            slate.touch(clock())
            manager.note_update(slate)
            manager.flush_due()
        manager.flush_all_dirty()
        return manager

    manager, wall, cpu = _timed(run)
    sim_now = manager.clock()  # one tick past the run's virtual end
    return {
        "updates": updates,
        "sim_events_per_s": round(updates / max(sim_now, 1e-9), 3),
        "kv_writes": manager.stats.kv_writes,
        "batch_flushes": manager.stats.batch_flushes,
        "batched_writes": manager.stats.batched_writes,
        "wall_s": round(wall, 4),
        "cpu_s": round(cpu, 4),
    }


def scenario_e23_fastforward() -> Dict[str, Any]:
    """The E1 chain workload, exact vs hybrid fast-forwarding, with
    *identical* default configuration for both runs — the only delta is
    ``fastforward=True`` — so report and final-slate identity is a
    like-for-like claim. The speedup figure is the hybrid wall against
    the pinned committed exact baseline (the same number E1 reports as
    ``wall_s_unbatched``); a fresh same-config exact wall is recorded
    alongside for transparency about machine drift."""
    n, spacing, keys, machines = 30_000, 0.00002, 200, 4
    horizon = n * spacing + 5.0

    def run(fastforward: bool) -> Tuple[Any, Any, Any]:
        cfg = SimConfig(fastforward=fastforward)
        runtime = create_runtime(
            _chain_app(),
            ClusterSpec.uniform(machines, cores=4),
            cfg,
            [Source("S1", iter(_events(n, spacing, keys)))],
        )
        report = runtime.run(horizon)
        ff = runtime.ff_summary() if fastforward else None
        return report, runtime.slates_of("U1"), ff

    (rep_x, slates_x, _), wall_x, cpu_x = _timed(lambda: run(False))
    (rep_h, slates_h, ff), wall_h, cpu_h = _timed(lambda: run(True))
    dump_x = json.dumps(slates_x, sort_keys=True)
    dump_h = json.dumps(slates_h, sort_keys=True)
    identical = rep_x.counter_report() == rep_h.counter_report() and dump_x == dump_h
    return {
        "events": n,
        "machines": machines,
        "sim_events_per_s": round(rep_h.events_per_second(), 3),
        "steps": rep_h.steps,
        "ff_mode": ff["mode"],
        "inlined_steps": ff["inlined_steps"],
        "baseline_exact_wall_s": E23_BASELINE_EXACT_WALL_S,
        "exact_wall_s_fresh": round(wall_x, 4),
        "wall_s": round(wall_h, 4),
        "cpu_s": round(cpu_h, 4),
        "speedup_vs_baseline": round(E23_BASELINE_EXACT_WALL_S / wall_h, 3),
        "speedup_vs_fresh_exact": round(wall_x / wall_h, 3),
        "identical": identical,
    }


SCENARIOS: Dict[str, Callable[[], Dict[str, Any]]] = {
    "e1_scaling": scenario_e1_scaling,
    "e2_latency": scenario_e2_latency,
    "e9_flush": scenario_e9_flush,
    "e23_fastforward": scenario_e23_fastforward,
}

#: Machine-dependent metrics: excluded from determinism comparison.
VOLATILE_METRICS: Tuple[str, ...] = (
    "wall_s",
    "wall_s_unbatched",
    "cpu_s",
    "cpu_s_unbatched",
    "speedup_wall",
    "speedup_cpu",
    "exact_wall_s_fresh",
    "speedup_vs_baseline",
    "speedup_vs_fresh_exact",
)


def perf_cell(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """Campaign entry point: one perf scenario per cell.

    The scenarios are fully self-seeded (fixed event traces, virtual
    clocks), so the campaign seed is unused — deliberately, to keep the
    numbers comparable with every previously committed baseline.
    """
    name = str(params["scenario"])
    scenario = SCENARIOS.get(name)
    if scenario is None:
        raise ConfigurationError(
            f"unknown perf scenario {name!r}; have {sorted(SCENARIOS)}"
        )
    return scenario()


def scenarios_from_artifact(payload: Mapping[str, Any]) -> Dict[str, Dict[str, Any]]:
    """Map a ``perf_baseline`` campaign artifact to the gate's historic
    ``{scenario_name: metrics}`` shape (the campaign artifact schema is
    the on-disk source of truth; this is the read adapter the gate's
    tolerance checks consume)."""
    scenarios: Dict[str, Dict[str, Any]] = {}
    for row in payload["cells"]:
        if row["status"] != "ok":
            continue
        scenarios[str(row["params"]["scenario"])] = dict(row["metrics"])
    return scenarios
