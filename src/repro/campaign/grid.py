"""Grid expansion and stable cell identity.

A cell is one point of the cross product. Its identity — the key for
resume-from-partial and for the CI determinism check — is a hash of the
campaign name plus the cell's *grid* parameters in canonical JSON form,
so it is stable across runs, worker counts, machines, and dict insertion
order. The per-cell RNG seed is derived from the same hash, which makes
every cell's result independent of the order (or process) it ran in.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Set

from repro.campaign.spec import Grid, GridValue

#: Hex digits of the cell hash kept as the cell id.
CELL_ID_LEN = 12


def canonical_json(obj: Any) -> str:
    """Minimal, key-sorted JSON — the hashing wire format."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def cell_id(campaign: str, params: Dict[str, GridValue]) -> str:
    """Stable id of one grid cell within a campaign."""
    digest = hashlib.sha256(
        f"{campaign}:{canonical_json(params)}".encode("utf-8")
    ).hexdigest()
    return digest[:CELL_ID_LEN]


def cell_seed(identifier: str, base_seed: int) -> int:
    """Deterministic per-cell RNG seed folded with the spec's base seed."""
    return (int(identifier, 16) ^ base_seed) & 0x7FFFFFFF


@dataclass(frozen=True)
class Cell:
    """One expanded grid point, ready to run."""

    index: int
    cell: str
    params: Dict[str, GridValue]
    seed: int


def expand_grid(campaign: str, grid: Grid, base_seed: int = 0) -> List[Cell]:
    """Cross product of the grid in declaration order, deduplicated.

    Repeated values in a parameter list (or parameter combinations that
    hash identically) collapse to the first occurrence, so a sloppy spec
    cannot run — or double-count — the same cell twice.
    """
    names = list(grid)
    cells: List[Cell] = []
    seen: Set[str] = set()
    for combo in itertools.product(*(grid[name] for name in names)):
        params = dict(zip(names, combo))
        identifier = cell_id(campaign, params)
        if identifier in seen:
            continue
        seen.add(identifier)
        cells.append(
            Cell(
                index=len(cells),
                cell=identifier,
                params=params,
                seed=cell_seed(identifier, base_seed),
            )
        )
    return cells
