"""The campaign Runner: expand, fan out, resume, collect, verify.

Determinism contract: two runs of the same spec — regardless of worker
count, completion order, or which cells were resumed from a partial
artifact — produce byte-identical artifacts. The pieces that make that
hold:

* cell identity and RNG seed derive from the cell's parameters alone
  (:mod:`repro.campaign.grid`), never from run order or wall clock;
* results are collected with ``Pool.map`` over the expanded grid order,
  so the artifact row order is the grid order even when cells complete
  out of order;
* the artifact wire form is canonical JSON with no timestamps.

Wall-clock metrics (the perf campaign) are machine-dependent by nature;
specs declare them ``volatile_metrics`` and ``campaign check`` skips
them.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.campaign import artifact as art
from repro.campaign.grid import Cell, expand_grid
from repro.campaign.spec import CampaignSpec, SummarizeFn, VerifyFn, resolve_ref
from repro.campaign.workers import execute_cell, pool_entry
from repro.errors import ConfigurationError


@dataclass
class RunResult:
    """Everything a run produced, for the CLI and the tests."""

    payload: art.Payload
    rows: List[art.Row]
    ran: int
    resumed: int
    failed: int
    verify_failures: List[str] = field(default_factory=list)


class Runner:
    """Expands a spec's grid and runs it across local worker processes.

    Args:
        spec: The campaign to run.
        workers: Local worker processes; ``1`` runs inline (no pool),
            which must — and does — produce the same bytes.
        resume: Reuse ``status == "ok"`` rows from ``resume_from`` (an
            existing artifact of the same spec) instead of re-running
            their cells; failed or missing cells run again.
    """

    def __init__(self, spec: CampaignSpec, workers: int = 1) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.spec = spec
        self.workers = workers

    def run(
        self,
        smoke: bool = False,
        resume_from: Optional[art.Payload] = None,
    ) -> RunResult:
        """Run the (full or smoke) grid and build the artifact payload."""
        spec = self.spec
        cells = expand_grid(spec.name, spec.grid_for(smoke), spec.seed)
        carried: Dict[str, art.Row] = {}
        if resume_from is not None:
            if resume_from.get("spec_hash") != art.spec_hash(spec):
                raise ConfigurationError(
                    "cannot resume: the partial artifact was produced by "
                    "a different spec (hash mismatch)"
                )
            carried = {
                row["cell"]: row
                for row in resume_from["cells"]
                if row["status"] == art.STATUS_OK
            }
        pending = [cell for cell in cells if cell.cell not in carried]
        fresh = {row["cell"]: row for row in self._execute(pending)}
        rows: List[art.Row] = []
        for cell in cells:
            if cell.cell in fresh:
                rows.append(fresh[cell.cell])
            else:
                rows.append(carried[cell.cell])
        payload = art.build_payload(spec, rows)
        _, failed = art.split_errors(rows)
        return RunResult(
            payload=payload,
            rows=rows,
            ran=len(pending),
            resumed=len(cells) - len(pending),
            failed=len(failed),
            verify_failures=verify_rows(spec, rows),
        )

    def _execute(self, pending: List[Cell]) -> List[art.Row]:
        spec = self.spec
        if self.workers == 1 or len(pending) <= 1:
            return [execute_cell(spec.scenario, spec.fixed, cell) for cell in pending]
        # Spawned (not forked) workers: each imports the scenario module
        # fresh, so results cannot depend on parent-process state.
        context = multiprocessing.get_context("spawn")
        jobs = [(spec.scenario, spec.fixed, cell) for cell in pending]
        with context.Pool(min(self.workers, len(pending))) as pool:
            return pool.map(pool_entry, jobs)


def verify_rows(spec: CampaignSpec, rows: List[art.Row]) -> List[str]:
    """Run the spec's assertion hook; failed cells always fail verify."""
    failures = [
        f"cell {row['cell']} {row['params']!r} failed: {row.get('error')}"
        for row in rows
        if row["status"] != art.STATUS_OK
    ]
    if spec.verify is not None:
        verify: VerifyFn = resolve_ref(spec.verify)
        failures.extend(verify(rows))
    return failures


def summarize_rows(spec: CampaignSpec, rows: List[art.Row]) -> List[str]:
    """Run the spec's markdown-summary hook (empty when absent)."""
    if spec.summarize is None:
        return []
    summarize: SummarizeFn = resolve_ref(spec.summarize)
    return summarize(rows)


def write_outputs(
    spec: CampaignSpec,
    result: RunResult,
    json_path: Path,
    md_path: Optional[Path] = None,
) -> None:
    """Write the JSON artifact and (optionally) the markdown table."""
    art.write_artifact(json_path, result.payload)
    if md_path is not None:
        md_path.parent.mkdir(parents=True, exist_ok=True)
        summary = summarize_rows(spec, result.rows)
        md_path.write_text(art.render_markdown(spec, result.payload, summary))
