"""Campaign artifacts: canonical JSON plus a rendered markdown table.

The JSON artifact is the committed, machine-checked record of one
campaign (Helix artifact-evaluation style: the repo carries a copy of
the result files next to the command that regenerates them). It is
written in canonical form — sorted keys, two-space indent, trailing
newline, no timestamps, no hostnames — so a deterministic campaign
re-run produces a byte-identical file on any machine and CI can diff
the fresh artifact against the committed one cell for cell.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, List, Sequence, Tuple, Union, cast

from repro.campaign.spec import CampaignSpec
from repro.errors import ConfigurationError

#: Row statuses.
STATUS_OK = "ok"
STATUS_FAILED = "failed"

#: Artifact schema version, bumped on any shape change.
SCHEMA = 1

Row = Dict[str, Any]
Payload = Dict[str, Any]


def spec_hash(spec: CampaignSpec) -> str:
    """Hash of everything that changes cell *results* without changing
    cell identity: the scenario ref, fixed params, base seed, and the
    volatile-metric contract. A stale committed artifact (produced by an
    older spec) fails ``campaign check`` on this hash before any cell
    comparison."""
    payload = {
        "fixed": dict(spec.fixed),
        "name": spec.name,
        "scenario": spec.scenario,
        "seed": spec.seed,
        "volatile_metrics": sorted(spec.volatile_metrics),
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    ).hexdigest()
    return digest[:12]


def build_payload(spec: CampaignSpec, rows: Sequence[Row]) -> Payload:
    """Assemble the artifact dict for a completed (or partial) run."""
    return {
        "schema": SCHEMA,
        "campaign": spec.name,
        "description": spec.description,
        "scenario": spec.scenario,
        "spec_hash": spec_hash(spec),
        "fixed": dict(spec.fixed),
        "volatile_metrics": sorted(spec.volatile_metrics),
        "cells": list(rows),
    }


def dumps_canonical(payload: Payload) -> str:
    """The byte-identity wire form of an artifact."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def write_artifact(path: Path, payload: Payload) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(dumps_canonical(payload))


def load_artifact(path: Union[str, Path]) -> Payload:
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"no campaign artifact at {path}")
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"corrupt campaign artifact {path}: {exc}") from exc
    if not isinstance(payload, dict) or "cells" not in payload:
        raise ConfigurationError(f"{path} is not a campaign artifact")
    return cast(Payload, payload)


def rows_by_cell(payload: Payload) -> Dict[str, Row]:
    return {row["cell"]: row for row in payload["cells"]}


def compare_artifacts(
    committed: Payload, fresh: Payload, volatile: Sequence[str]
) -> List[str]:
    """Cell-for-cell determinism check; returns mismatch messages.

    Every fresh cell must exist in the committed artifact with equal
    status and — volatile (machine-dependent) metrics excluded — exactly
    equal metrics. The fresh run may cover a subset of the committed
    grid (the CI smoke path), never a superset.
    """
    failures: List[str] = []
    if committed.get("spec_hash") != fresh.get("spec_hash"):
        failures.append(
            f"spec hash mismatch: committed {committed.get('spec_hash')} "
            f"vs fresh {fresh.get('spec_hash')} — the committed artifact "
            "was produced by a different spec; re-run with --update"
        )
        return failures
    skip = set(volatile)
    committed_rows = rows_by_cell(committed)
    for row in fresh["cells"]:
        identifier = row["cell"]
        base = committed_rows.get(identifier)
        if base is None:
            failures.append(
                f"cell {identifier} {row['params']!r} missing from the "
                "committed artifact"
            )
            continue
        if row["status"] != base["status"]:
            failures.append(
                f"cell {identifier} {row['params']!r}: status "
                f"{row['status']!r} vs committed {base['status']!r}"
            )
            continue
        fresh_metrics = {
            k: v for k, v in row.get("metrics", {}).items() if k not in skip
        }
        base_metrics = {
            k: v for k, v in base.get("metrics", {}).items() if k not in skip
        }
        if fresh_metrics != base_metrics:
            drifted = sorted(
                k
                for k in set(fresh_metrics) | set(base_metrics)
                if fresh_metrics.get(k) != base_metrics.get(k)
            )
            failures.append(
                f"cell {identifier} {row['params']!r}: metrics differ on "
                f"{drifted} (fresh "
                f"{ {k: fresh_metrics.get(k) for k in drifted} } vs committed "
                f"{ {k: base_metrics.get(k) for k in drifted} })"
            )
    return failures


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _markdown_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    lines = [
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(_format_value(v) for v in row) + " |")
    return "\n".join(lines)


def metric_columns(rows: Sequence[Row]) -> List[str]:
    """Union of metric names across ok rows, first-seen order."""
    columns: List[str] = []
    for row in rows:
        for name in row.get("metrics", {}):
            if name not in columns:
                columns.append(name)
    return columns


def render_markdown(
    spec: CampaignSpec,
    payload: Payload,
    summary_lines: Sequence[str] = (),
) -> str:
    """The human half of the artifact: one cell table plus derived
    summaries, in the artifact-evaluation style (what was run, how to
    re-run it, and the committed numbers)."""
    rows = cast(List[Row], payload["cells"])
    param_names = list(spec.grid)
    metrics = metric_columns(rows)
    table_rows: List[List[Any]] = []
    for row in rows:
        cells: List[Any] = [row["cell"]]
        cells.extend(row["params"].get(name, "") for name in param_names)
        cells.append(row["status"])
        row_metrics = row.get("metrics", {})
        cells.extend(row_metrics.get(name, "") for name in metrics)
        table_rows.append(cells)
    failed = [row for row in rows if row["status"] != STATUS_OK]
    lines = [
        f"# Campaign `{spec.name}`",
        "",
        spec.description,
        "",
        f"- scenario: `{spec.scenario}`",
        f"- spec hash: `{payload['spec_hash']}`",
        f"- cells: {len(rows)} ({len(failed)} failed)",
        f"- fixed params: `{json.dumps(dict(spec.fixed), sort_keys=True)}`",
        "",
        "Regenerate with "
        f"`python -m repro campaign run {spec.name} --update`; verify a "
        f"fresh run against this artifact with "
        f"`python -m repro campaign check {spec.name}`.",
        "",
        "## Cells",
        "",
        _markdown_table(["cell"] + param_names + ["status"] + metrics, table_rows),
    ]
    if summary_lines:
        lines += ["", "## Summary", ""]
        lines.extend(summary_lines)
    return "\n".join(lines) + "\n"


def split_errors(rows: Sequence[Row]) -> Tuple[List[Row], List[Row]]:
    """Partition rows into (ok, failed)."""
    ok = [row for row in rows if row["status"] == STATUS_OK]
    return ok, [row for row in rows if row["status"] != STATUS_OK]
