"""Experiment campaigns: declarative parameter sweeps with committed
artifacts (ROADMAP item 5).

A campaign names a parameter grid, a per-cell scenario, and an artifact
contract; the :class:`~repro.campaign.runner.Runner` expands the grid,
fans cells out across local worker processes with hash-derived per-cell
seeds, resumes from partial artifacts, and collects one canonical JSON
file plus a rendered markdown table per campaign. See
``python -m repro campaign list`` for the shipped campaigns.
"""

from repro.campaign.artifact import (
    compare_artifacts,
    load_artifact,
    render_markdown,
    write_artifact,
)
from repro.campaign.grid import Cell, cell_id, cell_seed, expand_grid
from repro.campaign.runner import Runner, RunResult
from repro.campaign.spec import (
    CampaignSpec,
    resolve_ref,
    spec_from_dict,
    spec_from_toml,
)
from repro.campaign.specs import SPECS, get_spec

__all__ = [
    "CampaignSpec",
    "Cell",
    "RunResult",
    "Runner",
    "SPECS",
    "cell_id",
    "cell_seed",
    "compare_artifacts",
    "expand_grid",
    "get_spec",
    "load_artifact",
    "render_markdown",
    "resolve_ref",
    "spec_from_dict",
    "spec_from_toml",
    "write_artifact",
]
