"""The shipped campaigns: perf_baseline, capacity, delivery_matrix.

These replace the previously hand-curated outputs: ``perf_baseline``
regenerates ``BENCH_PERF.json`` through the runner, ``capacity`` commits
the ROADMAP's capacity-planning curve (machines needed for a rate at
p99 < 2 s), and ``delivery_matrix`` commits the E6e exactness matrix
(delivery semantics × crash schedule). Each spec is plain data plus
``module:callable`` hooks, so the same definitions load from TOML.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.campaign.perf import VOLATILE_METRICS
from repro.campaign.spec import CampaignSpec
from repro.errors import ConfigurationError

Row = Dict[str, Any]

#: Rates for the capacity curve: the paper's production rate (~1.2k
#: ev/s, >100 M tweets/day) and 2x/4x/8x that, per ROADMAP item 1's
#: "and then 10-100x" direction scaled to what a 16-machine grid can
#: meaningfully resolve.
_CAPACITY_RATES = [1200.0, 2400.0, 4800.0, 9600.0]
_CAPACITY_MACHINES = [2, 4, 6, 8, 12, 16]


def _ok_rows(rows: List[Row]) -> List[Row]:
    return [row for row in rows if row["status"] == "ok"]


def machines_needed(rows: List[Row]) -> Dict[float, Any]:
    """Smallest machine count meeting the budget, per rate (the curve)."""
    curve: Dict[float, Any] = {}
    for row in _ok_rows(rows):
        rate = float(row["params"]["rate"])
        curve.setdefault(rate, None)
        if row["metrics"]["meets_budget"]:
            machines = int(row["params"]["machines"])
            if curve[rate] is None or machines < curve[rate]:
                curve[rate] = machines
    return curve


def verify_capacity(rows: List[Row]) -> List[str]:
    """The grid must span the knee: every rate achievable at the top
    machine count, the top rate not achievable at the bottom one, and
    meets_budget monotone in machines (more machines never break an
    already-met plan)."""
    failures: List[str] = []
    by_rate: Dict[float, List[Row]] = {}
    for row in _ok_rows(rows):
        by_rate.setdefault(float(row["params"]["rate"]), []).append(row)
    for rate, cells in sorted(by_rate.items()):
        cells.sort(key=lambda row: int(row["params"]["machines"]))
        met = [c for c in cells if c["metrics"]["meets_budget"]]
        if not met:
            failures.append(f"rate {rate}: no machine count meets the budget")
            continue
        first_met = int(met[0]["params"]["machines"])
        for cell in cells:
            machines = int(cell["params"]["machines"])
            if machines > first_met and not cell["metrics"]["meets_budget"]:
                failures.append(
                    f"rate {rate}: meets_budget not monotone — {first_met} "
                    f"machines pass but {machines} fail"
                )
    top_rate = max(by_rate) if by_rate else None
    if top_rate is not None:
        smallest = min(
            by_rate[top_rate], key=lambda row: int(row["params"]["machines"])
        )
        if smallest["metrics"]["meets_budget"]:
            failures.append(
                f"rate {top_rate}: even {smallest['params']['machines']} "
                "machines meet the budget — the grid does not span the knee"
            )
    return failures


def summarize_capacity(rows: List[Row]) -> List[str]:
    """The capacity-planning curve as a markdown table."""
    curve = machines_needed(rows)
    lines = [
        "Machines needed to absorb a rate at p99 < 2 s with zero loss",
        "(smallest passing machine count per rate):",
        "",
        "| rate (ev/s) | machines needed |",
        "| --- | --- |",
    ]
    for rate in sorted(curve):
        needed = "> grid max" if curve[rate] is None else str(curve[rate])
        lines.append(f"| {rate:g} | {needed} |")
    return lines


def verify_delivery(rows: List[Row]) -> List[str]:
    """The E6e exactness matrix: fault-free runs are exact under every
    mode; effectively-once is exact under *every* crash schedule;
    at-most-once under-counts and at-least-once over-counts whenever a
    crash actually happened."""
    failures: List[str] = []
    for row in _ok_rows(rows):
        delivery = row["params"]["delivery"]
        faults = row["params"]["faults"]
        metrics = row["metrics"]
        label = f"{delivery} x {faults}"
        if faults == "none" and not metrics["exact"]:
            failures.append(
                f"{label}: fault-free run not exact "
                f"({metrics['counted']}/{metrics['offered']})"
            )
        if delivery == "effectively-once" and not metrics["exact"]:
            failures.append(
                f"{label}: effectively-once must be exact, got "
                f"{metrics['counted']}/{metrics['offered']} "
                f"(delta {metrics['delta']:+d})"
            )
        if faults != "none" and delivery == "at-most-once":
            if metrics["delta"] >= 0:
                failures.append(
                    f"{label}: at-most-once should under-count under "
                    f"crashes, got delta {metrics['delta']:+d}"
                )
        if faults != "none" and delivery == "at-least-once":
            if metrics["delta"] <= 0:
                failures.append(
                    f"{label}: at-least-once should over-count under "
                    f"crashes, got delta {metrics['delta']:+d}"
                )
    return failures


def summarize_delivery(rows: List[Row]) -> List[str]:
    lines = [
        "Counted vs offered (6,000) per delivery mode and crash schedule",
        "(the E6e row: effectively-once is exact everywhere):",
        "",
        "| delivery | faults | counted | delta | exact |",
        "| --- | --- | --- | --- | --- |",
    ]
    ordered = sorted(
        _ok_rows(rows),
        key=lambda row: (row["params"]["delivery"], row["params"]["faults"]),
    )
    for row in ordered:
        metrics = row["metrics"]
        lines.append(
            f"| {row['params']['delivery']} | {row['params']['faults']} "
            f"| {metrics['counted']} | {metrics['delta']:+d} "
            f"| {'yes' if metrics['exact'] else 'no'} |"
        )
    return lines


def verify_perf(rows: List[Row]) -> List[str]:
    """The perf scenarios' determinism claims (the tolerance-based wall
    gates stay in ``bench_perf_gate.py --check``)."""
    failures: List[str] = []
    for row in _ok_rows(rows):
        name = row["params"]["scenario"]
        metrics = row["metrics"]
        if name == "e1_scaling" and not metrics["slates_identical"]:
            failures.append("e1_scaling: batched slates differ from unbatched")
        if name == "e23_fastforward":
            if metrics["ff_mode"] != "fused":
                failures.append(
                    f"e23_fastforward: fell back to {metrics['ff_mode']!r} "
                    "on a fusion-eligible config"
                )
            if not metrics["identical"]:
                failures.append(
                    "e23_fastforward: hybrid report/slates differ from exact"
                )
    return failures


def summarize_perf(rows: List[Row]) -> List[str]:
    lines: List[str] = []
    for row in _ok_rows(rows):
        name = row["params"]["scenario"]
        metrics = row["metrics"]
        if name == "e1_scaling":
            lines.append(
                f"- E1 batching: {metrics['speedup_wall']}x wall / "
                f"{metrics['speedup_cpu']}x CPU, slates identical: "
                f"{metrics['slates_identical']}"
            )
        if name == "e23_fastforward":
            lines.append(
                f"- E23 fast-forward: {metrics['speedup_vs_baseline']}x vs "
                f"the pinned {metrics['baseline_exact_wall_s']} s exact "
                f"baseline, mode {metrics['ff_mode']}, identical: "
                f"{metrics['identical']}"
            )
    return lines


def verify_elasticity(rows: List[Row]) -> List[str]:
    """The E24 claims, judged on the committed matrix: both handoff
    modes ride the swing 2 -> 16 -> 2 with exact effectively-once
    counts, zero loss, zero aborted migrations — and the incremental
    handoff moves strictly fewer bytes than the full-rehydration
    ablation."""
    failures: List[str] = []
    moved: Dict[str, int] = {}
    for row in _ok_rows(rows):
        handoff = row["params"]["handoff"]
        metrics = row["metrics"]
        moved[handoff] = int(metrics["moved_bytes"])
        if not metrics["exact"]:
            failures.append(
                f"{handoff}: not exact — counted {metrics['counted']} "
                f"of {metrics['expected']}"
            )
        if metrics["lost"]:
            failures.append(f"{handoff}: lost {metrics['lost']} events")
        if metrics["migrations_aborted"]:
            failures.append(
                f"{handoff}: {metrics['migrations_aborted']} migrations aborted"
            )
        if metrics["peak_machines"] != 16 or metrics["final_machines"] != 2:
            failures.append(
                f"{handoff}: swing was 2 -> {metrics['peak_machines']} -> "
                f"{metrics['final_machines']}, expected 2 -> 16 -> 2"
            )
    if "incremental" in moved and "full" in moved:
        if moved["incremental"] >= moved["full"]:
            failures.append(
                f"incremental handoff moved {moved['incremental']} bytes, "
                f"not fewer than full rehydration's {moved['full']}"
            )
    return failures


def summarize_elasticity(rows: List[Row]) -> List[str]:
    lines = [
        "The E24 diurnal swing (2 -> 16 -> 2) per handoff mode; both",
        "modes must be exact, and incremental must move fewer bytes:",
        "",
        "| handoff | peak | final | ups/downs | done/aborted "
        "| moved bytes | counted | lost |",
        "| --- | --- | --- | --- | --- | --- | --- | --- |",
    ]
    for row in sorted(_ok_rows(rows), key=lambda r: r["params"]["handoff"]):
        metrics = row["metrics"]
        lines.append(
            f"| {row['params']['handoff']} | {metrics['peak_machines']} "
            f"| {metrics['final_machines']} "
            f"| {metrics['scale_ups']}/{metrics['scale_downs']} "
            f"| {metrics['migrations_completed']}/"
            f"{metrics['migrations_aborted']} "
            f"| {metrics['moved_bytes']} | {metrics['counted']} "
            f"| {metrics['lost']} |"
        )
    return lines


PERF_BASELINE = CampaignSpec(
    name="perf_baseline",
    description=(
        "The perf gate's four canonical scenarios (E1 scaling, E2 "
        "latency, E9 flush, E23 fast-forwarding) run through the "
        "campaign runner; the committed artifact IS the gate baseline "
        "(BENCH_PERF.json)."
    ),
    scenario="repro.campaign.perf:perf_cell",
    grid={"scenario": ["e1_scaling", "e2_latency", "e9_flush", "e23_fastforward"]},
    volatile_metrics=VOLATILE_METRICS,
    artifact="BENCH_PERF.json",
    verify="repro.campaign.specs:verify_perf",
    summarize="repro.campaign.specs:summarize_perf",
)

CAPACITY = CampaignSpec(
    name="capacity",
    description=(
        "Capacity planning (the paper's SS5 grid): machines x offered "
        "rate, judged against the 2 s p99 budget with zero loss; the "
        "summary is the machines-needed-for-rate curve."
    ),
    scenario="repro.campaign.scenarios:capacity_cell",
    grid={"machines": _CAPACITY_MACHINES, "rate": _CAPACITY_RATES},
    fixed={"duration": 2.0, "keys": 128},
    smoke_grid={"machines": [2, 4, 8], "rate": [1200.0, 4800.0]},
    verify="repro.campaign.specs:verify_capacity",
    summarize="repro.campaign.specs:summarize_capacity",
)

DELIVERY_MATRIX = CampaignSpec(
    name="delivery_matrix",
    description=(
        "Delivery semantics x crash schedule (the E6e matrix): "
        "at-most-once under-counts, at-least-once over-counts, "
        "effectively-once is exact under every schedule."
    ),
    scenario="repro.campaign.scenarios:delivery_cell",
    grid={
        "delivery": ["at-most-once", "at-least-once", "effectively-once"],
        "faults": ["none", "crash", "double_crash"],
    },
    fixed={"rate": 2000.0, "duration": 3.0},
    smoke_grid={
        "delivery": ["at-most-once", "at-least-once", "effectively-once"],
        "faults": ["none", "crash"],
    },
    verify="repro.campaign.specs:verify_delivery",
    summarize="repro.campaign.specs:summarize_delivery",
)

ELASTICITY = CampaignSpec(
    name="elasticity",
    description=(
        "The E24 diurnal autoscaling swing (2 -> 16 -> 2 machines) per "
        "handoff mode: live incremental migration vs the flush-barrier "
        "full-rehydration ablation; the artifact pins exactness and the "
        "moved-byte comparison."
    ),
    scenario="repro.campaign.scenarios:elasticity_cell",
    grid={"handoff": ["incremental", "full"]},
    fixed={"horizon": 90.0},
    verify="repro.campaign.specs:verify_elasticity",
    summarize="repro.campaign.specs:summarize_elasticity",
)

SPECS: Dict[str, CampaignSpec] = {
    spec.name: spec
    for spec in (PERF_BASELINE, CAPACITY, DELIVERY_MATRIX, ELASTICITY)
}


def get_spec(name: str) -> CampaignSpec:
    spec = SPECS.get(name)
    if spec is None:
        raise ConfigurationError(
            f"unknown campaign {name!r}; have {sorted(SPECS)} "
            "(or pass a TOML spec via --spec)"
        )
    return spec
