"""Declarative experiment-campaign specs.

A campaign is the paper's §5 evaluation shape made executable: a named
parameter grid (machines × rate × delivery semantics × fault schedule ×
...), a scenario callable that runs one grid cell and returns a flat
metrics dict, and an artifact contract (one committed JSON file plus a
rendered markdown table per campaign). Specs are plain data — a Python
:class:`CampaignSpec` or a TOML file with the same fields — so the
runner, the CI determinism gate, and the docs all read the same source
of truth.

Scenario, verify, and summarize hooks are referenced as importable
``"module:callable"`` strings rather than function objects: that keeps a
spec serializable (TOML-able) and lets worker *processes* import the
scenario themselves instead of pickling closures.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Sequence, Tuple, Union

from repro.errors import ConfigurationError

#: Grid values must stay JSON-scalar so cell hashes are canonical.
GridValue = Union[str, int, float, bool]
Grid = Mapping[str, Sequence[GridValue]]

#: One grid cell's scenario entry point: ``(params, seed) -> metrics``.
CellFn = Callable[[Mapping[str, Any], int], Dict[str, Any]]
#: Post-campaign structural assertions: ``(rows) -> failure messages``.
VerifyFn = Callable[[List[Dict[str, Any]]], List[str]]
#: Extra markdown lines derived from the rows (curves, headlines).
SummarizeFn = Callable[[List[Dict[str, Any]]], List[str]]

_SCALARS = (str, int, float, bool)


def resolve_ref(ref: str) -> Callable[..., Any]:
    """Import a ``"module:callable"`` reference."""
    module_name, sep, attr = ref.partition(":")
    if not sep or not module_name or not attr:
        raise ConfigurationError(
            f"hook reference {ref!r} is not of the form 'module:callable'"
        )
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise ConfigurationError(f"cannot import {module_name!r}: {exc}") from exc
    try:
        fn = getattr(module, attr)
    except AttributeError as exc:
        msg = f"{module_name!r} has no attribute {attr!r}"
        raise ConfigurationError(msg) from exc
    if not callable(fn):
        raise ConfigurationError(f"{ref!r} does not name a callable")
    return fn  # type: ignore[no-any-return]


def _check_grid(label: str, grid: Grid) -> None:
    if not grid:
        raise ConfigurationError(f"{label} must name at least one parameter")
    for param, values in grid.items():
        if not isinstance(param, str) or not param:
            raise ConfigurationError(f"{label} parameter {param!r} must be a name")
        if isinstance(values, (str, bytes)) or not isinstance(values, Sequence):
            raise ConfigurationError(
                f"{label} parameter {param!r} needs a sequence of values"
            )
        if len(values) == 0:
            raise ConfigurationError(f"{label} parameter {param!r} has no values")
        for value in values:
            if not isinstance(value, _SCALARS):
                raise ConfigurationError(
                    f"{label} parameter {param!r} has non-scalar value {value!r}"
                )


@dataclass(frozen=True)
class CampaignSpec:
    """One campaign: a grid, a scenario, and an artifact contract.

    Attributes:
        name: Campaign (and artifact file) name.
        description: One line for ``campaign list`` and the markdown header.
        scenario: ``"module:callable"`` run once per cell as
            ``scenario(params, seed)``; must return a flat JSON-able
            metrics dict.
        grid: Parameter name → value list; the campaign runs the full
            cross product (duplicate cells are dropped).
        fixed: Extra constant parameters merged into every cell's params
            (not part of the cell hash — changing them changes the
            *spec* hash instead).
        seed: Base seed XOR-folded into each cell's hash-derived seed.
        volatile_metrics: Metric names that are machine-dependent (wall
            clock, CPU) and therefore excluded from ``campaign check``
            byte-for-byte comparison.
        smoke_grid: Reduced grid for CI smoke runs. Keys must equal the
            full grid's and values must be subsets, so every smoke cell
            exists in the committed full-grid artifact.
        artifact: Committed JSON path relative to the repo root
            (default ``campaigns/results/<name>.json``).
        verify: Optional ``"module:callable"`` assertion hook over the
            completed rows; returns failure messages (empty = pass).
        summarize: Optional ``"module:callable"`` hook returning extra
            markdown lines (derived curves, headline numbers).
    """

    name: str
    description: str
    scenario: str
    grid: Grid
    fixed: Mapping[str, GridValue] = field(default_factory=dict)
    seed: int = 0
    volatile_metrics: Tuple[str, ...] = ()
    smoke_grid: Union[Grid, None] = None
    artifact: Union[str, None] = None
    verify: Union[str, None] = None
    summarize: Union[str, None] = None

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name:
            raise ConfigurationError(f"bad campaign name {self.name!r}")
        _check_grid(f"campaign {self.name!r} grid", self.grid)
        for key, value in self.fixed.items():
            if not isinstance(value, _SCALARS):
                raise ConfigurationError(
                    f"campaign {self.name!r} fixed param {key!r} has "
                    f"non-scalar value {value!r}"
                )
            if key in self.grid:
                raise ConfigurationError(
                    f"campaign {self.name!r} param {key!r} is both fixed "
                    "and swept"
                )
        if self.smoke_grid is not None:
            _check_grid(f"campaign {self.name!r} smoke_grid", self.smoke_grid)
            if set(self.smoke_grid) != set(self.grid):
                raise ConfigurationError(
                    f"campaign {self.name!r} smoke_grid must sweep the "
                    "same parameters as the full grid"
                )
            for param, values in self.smoke_grid.items():
                extra = [v for v in values if v not in self.grid[param]]
                if extra:
                    raise ConfigurationError(
                        f"campaign {self.name!r} smoke_grid adds values "
                        f"{extra!r} for {param!r} outside the full grid"
                    )

    def grid_for(self, smoke: bool) -> Grid:
        """The grid a run sweeps; smoke falls back to the full grid."""
        if smoke and self.smoke_grid is not None:
            return self.smoke_grid
        return self.grid

    def committed_path(self, root: Path) -> Path:
        """Where the committed artifact lives, relative to ``root``."""
        if self.artifact is not None:
            return root / self.artifact
        return root / "campaigns" / "results" / f"{self.name}.json"

    def markdown_path(self, root: Path) -> Path:
        """Where the rendered markdown table lives."""
        return root / "campaigns" / "results" / f"{self.name}.md"


def spec_from_dict(data: Mapping[str, Any]) -> CampaignSpec:
    """Build a spec from plain data (a parsed TOML table or a dict)."""
    known = {
        "name",
        "description",
        "scenario",
        "grid",
        "fixed",
        "seed",
        "volatile_metrics",
        "smoke_grid",
        "artifact",
        "verify",
        "summarize",
    }
    unknown = sorted(set(data) - known)
    if unknown:
        raise ConfigurationError(f"unknown campaign spec keys: {unknown}")
    for required in ("name", "description", "scenario", "grid"):
        if required not in data:
            raise ConfigurationError(f"campaign spec is missing {required!r}")
    return CampaignSpec(
        name=str(data["name"]),
        description=str(data["description"]),
        scenario=str(data["scenario"]),
        grid=dict(data["grid"]),
        fixed=dict(data.get("fixed", {})),
        seed=int(data.get("seed", 0)),
        volatile_metrics=tuple(data.get("volatile_metrics", ())),
        smoke_grid=(
            dict(data["smoke_grid"]) if data.get("smoke_grid") is not None else None
        ),
        artifact=data.get("artifact"),
        verify=data.get("verify"),
        summarize=data.get("summarize"),
    )


def spec_from_toml(path: Union[str, Path]) -> CampaignSpec:
    """Load a spec from a TOML file (needs Python 3.11+ ``tomllib``)."""
    try:
        import tomllib
    except ImportError as exc:  # pragma: no cover - version-dependent
        raise ConfigurationError(
            "TOML campaign specs need Python 3.11+ (tomllib); "
            "define the spec as a Python dict instead"
        ) from exc
    with open(path, "rb") as handle:
        data = tomllib.load(handle)
    return spec_from_dict(data)
