"""Cell execution — the per-process worker half of the run system.

A worker receives ``(scenario_ref, fixed, cell)``, imports the scenario
in its own process, runs it on the cell's merged parameters with the
cell's hash-derived seed, and returns a finished artifact row. A
scenario raising marks *that cell* failed (status, exception text, no
metrics) without touching any other cell or the artifact as a whole — a
campaign always produces a complete, loadable artifact.
"""

from __future__ import annotations

import traceback
from typing import Any, Dict, Mapping, Tuple

from repro.campaign.artifact import STATUS_FAILED, STATUS_OK, Row
from repro.campaign.grid import Cell
from repro.campaign.spec import GridValue, resolve_ref

_SCALARS = (str, int, float, bool, type(None))


def _check_metrics(metrics: Any) -> Dict[str, Any]:
    if not isinstance(metrics, dict):
        raise TypeError(f"scenario returned {type(metrics).__name__}, not a dict")
    for name, value in metrics.items():
        if not isinstance(name, str):
            raise TypeError(f"metric name {name!r} is not a string")
        if not isinstance(value, _SCALARS):
            raise TypeError(f"metric {name!r} has non-scalar value {value!r}")
    return metrics


def execute_cell(
    scenario_ref: str, fixed: Mapping[str, GridValue], cell: Cell
) -> Row:
    """Run one cell; never raises — failures become failed rows."""
    row: Row = {
        "cell": cell.cell,
        "params": dict(cell.params),
        "seed": cell.seed,
    }
    params: Dict[str, Any] = dict(fixed)
    params.update(cell.params)
    try:
        scenario = resolve_ref(scenario_ref)
        metrics = _check_metrics(scenario(params, cell.seed))
    except Exception as exc:
        row["status"] = STATUS_FAILED
        parts = traceback.format_exception_only(type(exc), exc)
        row["error"] = "".join(parts).strip()
        row["metrics"] = {}
        return row
    row["status"] = STATUS_OK
    row["metrics"] = metrics
    return row


def pool_entry(packed: Tuple[str, Mapping[str, GridValue], Cell]) -> Row:
    """``multiprocessing.Pool.map`` adapter (must be module-level)."""
    scenario_ref, fixed, cell = packed
    return execute_cell(scenario_ref, fixed, cell)
